//! TPC-H-style data generation and the paper's experiment workloads.
//!
//! The paper runs on the TPC-H 10 GB dataset "with a few augmented attributes to suit our
//! examples" (customer categories, category discounts, a category hierarchy). This crate
//! generates a deterministic, laptop-scale equivalent and packages the three experiments
//! of Section X as ready-to-run workloads (UDF definition + query + invocation-count
//! sweep).

pub mod gen;
pub mod workloads;

pub use gen::{generate, TpchConfig};
pub use workloads::{experiment1, experiment2, experiment3, Workload};
