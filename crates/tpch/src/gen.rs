//! Deterministic data generator for the TPC-H-flavoured schema used by the experiments.

use decorr_common::SmallRng;
use decorr_common::{Result, Row, Value};
use decorr_engine::Database;

/// Scale configuration. The defaults are laptop-scale versions of the paper's setup
/// (TPC-H 10 GB: 1.5 M customers / 15 M orders); the *ratios* between tables are
/// preserved so the experiment curves keep their shape.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    pub customers: usize,
    pub orders_per_customer: usize,
    pub lineitems_per_order: usize,
    pub parts: usize,
    pub categories: usize,
    /// Customer categories (drives `categorydiscount` in Experiment 1).
    pub customer_categories: usize,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            customers: 2_000,
            orders_per_customer: 10,
            lineitems_per_order: 3,
            parts: 5_000,
            categories: 200,
            customer_categories: 25,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> TpchConfig {
        TpchConfig {
            customers: 50,
            orders_per_customer: 4,
            lineitems_per_order: 2,
            parts: 100,
            categories: 10,
            customer_categories: 5,
            seed: 7,
        }
    }

    /// Scales the number of customers (the main driver of UDF invocation counts).
    pub fn with_customers(mut self, customers: usize) -> TpchConfig {
        self.customers = customers;
        self
    }

    /// Scales every table proportionally to the default configuration (`scale = 1.0`
    /// is the default size). The executor bench uses this to measure end-to-end
    /// latency at two scale factors with the table *ratios* preserved.
    pub fn with_scale(scale: f64) -> TpchConfig {
        let scale = scale.max(0.001);
        let default = TpchConfig::default();
        let scaled = |n: usize| ((n as f64 * scale).round() as usize).max(1);
        TpchConfig {
            customers: scaled(default.customers),
            parts: scaled(default.parts),
            categories: scaled(default.categories),
            ..default
        }
    }
}

/// Creates the schema, generates the data and builds the default primary/foreign-key
/// indexes (the paper's "default indices"), returning a ready-to-query [`Database`].
pub fn generate(config: &TpchConfig) -> Result<Database> {
    let mut db = Database::new();
    db.execute(
        "create table customer(custkey int not null, name varchar(25), nationkey int, \
                               acctbal float, category int); \
         create table orders(orderkey int not null, custkey int, totalprice float, \
                             orderyear int); \
         create table lineitem(orderkey int, partkey int, suppkey int, price float, \
                               qty int, disc float); \
         create table partsupp(partkey int, suppkey int, supplycost float); \
         create table parts(partkey int not null, category int, retailprice float); \
         create table categories(categorykey int not null, parentkey int, name varchar(30)); \
         create table category_ancestors(category int, ancestor int); \
         create table categorydiscount(category int not null, frac_discount float);",
    )?;

    let mut rng = SmallRng::seed_from_u64(config.seed);

    // customer / categorydiscount
    let customers: Vec<Row> = (1..=config.customers as i64)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::str(format!("Customer#{i:06}")),
                Value::Int(rng.gen_range_i64(0, 25)),
                Value::Float(rng.gen_range_f64(-999.0, 10_000.0)),
                Value::Int(rng.gen_range_i64(0, config.customer_categories as i64)),
            ])
        })
        .collect();
    db.load_rows("customer", customers)?;
    let discounts: Vec<Row> = (0..config.customer_categories as i64)
        .map(|c| Row::new(vec![Value::Int(c), Value::Float(0.01 * (c % 20) as f64)]))
        .collect();
    db.load_rows("categorydiscount", discounts)?;

    // orders / lineitem / partsupp
    let mut orders = vec![];
    let mut lineitems = vec![];
    let mut orderkey = 0i64;
    for custkey in 1..=config.customers as i64 {
        for _ in 0..config.orders_per_customer {
            orderkey += 1;
            // Skew total prices so that the service-level buckets of Example 1 are all
            // populated.
            let totalprice = rng.gen_range_f64(100.0, 200_000.0) * (1.0 + (custkey % 17) as f64);
            orders.push(Row::new(vec![
                Value::Int(orderkey),
                Value::Int(custkey),
                Value::Float(totalprice),
                Value::Int(1992 + (orderkey % 7)),
            ]));
            for _ in 0..config.lineitems_per_order {
                let partkey = rng.gen_range_i64_inclusive(1, config.parts.max(1) as i64);
                lineitems.push(Row::new(vec![
                    Value::Int(orderkey),
                    Value::Int(partkey),
                    Value::Int(rng.gen_range_i64_inclusive(1, 100)),
                    Value::Float(rng.gen_range_f64(1.0, 1_000.0)),
                    Value::Int(rng.gen_range_i64_inclusive(1, 50)),
                    Value::Float(rng.gen_range_f64(0.0, 0.1)),
                ]));
            }
        }
    }
    db.load_rows("orders", orders)?;
    db.load_rows("lineitem", lineitems)?;
    let partsupp: Vec<Row> = (1..=config.parts as i64)
        .flat_map(|p| {
            let mut rows = vec![];
            for s in 0..4i64 {
                rows.push(Row::new(vec![
                    Value::Int(p),
                    Value::Int(s),
                    Value::Float(rand_cost(p, s)),
                ]));
            }
            rows
        })
        .collect();
    db.load_rows("partsupp", partsupp)?;

    // parts / categories / ancestors (Experiment 3): a two-level category hierarchy in
    // which every non-root category has a parent among the first 10% of categories.
    let roots = (config.categories / 10).max(1) as i64;
    let categories: Vec<Row> = (0..config.categories as i64)
        .map(|c| {
            let parent = if c < roots {
                Value::Null
            } else {
                Value::Int(c % roots)
            };
            Row::new(vec![
                Value::Int(c),
                parent,
                Value::str(format!("Category#{c}")),
            ])
        })
        .collect();
    db.load_rows("categories", categories)?;
    // category_ancestors: the reflexive-transitive closure of the parent relation
    // (materialised, as applications commonly do for hierarchy queries).
    let mut ancestors = vec![];
    for c in 0..config.categories as i64 {
        ancestors.push(Row::new(vec![Value::Int(c), Value::Int(c)]));
        if c >= roots {
            ancestors.push(Row::new(vec![Value::Int(c), Value::Int(c % roots)]));
        }
    }
    db.load_rows("category_ancestors", ancestors)?;
    let parts: Vec<Row> = (1..=config.parts as i64)
        .map(|p| {
            Row::new(vec![
                Value::Int(p),
                Value::Int(rng.gen_range_i64(0, config.categories as i64)),
                Value::Float(rng.gen_range_f64(1.0, 2_000.0)),
            ])
        })
        .collect();
    db.load_rows("parts", parts)?;

    // The paper's "default indices on primary and foreign keys".
    for (table, column) in [
        ("customer", "custkey"),
        ("customer", "category"),
        ("orders", "orderkey"),
        ("orders", "custkey"),
        ("lineitem", "orderkey"),
        ("lineitem", "partkey"),
        ("partsupp", "partkey"),
        ("parts", "partkey"),
        ("parts", "category"),
        ("categories", "categorykey"),
        ("category_ancestors", "category"),
        ("category_ancestors", "ancestor"),
        ("categorydiscount", "category"),
    ] {
        db.create_index(table, column)?;
    }
    Ok(db)
}

fn rand_cost(p: i64, s: i64) -> f64 {
    // Deterministic pseudo-cost without consuming RNG state (keeps partsupp stable when
    // other table sizes change).
    (((p * 31 + s * 17) % 997) as f64) + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_tiny_database() {
        let config = TpchConfig::tiny();
        let db = generate(&config).unwrap();
        assert_eq!(db.catalog().table("customer").unwrap().row_count(), 50);
        assert_eq!(db.catalog().table("orders").unwrap().row_count(), 200);
        assert_eq!(db.catalog().table("lineitem").unwrap().row_count(), 400);
        assert_eq!(db.catalog().table("parts").unwrap().row_count(), 100);
        // Every order's custkey references an existing customer.
        let orders = db
            .query("select count(*) as n from orders where custkey > 50")
            .unwrap();
        assert_eq!(orders.rows[0].get(0), &Value::Int(0));
        // Indexes exist on the foreign keys.
        assert!(db
            .catalog()
            .table("orders")
            .unwrap()
            .index_on("custkey")
            .is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TpchConfig::tiny()).unwrap();
        let b = generate(&TpchConfig::tiny()).unwrap();
        let qa = a.query("select sum(totalprice) as s from orders").unwrap();
        let qb = b.query("select sum(totalprice) as s from orders").unwrap();
        assert_eq!(qa.rows[0].get(0), qb.rows[0].get(0));
    }

    #[test]
    fn category_ancestors_closure_is_reflexive() {
        let db = generate(&TpchConfig::tiny()).unwrap();
        let rs = db
            .query("select count(*) as n from category_ancestors where category = ancestor")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(10));
    }
}
