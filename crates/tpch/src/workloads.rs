//! The three experiment workloads of Section X, packaged as (UDF, query template) pairs.

use decorr_common::Result;
use decorr_engine::Database;

/// A benchmark workload: the UDF(s) to register and a query template parameterised by the
/// number of UDF invocations.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name ("Experiment 1 (Figure 10)").
    pub name: &'static str,
    /// `CREATE FUNCTION` statements.
    pub functions: Vec<&'static str>,
    /// Produces the benchmark query limited to roughly `invocations` UDF invocations
    /// (the paper varies the invocation count with TOP / WHERE clauses).
    pub query: fn(invocations: usize) -> String,
}

impl Workload {
    /// Registers this workload's UDFs with the database.
    pub fn install(&self, db: &mut Database) -> Result<()> {
        for f in &self.functions {
            db.register_function(f)?;
        }
        Ok(())
    }
}

/// Experiment 1 (Figure 10): straight-line UDF with two scalar SQL lookups
/// (the paper's Example 8), invoked once per order.
pub fn experiment1() -> Workload {
    Workload {
        name: "Experiment 1 (Figure 10): discount(totalprice, custkey) over orders",
        functions: vec![
            "create function discount(float amt, int ckey) returns float as \
             begin \
               int custcat; float catdisct; float totaldiscount; \
               select category into :custcat from customer where custkey = :ckey; \
               select frac_discount into :catdisct from categorydiscount where category = :custcat; \
               totaldiscount = catdisct * amt; \
               return totaldiscount; \
             end",
        ],
        query: |invocations| {
            format!(
                "select orderkey, discount(totalprice, custkey) as totaldiscount \
                 from orders where orderkey <= {invocations}"
            )
        },
    }
}

/// Experiment 2 (Figure 11): the service_level UDF of Example 1 (assignments, branching
/// and a scalar aggregate query), invoked once per customer.
pub fn experiment2() -> Workload {
    Workload {
        name: "Experiment 2 (Figure 11): service_level(custkey) over customer",
        functions: vec![
            "create function service_level(int ckey) returns varchar(10) as \
             begin \
               float totalbusiness; string level; \
               select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
               if (totalbusiness > 1000000) level = 'Platinum'; \
               else if (totalbusiness > 500000) level = 'Gold'; \
               else level = 'Regular'; \
               return level; \
             end",
        ],
        query: |invocations| {
            format!(
                "select custkey, service_level(custkey) as level \
                 from customer where custkey <= {invocations}"
            )
        },
    }
}

/// Experiment 3 (Figure 12): a UDF with a cursor loop (borrowed from Guravannavar's
/// thesis) that counts the parts in a category and all of its ancestor categories,
/// invoked once per category. Decorrelation goes through the auxiliary-aggregate path of
/// Section VII-A.
pub fn experiment3() -> Workload {
    Workload {
        name: "Experiment 3 (Figure 12): category_part_count(categorykey) over categories",
        functions: vec![
            "create function category_part_count(int ckey) returns int as \
             begin \
               int total = 0; \
               declare c cursor for \
                 select p.partkey from parts p, category_ancestors a \
                 where p.category = a.ancestor and a.category = :ckey; \
               open c; \
               fetch next from c into @pk; \
               while @@fetch_status = 0 \
                 total = total + 1; \
                 fetch next from c into @pk; \
               close c; deallocate c; \
               return total; \
             end",
        ],
        query: |invocations| {
            format!(
                "select categorykey, category_part_count(categorykey) as nparts \
                 from categories where categorykey < {invocations}"
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use decorr_engine::QueryOptions;

    fn check_workload(workload: Workload, invocations: usize, expect_decorrelated: bool) {
        let mut db = generate(&TpchConfig::tiny()).unwrap();
        workload.install(&mut db).unwrap();
        let sql = (workload.query)(invocations);
        let iterative = db.query_with(&sql, &QueryOptions::iterative()).unwrap();
        if expect_decorrelated {
            let rewritten = db.query_with(&sql, &QueryOptions::decorrelated()).unwrap();
            let columns: Vec<&str> = iterative
                .schema
                .columns
                .iter()
                .map(|c| c.name.as_str())
                .collect();
            assert_eq!(
                iterative.canonical_projection(&columns).unwrap(),
                rewritten.canonical_projection(&columns).unwrap(),
                "iterative and decorrelated executions disagree for {}",
                workload.name
            );
            assert!(rewritten.exec_stats.udf_invocations == 0);
            assert!(iterative.exec_stats.udf_invocations as usize >= 1);
        }
        assert!(
            !iterative.rows.is_empty(),
            "workload query returned no rows"
        );
    }

    #[test]
    fn experiment1_iterative_and_decorrelated_agree() {
        check_workload(experiment1(), 40, true);
    }

    #[test]
    fn experiment2_iterative_and_decorrelated_agree() {
        check_workload(experiment2(), 30, true);
    }

    #[test]
    fn experiment3_iterative_and_decorrelated_agree() {
        check_workload(experiment3(), 8, true);
    }
}
