//! The function registry: scalar/table-valued UDFs and user-defined aggregates.

use std::collections::BTreeMap;

use decorr_common::{normalize_ident, DataType, Error, Result};

use crate::ast::{AggregateDefinition, UdfDefinition};

/// Holds every registered user-defined function and aggregate.
///
/// The registry is shared by the interpreter (which executes UDF bodies iteratively),
/// the rewriter (which algebraizes them and registers synthesised auxiliary aggregates),
/// and schema inference (which needs return types).
///
/// Every mutation bumps a monotonic [`generation`](FunctionRegistry::generation)
/// counter. The optimizer's plan cache folds the generation into its cache key, so a
/// `CREATE OR REPLACE` of a UDF makes every plan optimized against the old definition
/// unreachable — the cache can never serve a plan built from a stale UDF body.
#[derive(Debug, Default, Clone)]
pub struct FunctionRegistry {
    udfs: BTreeMap<String, UdfDefinition>,
    aggregates: BTreeMap<String, AggregateDefinition>,
    generation: u64,
}

impl FunctionRegistry {
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Registers a UDF, replacing any previous definition with the same name
    /// (`CREATE OR REPLACE` semantics). Bumps the registry generation so cached plans
    /// derived from a previous definition become unreachable.
    pub fn register_udf(&mut self, udf: UdfDefinition) {
        self.generation += 1;
        self.udfs.insert(udf.name.clone(), udf);
    }

    /// Registers a user-defined aggregate (including synthesised auxiliary aggregates).
    pub fn register_aggregate(&mut self, agg: AggregateDefinition) {
        self.generation += 1;
        self.aggregates.insert(agg.name.clone(), agg);
    }

    /// Monotonic mutation counter: incremented by every [`register_udf`] and
    /// [`register_aggregate`] call. Plan caches key on this value so redefinitions
    /// invalidate stale entries.
    ///
    /// [`register_udf`]: FunctionRegistry::register_udf
    /// [`register_aggregate`]: FunctionRegistry::register_aggregate
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn udf(&self, name: &str) -> Result<&UdfDefinition> {
        self.udfs
            .get(&normalize_ident(name))
            .ok_or_else(|| Error::Catalog(format!("unknown function '{name}'")))
    }

    pub fn aggregate(&self, name: &str) -> Result<&AggregateDefinition> {
        self.aggregates
            .get(&normalize_ident(name))
            .ok_or_else(|| Error::Catalog(format!("unknown aggregate '{name}'")))
    }

    pub fn has_udf(&self, name: &str) -> bool {
        self.udfs.contains_key(&normalize_ident(name))
    }

    pub fn has_aggregate(&self, name: &str) -> bool {
        self.aggregates.contains_key(&normalize_ident(name))
    }

    /// Return type of a scalar UDF or aggregate (for schema inference).
    pub fn return_type(&self, name: &str) -> Option<DataType> {
        let key = normalize_ident(name);
        self.udfs
            .get(&key)
            .map(|u| u.return_type)
            .or_else(|| self.aggregates.get(&key).map(|a| a.return_type))
    }

    pub fn udf_names(&self) -> Vec<String> {
        self.udfs.keys().cloned().collect()
    }

    pub fn aggregate_names(&self) -> Vec<String> {
        self.aggregates.keys().cloned().collect()
    }

    /// Generates a name for an auxiliary aggregate derived from `udf_name` that does not
    /// collide with anything already registered.
    pub fn fresh_aggregate_name(&self, udf_name: &str) -> String {
        let base = format!("aux_agg_{}", normalize_ident(udf_name));
        if !self.has_aggregate(&base) && !self.has_udf(&base) {
            return base;
        }
        let mut i = 2;
        loop {
            let candidate = format!("{base}_{i}");
            if !self.has_aggregate(&candidate) && !self.has_udf(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Statement, UdfParameter};
    use decorr_algebra::ScalarExpr as E;
    use decorr_common::Value;

    fn sample_udf(name: &str) -> UdfDefinition {
        UdfDefinition::new(
            name,
            vec![UdfParameter::new("x", DataType::Int)],
            DataType::Int,
            vec![Statement::Return {
                expr: Some(E::param("x")),
            }],
        )
    }

    fn sample_agg(name: &str) -> AggregateDefinition {
        AggregateDefinition {
            name: name.into(),
            state: vec![("s".into(), DataType::Int, Value::Int(0))],
            params: vec![UdfParameter::new("v", DataType::Int)],
            accumulate: vec![],
            terminate: E::param("s"),
            return_type: DataType::Int,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = FunctionRegistry::new();
        reg.register_udf(sample_udf("Identity"));
        reg.register_aggregate(sample_agg("myagg"));
        assert!(reg.has_udf("identity"));
        assert!(reg.has_aggregate("MYAGG"));
        assert_eq!(reg.return_type("identity"), Some(DataType::Int));
        assert_eq!(reg.return_type("myagg"), Some(DataType::Int));
        assert_eq!(reg.return_type("nosuch"), None);
        assert_eq!(reg.udf("nosuch").unwrap_err().kind(), "catalog");
        assert_eq!(reg.udf_names(), vec!["identity".to_string()]);
        assert_eq!(reg.aggregate_names(), vec!["myagg".to_string()]);
    }

    #[test]
    fn fresh_aggregate_names_avoid_collisions() {
        let mut reg = FunctionRegistry::new();
        assert_eq!(reg.fresh_aggregate_name("totalloss"), "aux_agg_totalloss");
        reg.register_aggregate(sample_agg("aux_agg_totalloss"));
        assert_eq!(reg.fresh_aggregate_name("totalloss"), "aux_agg_totalloss_2");
    }

    #[test]
    fn re_registration_replaces() {
        let mut reg = FunctionRegistry::new();
        reg.register_udf(sample_udf("f"));
        let mut replacement = sample_udf("f");
        replacement.return_type = DataType::Str;
        reg.register_udf(replacement);
        assert_eq!(reg.return_type("f"), Some(DataType::Str));
    }

    #[test]
    fn every_mutation_bumps_the_generation() {
        let mut reg = FunctionRegistry::new();
        assert_eq!(reg.generation(), 0);
        reg.register_udf(sample_udf("f"));
        assert_eq!(reg.generation(), 1);
        // Replacing an existing definition still counts: the body changed.
        reg.register_udf(sample_udf("f"));
        assert_eq!(reg.generation(), 2);
        reg.register_aggregate(sample_agg("a"));
        assert_eq!(reg.generation(), 3);
        // Clones carry the generation so cached plans stay valid across clones.
        assert_eq!(reg.clone().generation(), 3);
    }
}
