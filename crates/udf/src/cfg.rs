//! Control-flow graph construction (Section IV, Figure 4).
//!
//! Each node corresponds to a statement. If-then-else blocks are additionally grouped
//! into *logical nodes* (the dashed boxes L0…L4 of Figure 4), so that — considering only
//! top-level logical nodes — the graph of a loop-free UDF body is a straight line, which
//! is exactly the property the algebraization of Section IV exploits.

use std::fmt::Write as _;

use crate::ast::{Statement, UdfDefinition};

/// Kind of a CFG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgNodeKind {
    Start,
    End,
    /// A simple statement (assignment, declaration, select-into, return, insert).
    Statement,
    /// The predicate node of an if-then-else.
    Branch,
    /// The header of a loop (cursor or while); has a back edge from the end of its body.
    LoopHead,
}

/// One node of the control-flow graph.
#[derive(Debug, Clone)]
pub struct CfgNode {
    pub id: usize,
    pub kind: CfgNodeKind,
    /// Human-readable label (the statement text).
    pub label: String,
    /// Successor node ids.
    pub successors: Vec<usize>,
    /// The id of the logical node (dashed box) this node belongs to: the index of the
    /// top-level statement it came from.
    pub logical_block: usize,
}

/// The control-flow graph of a UDF body.
#[derive(Debug, Clone)]
pub struct ControlFlowGraph {
    pub nodes: Vec<CfgNode>,
    pub start: usize,
    pub end: usize,
}

impl ControlFlowGraph {
    /// Builds the CFG for a UDF definition.
    pub fn build(udf: &UdfDefinition) -> ControlFlowGraph {
        Self::build_from_statements(&udf.body)
    }

    /// Builds the CFG for a list of statements.
    pub fn build_from_statements(stmts: &[Statement]) -> ControlFlowGraph {
        let mut cfg = ControlFlowGraph {
            nodes: vec![],
            start: 0,
            end: 0,
        };
        let start = cfg.add_node(CfgNodeKind::Start, "start".to_string(), 0);
        cfg.start = start;
        let mut exits = vec![start];
        for (block, stmt) in stmts.iter().enumerate() {
            let (entry, new_exits) = cfg.add_statement(stmt, block);
            for e in exits {
                cfg.nodes[e].successors.push(entry);
            }
            exits = new_exits;
        }
        let end = cfg.add_node(CfgNodeKind::End, "end".to_string(), stmts.len());
        for e in exits {
            cfg.nodes[e].successors.push(end);
        }
        cfg.end = end;
        cfg
    }

    fn add_node(&mut self, kind: CfgNodeKind, label: String, logical_block: usize) -> usize {
        let id = self.nodes.len();
        self.nodes.push(CfgNode {
            id,
            kind,
            label,
            successors: vec![],
            logical_block,
        });
        id
    }

    /// Adds the nodes for one statement; returns (entry node, exit nodes).
    fn add_statement(&mut self, stmt: &Statement, block: usize) -> (usize, Vec<usize>) {
        match stmt {
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                let branch = self.add_node(CfgNodeKind::Branch, format!("if ({condition})"), block);
                let mut exits = vec![];
                for arm in [then_branch, else_branch] {
                    if arm.is_empty() {
                        // Empty arm: control falls through from the branch node itself.
                        exits.push(branch);
                        continue;
                    }
                    let mut prev: Option<usize> = None;
                    let mut arm_entry = None;
                    let mut arm_exits = vec![];
                    for s in arm {
                        let (entry, sub_exits) = self.add_statement(s, block);
                        if arm_entry.is_none() {
                            arm_entry = Some(entry);
                        }
                        if let Some(p) = prev {
                            // Connect previous exits to this entry.
                            let p_exits: Vec<usize> = p_to_vec(p);
                            for e in p_exits {
                                self.nodes[e].successors.push(entry);
                            }
                        }
                        prev = Some(sub_exits[0]);
                        arm_exits = sub_exits;
                    }
                    self.nodes[branch]
                        .successors
                        .push(arm_entry.expect("non-empty arm"));
                    exits.extend(arm_exits);
                }
                (branch, exits)
            }
            Statement::CursorLoop {
                fetch_vars, body, ..
            } => {
                let head = self.add_node(
                    CfgNodeKind::LoopHead,
                    format!("fetch into ({})", fetch_vars.join(", ")),
                    block,
                );
                let exits = vec![head];
                let mut prev_exits = vec![head];
                for s in body {
                    let (entry, sub_exits) = self.add_statement(s, block);
                    for e in prev_exits {
                        self.nodes[e].successors.push(entry);
                    }
                    prev_exits = sub_exits;
                }
                // Back edge to the loop head.
                for e in &prev_exits {
                    self.nodes[*e].successors.push(head);
                }
                (head, exits)
            }
            Statement::While { condition, body } => {
                let head =
                    self.add_node(CfgNodeKind::LoopHead, format!("while ({condition})"), block);
                let mut prev_exits = vec![head];
                for s in body {
                    let (entry, sub_exits) = self.add_statement(s, block);
                    for e in prev_exits {
                        self.nodes[e].successors.push(entry);
                    }
                    prev_exits = sub_exits;
                }
                for e in &prev_exits {
                    self.nodes[*e].successors.push(head);
                }
                (head, vec![head])
            }
            simple => {
                let id = self.add_node(CfgNodeKind::Statement, simple.to_string(), block);
                (id, vec![id])
            }
        }
    }

    /// Number of nodes (including start/end).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if the CFG contains a cycle (i.e. the body has a loop).
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.nodes.len()];
        // Explicit stack of (node, next-successor-index).
        let mut stack: Vec<(usize, usize)> = vec![(self.start, 0)];
        color[self.start] = Color::Grey;
        while let Some((node, idx)) = stack.pop() {
            if idx < self.nodes[node].successors.len() {
                stack.push((node, idx + 1));
                let succ = self.nodes[node].successors[idx];
                match color[succ] {
                    Color::Grey => return true,
                    Color::White => {
                        color[succ] = Color::Grey;
                        stack.push((succ, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
            }
        }
        false
    }

    /// The ids of the top-level logical blocks in execution order (the paper's L1…Lk).
    pub fn logical_blocks(&self) -> Vec<usize> {
        let mut blocks: Vec<usize> = self.nodes.iter().map(|n| n.logical_block).collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }

    /// Graphviz rendering (used by examples and for debugging).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph cfg {\n");
        for n in &self.nodes {
            let shape = match n.kind {
                CfgNodeKind::Start | CfgNodeKind::End => "ellipse",
                CfgNodeKind::Branch => "diamond",
                CfgNodeKind::LoopHead => "hexagon",
                CfgNodeKind::Statement => "box",
            };
            let _ = writeln!(
                out,
                "  n{} [shape={shape}, label=\"{}\"];",
                n.id,
                n.label.replace('"', "'")
            );
        }
        for n in &self.nodes {
            for s in &n.successors {
                let _ = writeln!(out, "  n{} -> n{};", n.id, s);
            }
        }
        out.push_str("}\n");
        out
    }
}

fn p_to_vec(p: usize) -> Vec<usize> {
    vec![p]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::UdfParameter;
    use decorr_algebra::ScalarExpr as E;
    use decorr_common::DataType;

    fn straight_line_udf() -> UdfDefinition {
        UdfDefinition::new(
            "discount",
            vec![UdfParameter::new("amount", DataType::Float)],
            DataType::Float,
            vec![Statement::Return {
                expr: Some(E::binary(
                    decorr_algebra::BinaryOp::Mul,
                    E::param("amount"),
                    E::literal(0.15),
                )),
            }],
        )
    }

    fn branching_udf() -> UdfDefinition {
        UdfDefinition::new(
            "classify",
            vec![UdfParameter::new("x", DataType::Int)],
            DataType::Str,
            vec![
                Statement::Declare {
                    name: "lbl".into(),
                    data_type: DataType::Str,
                    init: None,
                },
                Statement::If {
                    condition: E::gt(E::param("x"), E::literal(0)),
                    then_branch: vec![Statement::Assign {
                        name: "lbl".into(),
                        expr: E::literal("pos"),
                    }],
                    else_branch: vec![Statement::Assign {
                        name: "lbl".into(),
                        expr: E::literal("nonpos"),
                    }],
                },
                Statement::Return {
                    expr: Some(E::param("lbl")),
                },
            ],
        )
    }

    #[test]
    fn straight_line_cfg_is_acyclic_chain() {
        let cfg = ControlFlowGraph::build(&straight_line_udf());
        assert_eq!(cfg.len(), 3); // start, return, end
        assert!(!cfg.has_cycle());
        assert_eq!(cfg.nodes[cfg.start].successors.len(), 1);
    }

    #[test]
    fn branching_cfg_has_diamond_and_no_cycle() {
        let cfg = ControlFlowGraph::build(&branching_udf());
        assert!(!cfg.has_cycle());
        // One branch node with two successors.
        let branch = cfg
            .nodes
            .iter()
            .find(|n| n.kind == CfgNodeKind::Branch)
            .expect("branch node");
        assert_eq!(branch.successors.len(), 2);
        // Logical blocks: 0 (declare), 1 (if), 2 (return), 3 (end marker block)
        assert!(cfg.logical_blocks().len() >= 3);
        assert!(cfg.to_dot().contains("diamond"));
    }

    #[test]
    fn loop_cfg_has_cycle() {
        let udf = UdfDefinition::new(
            "totalloss",
            vec![UdfParameter::new("pkey", DataType::Int)],
            DataType::Int,
            vec![
                Statement::Declare {
                    name: "total_loss".into(),
                    data_type: DataType::Int,
                    init: Some(E::literal(0)),
                },
                Statement::CursorLoop {
                    query: decorr_algebra::RelExpr::scan("lineitem"),
                    fetch_vars: vec!["@price".into()],
                    body: vec![Statement::Assign {
                        name: "total_loss".into(),
                        expr: E::binary(
                            decorr_algebra::BinaryOp::Add,
                            E::param("total_loss"),
                            E::param("@price"),
                        ),
                    }],
                },
                Statement::Return {
                    expr: Some(E::param("total_loss")),
                },
            ],
        );
        let cfg = ControlFlowGraph::build(&udf);
        assert!(cfg.has_cycle());
        assert!(udf.has_loops());
    }
}
