//! Synthesis of auxiliary user-defined aggregates (Section VII-A, Example 6).
//!
//! When the body of a cursor loop has cyclic data dependences, the statements from the
//! first cyclic node onwards (`Lc`) cannot be expressed as a set-oriented algebraic
//! expression directly. The paper captures them as a user-defined aggregate function
//! whose `accumulate` method contains exactly those statements, provided
//!
//! 1. the initial values of all variables written in `Lc` are statically determinable,
//!    and
//! 2. the cursor query does not require an enforced order.
//!
//! [`synthesize_aux_aggregate`] performs that construction and reports *why* it fails
//! when the conditions do not hold.

use std::collections::HashSet;

use decorr_algebra::ScalarExpr;
use decorr_common::{DataType, Error, Result, Value};

use crate::analysis::{statement_reads, statement_writes};
use crate::ast::{AggregateDefinition, Statement, UdfParameter};

/// The result of aggregate synthesis: the aggregate definition plus bookkeeping the
/// rewrite needs to wire it into the plan.
#[derive(Debug, Clone)]
pub struct AuxAggregateResult {
    pub definition: AggregateDefinition,
    /// The loop variable whose final value the aggregate returns (the variable that is
    /// live after the loop).
    pub live_out: String,
    /// The variables the accumulate step reads but does not modify — these become the
    /// aggregate's arguments, in this order.
    pub arg_names: Vec<String>,
}

/// Synthesises an auxiliary aggregate for the cyclic suffix `cyclic_stmts` of a cursor
/// loop body.
///
/// * `name` — name to give the aggregate (`aux_agg_<udf>` by convention).
/// * `cyclic_stmts` — the statements `Li … Lk` of the loop body.
/// * `known_vars` — every variable in scope inside the loop (locals, parameters, fetch
///   variables).
/// * `initial_values` — statically known initial values of variables (from declarations
///   and literal assignments preceding the loop).
/// * `var_types` — declared types of variables, used for state/parameter typing.
/// * `live_out` — the variable whose value is used after the loop (the aggregate's
///   result). The caller determines liveness from the statements that follow the loop.
pub fn synthesize_aux_aggregate(
    name: &str,
    cyclic_stmts: &[Statement],
    known_vars: &HashSet<String>,
    initial_values: &[(String, Value)],
    var_types: &[(String, DataType)],
    live_out: &str,
) -> Result<AuxAggregateResult> {
    if cyclic_stmts.is_empty() {
        return Err(Error::Rewrite(
            "cannot synthesise an aggregate from an empty statement list".into(),
        ));
    }
    // Written variables become aggregate state.
    let mut written: Vec<String> = vec![];
    for s in cyclic_stmts {
        for w in statement_writes(s) {
            if !written.contains(&w) {
                written.push(w);
            }
        }
    }
    // Condition 1: every state variable needs a statically determinable initial value.
    let mut state = vec![];
    for var in &written {
        let init = initial_values
            .iter()
            .find(|(n, _)| n == var)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| {
                Error::Rewrite(format!(
                    "cannot create auxiliary aggregate '{name}': initial value of \
                     variable '{var}' is not statically determinable"
                ))
            })?;
        let ty = lookup_type(var_types, var).unwrap_or_else(|| init.data_type());
        state.push((var.clone(), ty, init));
    }
    // Loops must not contain further query execution inside the cyclic part — queries in
    // an aggregate's accumulate method would reintroduce per-row query execution.
    if cyclic_stmts.iter().any(|s| s.contains_query()) {
        return Err(Error::Rewrite(format!(
            "cannot create auxiliary aggregate '{name}': the cyclic part of the loop \
             still executes queries (loop fission required)"
        )));
    }
    if cyclic_stmts.iter().any(|s| s.contains_loop()) {
        return Err(Error::Rewrite(format!(
            "cannot create auxiliary aggregate '{name}': nested loops inside the cyclic \
             part are not supported"
        )));
    }
    // Read-but-not-written variables become the accumulate parameters.
    let mut arg_names: Vec<String> = vec![];
    for s in cyclic_stmts {
        for r in statement_reads(s, known_vars) {
            if !written.contains(&r) && !arg_names.contains(&r) {
                arg_names.push(r);
            }
        }
    }
    arg_names.sort();
    let params: Vec<UdfParameter> = arg_names
        .iter()
        .map(|n| {
            UdfParameter::new(
                n.clone(),
                lookup_type(var_types, n).unwrap_or(DataType::Float),
            )
        })
        .collect();
    // The result is the live-out variable, which must be part of the state.
    if !written.contains(&live_out.to_string()) {
        return Err(Error::Rewrite(format!(
            "cannot create auxiliary aggregate '{name}': live-out variable '{live_out}' \
             is not written inside the loop"
        )));
    }
    let return_type = lookup_type(var_types, live_out).unwrap_or(DataType::Float);
    let definition = AggregateDefinition {
        name: decorr_common::normalize_ident(name),
        state,
        params,
        accumulate: cyclic_stmts.to_vec(),
        terminate: ScalarExpr::param(live_out),
        return_type,
    };
    Ok(AuxAggregateResult {
        definition,
        live_out: live_out.to_string(),
        arg_names,
    })
}

fn lookup_type(var_types: &[(String, DataType)], name: &str) -> Option<DataType> {
    var_types
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, t)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::{BinaryOp, ScalarExpr as E};

    fn vars(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// `if (profit < 0) total_loss = total_loss - profit;` — the cyclic node of the
    /// paper's Example 5.
    fn cyclic_node() -> Vec<Statement> {
        vec![Statement::If {
            condition: E::lt(E::param("profit"), E::literal(0)),
            then_branch: vec![Statement::Assign {
                name: "total_loss".into(),
                expr: E::binary(BinaryOp::Sub, E::param("total_loss"), E::param("profit")),
            }],
            else_branch: vec![],
        }]
    }

    #[test]
    fn synthesises_example6_aggregate() {
        let result = synthesize_aux_aggregate(
            "aux_agg",
            &cyclic_node(),
            &vars(&["profit", "total_loss"]),
            &[("total_loss".into(), Value::Int(0))],
            &[
                ("total_loss".into(), DataType::Int),
                ("profit".into(), DataType::Float),
            ],
            "total_loss",
        )
        .unwrap();
        let agg = &result.definition;
        assert_eq!(agg.name, "aux_agg");
        assert_eq!(
            agg.state,
            vec![("total_loss".into(), DataType::Int, Value::Int(0))]
        );
        assert_eq!(result.arg_names, vec!["profit".to_string()]);
        assert_eq!(agg.params.len(), 1);
        assert_eq!(agg.return_type, DataType::Int);
        assert_eq!(agg.terminate, E::param("total_loss"));
        // The accumulate body is exactly the cyclic statements (Example 6).
        assert_eq!(agg.accumulate, cyclic_node());
        let rendered = agg.to_string();
        assert!(rendered.contains("state:"));
        assert!(rendered.contains("accumulate:"));
    }

    #[test]
    fn missing_initial_value_is_rejected() {
        let err = synthesize_aux_aggregate(
            "aux_agg",
            &cyclic_node(),
            &vars(&["profit", "total_loss"]),
            &[], // no statically known initial value for total_loss
            &[],
            "total_loss",
        )
        .unwrap_err();
        assert_eq!(err.kind(), "rewrite");
        assert!(err.to_string().contains("statically determinable"));
    }

    #[test]
    fn queries_inside_cyclic_part_are_rejected() {
        let stmts = vec![Statement::SelectInto {
            query: decorr_algebra::RelExpr::scan("orders"),
            targets: vec!["total_loss".into()],
        }];
        let err = synthesize_aux_aggregate(
            "aux_agg",
            &stmts,
            &vars(&["total_loss"]),
            &[("total_loss".into(), Value::Int(0))],
            &[],
            "total_loss",
        )
        .unwrap_err();
        assert!(err.to_string().contains("loop fission"));
    }

    #[test]
    fn live_out_must_be_written() {
        let err = synthesize_aux_aggregate(
            "aux_agg",
            &cyclic_node(),
            &vars(&["profit", "total_loss"]),
            &[("total_loss".into(), Value::Int(0))],
            &[],
            "unrelated",
        )
        .unwrap_err();
        assert!(err.to_string().contains("live-out"));
    }
}
