//! Read/write-set analysis and the data dependence graph (DDG) of Section VII-A,
//! plus the table-read analysis the engine's UDF memo uses for per-table
//! invalidation.

use std::collections::{BTreeSet, HashSet};

use decorr_algebra::visit::free_params;
use decorr_algebra::{RelExpr, ScalarExpr};

use crate::ast::Statement;

/// Conservative analysis of which catalog tables a UDF body can read, through
/// embedded queries anywhere in the body — including queries nested inside scalar
/// subqueries of its expressions.
///
/// Returns `Some(tables)` (normalized names, possibly empty for a pure computation
/// over its arguments) when the read set is provably exactly `tables`. Returns
/// `None` when the body invokes another UDF: that callee may read tables this
/// analysis cannot see, so callers must fall back to catalog-wide invalidation.
pub fn table_reads(body: &[Statement]) -> Option<BTreeSet<String>> {
    let mut tables = BTreeSet::new();
    let mut opaque = false;
    for stmt in body {
        collect_stmt_tables(stmt, &mut tables, &mut opaque);
    }
    if opaque {
        None
    } else {
        Some(tables)
    }
}

fn collect_stmt_tables(stmt: &Statement, tables: &mut BTreeSet<String>, opaque: &mut bool) {
    match stmt {
        Statement::Declare { init, .. } => {
            if let Some(e) = init {
                collect_expr_tables(e, tables, opaque);
            }
        }
        Statement::Assign { expr, .. } => collect_expr_tables(expr, tables, opaque),
        Statement::SelectInto { query, .. } => collect_plan_tables(query, tables, opaque),
        Statement::If {
            condition,
            then_branch,
            else_branch,
        } => {
            collect_expr_tables(condition, tables, opaque);
            for s in then_branch.iter().chain(else_branch) {
                collect_stmt_tables(s, tables, opaque);
            }
        }
        Statement::CursorLoop { query, body, .. } => {
            collect_plan_tables(query, tables, opaque);
            for s in body {
                collect_stmt_tables(s, tables, opaque);
            }
        }
        Statement::While { condition, body } => {
            collect_expr_tables(condition, tables, opaque);
            for s in body {
                collect_stmt_tables(s, tables, opaque);
            }
        }
        Statement::InsertIntoResult { values } => {
            for v in values {
                collect_expr_tables(v, tables, opaque);
            }
        }
        Statement::Return { expr } => {
            if let Some(e) = expr {
                collect_expr_tables(e, tables, opaque);
            }
        }
    }
}

fn collect_plan_tables(plan: &RelExpr, tables: &mut BTreeSet<String>, opaque: &mut bool) {
    if let RelExpr::Scan { table, .. } = plan {
        tables.insert(table.clone());
    }
    for expr in plan.expressions() {
        collect_expr_tables(expr, tables, opaque);
    }
    for child in plan.children() {
        collect_plan_tables(child, tables, opaque);
    }
}

fn collect_expr_tables(expr: &ScalarExpr, tables: &mut BTreeSet<String>, opaque: &mut bool) {
    match expr {
        ScalarExpr::UdfCall { args, .. } => {
            // A nested UDF call makes the read set opaque (the callee's reads are
            // not visible here); its argument expressions are still walked so the
            // collected set stays maximal for diagnostics.
            *opaque = true;
            for a in args {
                collect_expr_tables(a, tables, opaque);
            }
        }
        ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => {
            collect_plan_tables(q, tables, opaque);
        }
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            collect_expr_tables(expr, tables, opaque);
            collect_plan_tables(subquery, tables, opaque);
        }
        other => {
            for c in other.children() {
                collect_expr_tables(c, tables, opaque);
            }
        }
    }
}

/// Collects the names of variables *read* by an expression, restricted to `known_vars`.
///
/// Variable references appear either as parameters (`:x`, `@x`) or as bare unqualified
/// identifiers, so both forms are considered; references inside nested subquery plans are
/// included via free-parameter analysis.
pub fn expr_reads(expr: &ScalarExpr, known_vars: &HashSet<String>, out: &mut HashSet<String>) {
    match expr {
        ScalarExpr::Param(p) => {
            if known_vars.contains(p) {
                out.insert(p.clone());
            }
        }
        ScalarExpr::Column(c) => {
            if c.qualifier.is_none() && known_vars.contains(&c.name) {
                out.insert(c.name.clone());
            }
        }
        ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => {
            for p in free_params(q) {
                if known_vars.contains(&p) {
                    out.insert(p);
                }
            }
            for c in decorr_algebra::visit::free_column_refs(q, &decorr_algebra::EmptyProvider) {
                if c.qualifier.is_none() && known_vars.contains(&c.name) {
                    out.insert(c.name);
                }
            }
        }
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            expr_reads(expr, known_vars, out);
            for p in free_params(subquery) {
                if known_vars.contains(&p) {
                    out.insert(p);
                }
            }
        }
        other => {
            for c in other.children() {
                expr_reads(c, known_vars, out);
            }
        }
    }
}

/// Variables read by a statement (recursively through nested blocks).
pub fn statement_reads(stmt: &Statement, known_vars: &HashSet<String>) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_reads(stmt, known_vars, &mut out);
    out
}

fn collect_reads(stmt: &Statement, known_vars: &HashSet<String>, out: &mut HashSet<String>) {
    match stmt {
        Statement::Declare { init, .. } => {
            if let Some(e) = init {
                expr_reads(e, known_vars, out);
            }
        }
        Statement::Assign { expr, .. } => expr_reads(expr, known_vars, out),
        Statement::SelectInto { query, .. } => {
            for p in free_params(query) {
                if known_vars.contains(&p) {
                    out.insert(p);
                }
            }
        }
        Statement::If {
            condition,
            then_branch,
            else_branch,
        } => {
            expr_reads(condition, known_vars, out);
            for s in then_branch.iter().chain(else_branch) {
                collect_reads(s, known_vars, out);
            }
        }
        Statement::CursorLoop { query, body, .. } => {
            for p in free_params(query) {
                if known_vars.contains(&p) {
                    out.insert(p);
                }
            }
            for s in body {
                collect_reads(s, known_vars, out);
            }
        }
        Statement::While { condition, body } => {
            expr_reads(condition, known_vars, out);
            for s in body {
                collect_reads(s, known_vars, out);
            }
        }
        Statement::InsertIntoResult { values } => {
            for v in values {
                expr_reads(v, known_vars, out);
            }
        }
        Statement::Return { expr } => {
            if let Some(e) = expr {
                expr_reads(e, known_vars, out);
            }
        }
    }
}

/// Variables written by a statement (recursively through nested blocks).
pub fn statement_writes(stmt: &Statement) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_writes(stmt, &mut out);
    out
}

fn collect_writes(stmt: &Statement, out: &mut HashSet<String>) {
    match stmt {
        Statement::Declare { name, .. } | Statement::Assign { name, .. } => {
            out.insert(name.clone());
        }
        Statement::SelectInto { targets, .. } => {
            out.extend(targets.iter().cloned());
        }
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                collect_writes(s, out);
            }
        }
        Statement::CursorLoop {
            fetch_vars, body, ..
        } => {
            out.extend(fetch_vars.iter().cloned());
            for s in body {
                collect_writes(s, out);
            }
        }
        Statement::While { body, .. } => {
            for s in body {
                collect_writes(s, out);
            }
        }
        Statement::InsertIntoResult { .. } | Statement::Return { .. } => {}
    }
}

/// The data dependence graph over the statements of a loop body.
///
/// Because statements execute repeatedly, a dependence edge `i → j` exists whenever
/// statement `i` writes a variable that statement `j` reads, regardless of textual order
/// (a later-to-earlier dependence is carried by the loop's back edge). A statement
/// participates in a *cycle* of data dependences iff it can reach itself through such
/// edges — e.g. `total_loss = total_loss - profit` in the paper's Example 5.
#[derive(Debug, Clone)]
pub struct DataDependenceGraph {
    n: usize,
    /// Adjacency: `edges[i]` holds the targets of dependence edges out of statement `i`.
    edges: Vec<Vec<usize>>,
}

impl DataDependenceGraph {
    /// Builds the DDG of a loop body. `known_vars` is the full set of variables in scope
    /// (locals, formal parameters and cursor fetch variables).
    pub fn build(stmts: &[Statement], known_vars: &HashSet<String>) -> DataDependenceGraph {
        let n = stmts.len();
        let reads: Vec<HashSet<String>> = stmts
            .iter()
            .map(|s| statement_reads(s, known_vars))
            .collect();
        let writes: Vec<HashSet<String>> = stmts.iter().map(statement_writes).collect();
        let mut edges = vec![vec![]; n];
        for i in 0..n {
            for (j, read) in reads.iter().enumerate() {
                if writes[i].iter().any(|v| read.contains(v)) && !edges[i].contains(&j) {
                    edges[i].push(j);
                }
            }
        }
        DataDependenceGraph { n, edges }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dependence successors of statement `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// True if statement `i` lies on a cycle of data dependences (can reach itself).
    pub fn in_cycle(&self, i: usize) -> bool {
        // DFS from i's successors looking for i.
        let mut visited = vec![false; self.n];
        let mut stack: Vec<usize> = self.edges[i].clone();
        while let Some(node) = stack.pop() {
            if node == i {
                return true;
            }
            if !visited[node] {
                visited[node] = true;
                stack.extend(self.edges[node].iter().copied());
            }
        }
        false
    }

    /// Index of the first statement (textual order) that is part of a dependence cycle —
    /// the paper's `Li`. `None` if the loop body has no cyclic dependences.
    pub fn first_cyclic_node(&self) -> Option<usize> {
        (0..self.n).find(|&i| self.in_cycle(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::{BinaryOp, ScalarExpr as E};

    fn vars(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// The loop body of the paper's Example 5:
    ///   profit = (@price - @disc) - (cost * @qty);
    ///   if (profit < 0) total_loss = total_loss - profit;
    fn example5_body() -> Vec<Statement> {
        vec![
            Statement::Assign {
                name: "profit".into(),
                expr: E::binary(
                    BinaryOp::Sub,
                    E::binary(BinaryOp::Sub, E::param("@price"), E::param("@disc")),
                    E::binary(BinaryOp::Mul, E::param("cost"), E::param("@qty")),
                ),
            },
            Statement::If {
                condition: E::lt(E::param("profit"), E::literal(0)),
                then_branch: vec![Statement::Assign {
                    name: "total_loss".into(),
                    expr: E::binary(BinaryOp::Sub, E::param("total_loss"), E::param("profit")),
                }],
                else_branch: vec![],
            },
        ]
    }

    #[test]
    fn read_write_sets() {
        let known = vars(&["profit", "total_loss", "cost", "@price", "@disc", "@qty"]);
        let body = example5_body();
        let reads0 = statement_reads(&body[0], &known);
        assert!(reads0.contains("@price") && reads0.contains("cost"));
        assert!(!reads0.contains("profit"));
        assert_eq!(statement_writes(&body[0]), vars(&["profit"]));
        let reads1 = statement_reads(&body[1], &known);
        assert!(reads1.contains("profit") && reads1.contains("total_loss"));
        assert_eq!(statement_writes(&body[1]), vars(&["total_loss"]));
    }

    #[test]
    fn example5_has_cycle_starting_at_the_if() {
        let known = vars(&["profit", "total_loss", "cost", "@price", "@disc", "@qty"]);
        let ddg = DataDependenceGraph::build(&example5_body(), &known);
        // Statement 0 (profit = …) is not cyclic; statement 1 (the if block) is, because
        // total_loss is both read and written by it.
        assert!(!ddg.in_cycle(0));
        assert!(ddg.in_cycle(1));
        assert_eq!(ddg.first_cyclic_node(), Some(1));
    }

    #[test]
    fn acyclic_body_has_no_cycles() {
        let known = vars(&["a", "b", "@x"]);
        let body = vec![
            Statement::Assign {
                name: "a".into(),
                expr: E::param("@x"),
            },
            Statement::Assign {
                name: "b".into(),
                expr: E::param("a"),
            },
        ];
        let ddg = DataDependenceGraph::build(&body, &known);
        assert_eq!(ddg.first_cyclic_node(), None);
        assert_eq!(ddg.successors(0), &[1]);
    }

    #[test]
    fn mutual_dependence_across_statements_is_a_cycle() {
        // a = b; b = a;  →  both are in a cycle (carried by the loop back edge).
        let known = vars(&["a", "b"]);
        let body = vec![
            Statement::Assign {
                name: "a".into(),
                expr: E::param("b"),
            },
            Statement::Assign {
                name: "b".into(),
                expr: E::param("a"),
            },
        ];
        let ddg = DataDependenceGraph::build(&body, &known);
        assert_eq!(ddg.first_cyclic_node(), Some(0));
        assert!(ddg.in_cycle(1));
    }

    #[test]
    fn table_reads_collects_scans_including_subqueries() {
        // total = (select sum(x) from orders where exists(select * from lineitem ...))
        let inner = decorr_algebra::RelExpr::scan("lineitem");
        let query = decorr_algebra::RelExpr::Select {
            input: Box::new(decorr_algebra::RelExpr::scan("orders")),
            predicate: E::Exists(Box::new(inner)),
        };
        let body = vec![
            Statement::SelectInto {
                query,
                targets: vec!["total".into()],
            },
            Statement::Return {
                expr: Some(E::param("total")),
            },
        ];
        let reads = table_reads(&body).expect("no nested UDF calls");
        let expected: std::collections::BTreeSet<String> =
            ["orders".to_string(), "lineitem".to_string()].into();
        assert_eq!(reads, expected);
        // A body that never touches a table has a provably empty read set.
        let pure_body = vec![Statement::Return {
            expr: Some(E::binary(BinaryOp::Mul, E::param("@x"), E::literal(2))),
        }];
        assert_eq!(table_reads(&pure_body), Some(Default::default()));
    }

    #[test]
    fn table_reads_is_opaque_when_body_calls_another_udf() {
        let body = vec![Statement::Return {
            expr: Some(E::udf("helper", vec![E::param("@x")])),
        }];
        assert_eq!(table_reads(&body), None);
        // Even a nested call buried in a subquery predicate is detected.
        let query = decorr_algebra::RelExpr::Select {
            input: Box::new(decorr_algebra::RelExpr::scan("orders")),
            predicate: E::eq(E::udf("helper", vec![E::column("custkey")]), E::literal(1)),
        };
        let body = vec![Statement::SelectInto {
            query,
            targets: vec!["t".into()],
        }];
        assert_eq!(table_reads(&body), None);
    }

    #[test]
    fn select_into_reads_free_params_of_query() {
        let known = vars(&["cur", "total"]);
        let stmt = Statement::SelectInto {
            query: decorr_algebra::RelExpr::Select {
                input: Box::new(decorr_algebra::RelExpr::scan("categories")),
                predicate: E::eq(E::column("categorykey"), E::param("cur")),
            },
            targets: vec!["total".into()],
        };
        let reads = statement_reads(&stmt, &known);
        assert!(reads.contains("cur"));
        assert_eq!(statement_writes(&stmt), vars(&["total"]));
    }
}
