//! User-defined function representation and program analysis.
//!
//! This crate owns everything about UDFs *as programs*:
//!
//! * [`ast`] — the procedural AST (`CREATE FUNCTION` bodies): declarations, assignments,
//!   `SELECT … INTO`, if-then-else, cursor loops, `WHILE` loops, `RETURN`, and inserts
//!   into a table-valued result.
//! * [`registry`] — the function registry holding scalar/table-valued UDF definitions and
//!   user-defined aggregates (both user-written and the auxiliary aggregates synthesised
//!   by the rewrite of Section VII).
//! * [`cfg`](mod@cfg) — the control-flow graph of Section IV with *logical nodes* for (nested)
//!   if-then-else blocks (the paper's Figure 4).
//! * [`analysis`] — read/write sets of statements and the data-dependence graph (DDG) of
//!   Section VII-A, with cycle detection to find loop-carried dependences.
//! * [`aux_agg`] — synthesis of the auxiliary user-defined aggregate (the paper's
//!   Example 6) from the cyclic part of a cursor-loop body.

pub mod analysis;
pub mod ast;
pub mod aux_agg;
pub mod cfg;
pub mod registry;

pub use ast::{AggregateDefinition, Statement, UdfDefinition, UdfParameter};
pub use aux_agg::{synthesize_aux_aggregate, AuxAggregateResult};
pub use cfg::{CfgNode, ControlFlowGraph};
pub use registry::FunctionRegistry;
