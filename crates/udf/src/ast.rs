//! Procedural AST for UDF bodies.

use std::fmt;

use decorr_algebra::{RelExpr, ScalarExpr};
use decorr_common::{normalize_ident, DataType, Schema, Value};

/// A formal parameter of a UDF or user-defined aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfParameter {
    pub name: String,
    pub data_type: DataType,
}

impl UdfParameter {
    pub fn new(name: impl Into<String>, data_type: DataType) -> UdfParameter {
        UdfParameter {
            name: normalize_ident(&name.into()),
            data_type,
        }
    }
}

impl fmt::Display for UdfParameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.data_type, self.name)
    }
}

/// A single statement of a UDF body.
///
/// The parser desugars the verbose cursor pattern of the paper's Example 5
/// (`declare cursor` / `open` / `fetch next … into` / `while @@fetch_status = 0` /
/// `close` / `deallocate`) into a single [`Statement::CursorLoop`], which is both what
/// the interpreter executes and what the Section VII algebraization consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `declare x int;` or `int x = expr;`
    Declare {
        name: String,
        data_type: DataType,
        init: Option<ScalarExpr>,
    },
    /// `x = expr;` — the expression may contain scalar subqueries and UDF calls.
    Assign { name: String, expr: ScalarExpr },
    /// `select e1, e2 into :v1, :v2 from …` — a scalar query whose single result row is
    /// assigned to the target variables.
    SelectInto {
        query: RelExpr,
        targets: Vec<String>,
    },
    /// `if (cond) … else …`
    If {
        condition: ScalarExpr,
        then_branch: Vec<Statement>,
        else_branch: Vec<Statement>,
    },
    /// A cursor loop: iterate over `query`, binding each row's columns to `fetch_vars`
    /// and executing `body`.
    CursorLoop {
        query: RelExpr,
        fetch_vars: Vec<String>,
        body: Vec<Statement>,
    },
    /// An arbitrary `while (cond) …` loop (dynamic iteration space). Executable by the
    /// interpreter; not decorrelatable (Section VII-C).
    While {
        condition: ScalarExpr,
        body: Vec<Statement>,
    },
    /// `insert into <result table> values (…)` inside a table-valued UDF.
    InsertIntoResult { values: Vec<ScalarExpr> },
    /// `return expr;` (scalar UDFs) or `return;` / `return tt;` (table-valued UDFs).
    Return { expr: Option<ScalarExpr> },
}

impl Statement {
    /// Short operator-like name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::Declare { .. } => "declare",
            Statement::Assign { .. } => "assign",
            Statement::SelectInto { .. } => "select-into",
            Statement::If { .. } => "if",
            Statement::CursorLoop { .. } => "cursor-loop",
            Statement::While { .. } => "while",
            Statement::InsertIntoResult { .. } => "insert-into-result",
            Statement::Return { .. } => "return",
        }
    }

    /// True if the statement (recursively) contains a loop.
    pub fn contains_loop(&self) -> bool {
        match self {
            Statement::CursorLoop { .. } | Statement::While { .. } => true,
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => then_branch
                .iter()
                .chain(else_branch)
                .any(|s| s.contains_loop()),
            _ => false,
        }
    }

    /// True if the statement (recursively) executes a SQL query (scalar subquery,
    /// `SELECT INTO`, or a cursor query).
    pub fn contains_query(&self) -> bool {
        fn expr_has_query(e: &ScalarExpr) -> bool {
            e.contains_subquery()
        }
        match self {
            Statement::SelectInto { .. } | Statement::CursorLoop { .. } => true,
            Statement::Declare { init, .. } => init.as_ref().map(expr_has_query).unwrap_or(false),
            Statement::Assign { expr, .. } => expr_has_query(expr),
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                expr_has_query(condition)
                    || then_branch
                        .iter()
                        .chain(else_branch)
                        .any(|s| s.contains_query())
            }
            Statement::While { condition, body } => {
                expr_has_query(condition) || body.iter().any(|s| s.contains_query())
            }
            Statement::InsertIntoResult { values } => values.iter().any(expr_has_query),
            Statement::Return { expr } => expr.as_ref().map(expr_has_query).unwrap_or(false),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Declare {
                name,
                data_type,
                init,
            } => match init {
                Some(e) => write!(f, "{data_type} {name} = {e};"),
                None => write!(f, "{data_type} {name};"),
            },
            Statement::Assign { name, expr } => write!(f, "{name} = {expr};"),
            Statement::SelectInto { targets, .. } => {
                write!(f, "select … into {};", targets.join(", "))
            }
            Statement::If { condition, .. } => write!(f, "if ({condition}) …"),
            Statement::CursorLoop { fetch_vars, .. } => {
                write!(f, "cursor loop into ({})", fetch_vars.join(", "))
            }
            Statement::While { condition, .. } => write!(f, "while ({condition}) …"),
            Statement::InsertIntoResult { values } => {
                let parts: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                write!(f, "insert into result values ({});", parts.join(", "))
            }
            Statement::Return { expr } => match expr {
                Some(e) => write!(f, "return {e};"),
                None => write!(f, "return;"),
            },
        }
    }
}

/// A complete user-defined function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfDefinition {
    pub name: String,
    pub params: Vec<UdfParameter>,
    /// Return type for scalar UDFs.
    pub return_type: DataType,
    /// For table-valued UDFs: the schema of the returned table (and `return_type` is
    /// ignored).
    pub returns_table: Option<Schema>,
    pub body: Vec<Statement>,
    /// Original source text, if the UDF came from the parser (used when printing the
    /// "original query + UDF definition" side of the experiments).
    pub source: Option<String>,
    /// Purity contract, declared at registration time: a pure UDF returns the same
    /// result for the same arguments as long as the registry and catalog are
    /// unchanged, so the executor may deduplicate and memoize its invocations. Every
    /// construct the interpreter offers (arithmetic, control flow, embedded queries
    /// over catalog tables) is deterministic, so UDFs default to pure; declare
    /// `VOLATILE` in `CREATE FUNCTION` to opt out and force one evaluation per row.
    pub pure: bool,
    /// True when the registration spelled out a volatility clause (`VOLATILE` or
    /// `DETERMINISTIC`) rather than inheriting the default. An *explicit*
    /// `DETERMINISTIC` that contradicts the body's inferred volatility is rejected at
    /// registration; an inherited default is silently downgraded instead.
    pub purity_declared: bool,
}

impl UdfDefinition {
    pub fn new(
        name: impl Into<String>,
        params: Vec<UdfParameter>,
        return_type: DataType,
        body: Vec<Statement>,
    ) -> UdfDefinition {
        UdfDefinition {
            name: normalize_ident(&name.into()),
            params,
            return_type,
            returns_table: None,
            body,
            source: None,
            pure: true,
            purity_declared: false,
        }
    }

    pub fn is_table_valued(&self) -> bool {
        self.returns_table.is_some()
    }

    /// True if the body contains any loop.
    pub fn has_loops(&self) -> bool {
        self.body.iter().any(|s| s.contains_loop())
    }

    /// True if the body executes any SQL query.
    pub fn has_queries(&self) -> bool {
        self.body.iter().any(|s| s.contains_query())
    }

    /// Names of the formal parameters, in order.
    pub fn param_names(&self) -> Vec<String> {
        self.params.iter().map(|p| p.name.clone()).collect()
    }

    /// All local variables declared anywhere in the body (including nested blocks).
    pub fn declared_variables(&self) -> Vec<(String, DataType)> {
        fn walk(stmts: &[Statement], out: &mut Vec<(String, DataType)>) {
            for s in stmts {
                match s {
                    Statement::Declare {
                        name, data_type, ..
                    } if !out.iter().any(|(n, _)| n == name) => {
                        out.push((name.clone(), *data_type));
                    }
                    Statement::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, out);
                        walk(else_branch, out);
                    }
                    Statement::CursorLoop { body, .. } | Statement::While { body, .. } => {
                        walk(body, out)
                    }
                    _ => {}
                }
            }
        }
        let mut out = vec![];
        walk(&self.body, &mut out);
        out
    }
}

/// A user-defined aggregate function: either written by the user or synthesised by the
/// Section VII rewrite (the paper's `aux-agg()`, Example 6).
///
/// The executor evaluates it with the standard initialize / accumulate / terminate
/// protocol of user-defined aggregates: `state` is initialised from the literal initial
/// values, `accumulate` runs once per input row with the declared parameters bound to the
/// aggregate's arguments, and `terminate` is an expression over the state variables.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateDefinition {
    pub name: String,
    /// State variables: name, type and statically-determined initial value.
    pub state: Vec<(String, DataType, Value)>,
    /// Parameters of the accumulate step (the attributes the loop body "uses but does
    /// not modify").
    pub params: Vec<UdfParameter>,
    /// Statements executed for every input row (over state variables and parameters).
    pub accumulate: Vec<Statement>,
    /// Result expression over the final state.
    pub terminate: ScalarExpr,
    pub return_type: DataType,
}

impl AggregateDefinition {
    pub fn param_names(&self) -> Vec<String> {
        self.params.iter().map(|p| p.name.clone()).collect()
    }
}

impl fmt::Display for AggregateDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "aggregate {}(", self.name)?;
        for p in &self.params {
            writeln!(f, "    {p},")?;
        }
        writeln!(f, ")")?;
        writeln!(f, "state:")?;
        for (n, t, v) in &self.state {
            writeln!(f, "    {t} {n} = {v};")?;
        }
        writeln!(f, "accumulate:")?;
        for s in &self.accumulate {
            writeln!(f, "    {s}")?;
        }
        write!(f, "terminate: return {};", self.terminate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::ScalarExpr as E;

    /// Builds the body of the paper's Example 1 `service_level` UDF programmatically.
    pub fn service_level_body() -> Vec<Statement> {
        vec![
            Statement::Declare {
                name: "totalbusiness".into(),
                data_type: DataType::Float,
                init: None,
            },
            Statement::Declare {
                name: "level".into(),
                data_type: DataType::Str,
                init: None,
            },
            Statement::SelectInto {
                query: RelExpr::Aggregate {
                    input: Box::new(RelExpr::Select {
                        input: Box::new(RelExpr::scan("orders")),
                        predicate: E::eq(E::column("custkey"), E::param("ckey")),
                    }),
                    group_by: vec![],
                    aggregates: vec![decorr_algebra::AggCall::new(
                        decorr_algebra::AggFunc::Sum,
                        vec![E::column("totalprice")],
                        "v",
                    )],
                },
                targets: vec!["totalbusiness".into()],
            },
            Statement::If {
                condition: E::gt(E::param("totalbusiness"), E::literal(1_000_000)),
                then_branch: vec![Statement::Assign {
                    name: "level".into(),
                    expr: E::literal("Platinum"),
                }],
                else_branch: vec![Statement::If {
                    condition: E::gt(E::param("totalbusiness"), E::literal(500_000)),
                    then_branch: vec![Statement::Assign {
                        name: "level".into(),
                        expr: E::literal("Gold"),
                    }],
                    else_branch: vec![Statement::Assign {
                        name: "level".into(),
                        expr: E::literal("Regular"),
                    }],
                }],
            },
            Statement::Return {
                expr: Some(E::param("level")),
            },
        ]
    }

    #[test]
    fn udf_definition_queries_and_vars() {
        let udf = UdfDefinition::new(
            "service_level",
            vec![UdfParameter::new("ckey", DataType::Int)],
            DataType::Str,
            service_level_body(),
        );
        assert!(!udf.has_loops());
        assert!(udf.has_queries());
        assert!(!udf.is_table_valued());
        assert_eq!(udf.param_names(), vec!["ckey".to_string()]);
        assert_eq!(
            udf.declared_variables(),
            vec![
                ("totalbusiness".to_string(), DataType::Float),
                ("level".to_string(), DataType::Str)
            ]
        );
    }

    #[test]
    fn statement_classification() {
        let s = Statement::Assign {
            name: "x".into(),
            expr: E::literal(1),
        };
        assert_eq!(s.kind(), "assign");
        assert!(!s.contains_loop());
        assert!(!s.contains_query());

        let loop_stmt = Statement::CursorLoop {
            query: RelExpr::scan("lineitem"),
            fetch_vars: vec!["price".into()],
            body: vec![],
        };
        assert!(loop_stmt.contains_loop());
        assert!(loop_stmt.contains_query());

        let nested = Statement::If {
            condition: E::literal(true),
            then_branch: vec![loop_stmt],
            else_branch: vec![],
        };
        assert!(nested.contains_loop());
    }

    #[test]
    fn display_forms() {
        let s = Statement::Declare {
            name: "total".into(),
            data_type: DataType::Int,
            init: Some(E::literal(0)),
        };
        assert_eq!(s.to_string(), "int total = 0;");
        let r = Statement::Return {
            expr: Some(E::param("level")),
        };
        assert_eq!(r.to_string(), "return :level;");
    }
}
