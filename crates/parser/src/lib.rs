//! SQL and procedural-UDF parser.
//!
//! The paper's rewrite tool (Figure 9) "accepts a database schema, an SQL query, and
//! definitions of UDFs used by the query, written in the syntax of a commercial database
//! system". This crate provides that front end:
//!
//! * [`lexer`] — a hand-written tokenizer for the SQL dialect used by the paper's
//!   examples (identifiers, numbers, strings, `:param` / `@var` / `?` parameters,
//!   operators).
//! * [`ast`] — the statement-level AST: `SELECT` queries, DDL (`CREATE TABLE`,
//!   `CREATE INDEX`), DML (`INSERT`), and `CREATE FUNCTION` definitions.
//! * [`parser`] — the recursive-descent parser for queries *and* for the procedural
//!   function bodies (declarations, assignments, `SELECT … INTO`, `IF`/`ELSE`,
//!   cursor loops in the paper's Example 5 style, `WHILE`, `RETURN`, `INSERT` into a
//!   table-valued result).
//! * [`planner`] — lowering of the parsed `SELECT` AST into the logical algebra of
//!   [`decorr_algebra`] (scans, joins, selections, projections, group-by, sort, limit)
//!   with UDF calls left in place as [`decorr_algebra::ScalarExpr::UdfCall`] for the
//!   rewriter to pick up.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{SelectStatement, SqlStatement};
pub use parser::{
    parse_expression, parse_function, parse_query, parse_statement, parse_statements,
};
pub use planner::plan_select;

use decorr_algebra::RelExpr;
use decorr_common::Result;

/// Convenience: parse a `SELECT` query and lower it to a logical plan in one step.
pub fn parse_and_plan(sql: &str) -> Result<RelExpr> {
    let select = parse_query(sql)?;
    plan_select(&select)
}
