//! Tokenizer for the SQL / procedural dialect.

use std::fmt;

use decorr_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised by the parser, case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal (quotes removed, embedded `''` unescaped).
    Str(String),
    /// `:name` — named parameter / host variable.
    NamedParam(String),
    /// `@name` (or `@@name`) — procedural variable such as `@price` or `@@fetch_status`.
    AtVariable(String),
    /// `?` — positional parameter.
    Positional,
    // Punctuation and operators.
    LParen,
    RParen,
    Comma,
    Semicolon,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
    /// End of input.
    Eof,
}

impl Token {
    /// If the token is an identifier, its lower-cased text.
    pub fn ident(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_ascii_lowercase()),
            _ => None,
        }
    }

    /// True if the token is the given keyword (case insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::NamedParam(s) => write!(f, ":{s}"),
            Token::AtVariable(s) => write!(f, "{s}"),
            Token::Positional => write!(f, "?"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Concat => write!(f, "||"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenizes an input string. `--` line comments and `/* … */` block comments are
/// skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = vec![];
    let mut i = 0;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < n && chars[i + 1] == '-' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(chars[i] == '*' && chars[i + 1] == '/') {
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(Error::Parse("unterminated block comment".into()));
                }
                i += 2;
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= n {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        if i + 1 < n && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                let mut is_float = false;
                if i < n && chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < n && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (chars[j] == '+' || chars[j] == '-') {
                        j += 1;
                    }
                    if j < n && chars[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().filter(|c| **c != '_').collect();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("invalid number '{text}'")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("invalid number '{text}'")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            ':' => {
                i += 1;
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if start == i {
                    return Err(Error::Parse("expected identifier after ':'".into()));
                }
                tokens.push(Token::NamedParam(
                    chars[start..i]
                        .iter()
                        .collect::<String>()
                        .to_ascii_lowercase(),
                ));
            }
            '@' => {
                let start = i;
                i += 1;
                if i < n && chars[i] == '@' {
                    i += 1;
                }
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::AtVariable(
                    chars[start..i]
                        .iter()
                        .collect::<String>()
                        .to_ascii_lowercase(),
                ));
            }
            '?' => {
                tokens.push(Token::Positional);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                // Accept both `=` and `==`.
                i += 1;
                if i < n && chars[i] == '=' {
                    i += 1;
                }
                tokens.push(Token::Eq);
            }
            '!' if i + 1 < n && chars[i + 1] == '=' => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                i += 1;
                if i < n && chars[i] == '=' {
                    tokens.push(Token::LtEq);
                    i += 1;
                } else if i < n && chars[i] == '>' {
                    tokens.push(Token::NotEq);
                    i += 1;
                } else {
                    tokens.push(Token::Lt);
                }
            }
            '>' => {
                i += 1;
                if i < n && chars[i] == '=' {
                    tokens.push(Token::GtEq);
                    i += 1;
                } else {
                    tokens.push(Token::Gt);
                }
            }
            '|' if i + 1 < n && chars[i + 1] == '|' => {
                tokens.push(Token::Concat);
                i += 2;
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_query() {
        let tokens = tokenize("select custkey, service_level(custkey) from customer;").unwrap();
        assert_eq!(tokens[0], Token::Ident("select".into()));
        assert_eq!(tokens[2], Token::Comma);
        assert_eq!(tokens[4], Token::LParen);
        assert_eq!(*tokens.last().unwrap(), Token::Eof);
    }

    #[test]
    fn tokenizes_params_and_variables() {
        let tokens =
            tokenize("where custkey = :ckey and price > @Price and s = ? and f = @@FETCH_STATUS")
                .unwrap();
        assert!(tokens.contains(&Token::NamedParam("ckey".into())));
        assert!(tokens.contains(&Token::AtVariable("@price".into())));
        assert!(tokens.contains(&Token::Positional));
        assert!(tokens.contains(&Token::AtVariable("@@fetch_status".into())));
    }

    #[test]
    fn tokenizes_numbers_and_strings() {
        let tokens = tokenize("1000000 0.15 1e3 'Platinum' 'O''Brien'").unwrap();
        assert_eq!(tokens[0], Token::Int(1_000_000));
        assert_eq!(tokens[1], Token::Float(0.15));
        assert_eq!(tokens[2], Token::Float(1000.0));
        assert_eq!(tokens[3], Token::Str("Platinum".into()));
        assert_eq!(tokens[4], Token::Str("O'Brien".into()));
    }

    #[test]
    fn tokenizes_operators() {
        let tokens = tokenize("a <> b <= c >= d != e || f == g").unwrap();
        assert!(tokens.contains(&Token::NotEq));
        assert!(tokens.contains(&Token::LtEq));
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::Concat));
        assert!(tokens.contains(&Token::Eq));
    }

    #[test]
    fn skips_comments() {
        let tokens = tokenize("select 1 -- trailing comment\n /* block */ , 2").unwrap();
        let idents: Vec<&Token> = tokens
            .iter()
            .filter(|t| matches!(t, Token::Int(_)))
            .collect();
        assert_eq!(idents.len(), 2);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("select #").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
