//! Statement-level AST produced by the parser.

use decorr_algebra::{JoinKind, ScalarExpr};
use decorr_common::Column;
use decorr_udf::UdfDefinition;

/// One item of a SELECT list: an expression with an optional alias, or `*`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SelectItem {
    /// `*` — every column of the FROM result.
    #[default]
    Wildcard,
    /// `t.*` — every column of one relation.
    QualifiedWildcard(String),
    /// `expr [as alias]`.
    Expr {
        expr: ScalarExpr,
        alias: Option<String>,
    },
}

/// A base table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

/// One explicit `JOIN` clause attached to a FROM item.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Option<ScalarExpr>,
}

/// One comma-separated element of the FROM clause together with its chained joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub base: TableRef,
    pub joins: Vec<JoinClause>,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: ScalarExpr,
    pub ascending: bool,
}

/// A parsed `SELECT` statement (before lowering to the algebra).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    pub distinct: bool,
    /// `SELECT TOP n …` / `… LIMIT n` — the experiments use this to vary the number of
    /// UDF invocations.
    pub limit: Option<usize>,
    pub items: Vec<SelectItem>,
    /// `INTO :v1, :v2` targets (only valid inside UDF bodies).
    pub into_targets: Vec<String>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<ScalarExpr>,
    pub group_by: Vec<ScalarExpr>,
    pub having: Option<ScalarExpr>,
    pub order_by: Vec<OrderByItem>,
}

/// Any top-level statement accepted by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStatement {
    /// `CREATE TABLE name (col type [not null], …)`
    CreateTable { name: String, columns: Vec<Column> },
    /// `DROP TABLE name`
    DropTable { name: String },
    /// `CREATE INDEX [idxname] ON table(column)`
    CreateIndex { table: String, column: String },
    /// `INSERT INTO table [(columns)] VALUES (…), (…)`
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<ScalarExpr>>,
    },
    /// `CREATE FUNCTION …` — a scalar or table-valued UDF definition.
    CreateFunction(UdfDefinition),
    /// `ANALYZE [table]` — build sampled histogram/MCV statistics for one table (or,
    /// without a name, every table) so the cost model estimates from measured
    /// distributions instead of defaults.
    Analyze { table: Option<String> },
    /// A `SELECT` query.
    Query(SelectStatement),
}

impl SqlStatement {
    /// Short name for diagnostics and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            SqlStatement::CreateTable { .. } => "create-table",
            SqlStatement::DropTable { .. } => "drop-table",
            SqlStatement::CreateIndex { .. } => "create-index",
            SqlStatement::Insert { .. } => "insert",
            SqlStatement::CreateFunction(_) => "create-function",
            SqlStatement::Analyze { .. } => "analyze",
            SqlStatement::Query(_) => "query",
        }
    }
}
