//! Recursive-descent parser for queries, DDL/DML and `CREATE FUNCTION` bodies.

use decorr_algebra::{BinaryOp, JoinKind, ScalarExpr, UnaryOp};
use decorr_common::{normalize_ident, Column, DataType, Error, Result, Schema, Value};
use decorr_udf::{Statement, UdfDefinition, UdfParameter};

use crate::ast::{
    FromItem, JoinClause, OrderByItem, SelectItem, SelectStatement, SqlStatement, TableRef,
};
use crate::lexer::{tokenize, Token};
use crate::planner::plan_select;

/// Parses a single top-level SQL statement.
pub fn parse_statement(sql: &str) -> Result<SqlStatement> {
    let mut statements = parse_statements(sql)?;
    match statements.len() {
        1 => Ok(statements.remove(0)),
        0 => Err(Error::Parse("empty statement".into())),
        n => Err(Error::Parse(format!("expected one statement, found {n}"))),
    }
}

/// Parses a script of one or more top-level statements separated by semicolons.
pub fn parse_statements(sql: &str) -> Result<Vec<SqlStatement>> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser::new(tokens);
    let mut out = vec![];
    loop {
        parser.skip_semicolons();
        if parser.at_eof() {
            break;
        }
        let start = parser.pos;
        let mut stmt = parser.parse_top_level()?;
        // Stamp `CREATE FUNCTION` statements with replayable source text, whichever
        // entry point parsed them: durable engines re-register functions by feeding
        // this string back through the parser.
        if let SqlStatement::CreateFunction(udf) = &mut stmt {
            if udf.source.is_none() {
                udf.source = Some(render_tokens(&parser.tokens[start..parser.pos]));
            }
        }
        out.push(stmt);
    }
    Ok(out)
}

/// Renders a token slice back to parseable SQL (statement sources are recorded this
/// way when the original text spans several statements). String literals re-escape
/// embedded quotes; everything else round-trips through `Token`'s display form.
fn render_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, token) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match token {
            Token::Str(s) => {
                out.push('\'');
                out.push_str(&s.replace('\'', "''"));
                out.push('\'');
            }
            other => {
                use std::fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }
    out
}

/// Parses a `SELECT` query.
pub fn parse_query(sql: &str) -> Result<SelectStatement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser::new(tokens);
    let select = parser.parse_select()?;
    parser.skip_semicolons();
    parser.expect_eof()?;
    Ok(select)
}

/// Parses a `CREATE FUNCTION` definition.
pub fn parse_function(sql: &str) -> Result<UdfDefinition> {
    match parse_statement(sql)? {
        SqlStatement::CreateFunction(mut udf) => {
            udf.source = Some(sql.trim().to_string());
            Ok(udf)
        }
        other => Err(Error::Parse(format!(
            "expected CREATE FUNCTION, found {}",
            other.kind()
        ))),
    }
}

/// Parses a scalar expression (used by tests and the rewrite tool's CLI).
pub fn parse_expression(sql: &str) -> Result<ScalarExpr> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser::new(tokens);
    let e = parser.parse_expr()?;
    parser.expect_eof()?;
    Ok(e)
}

/// Keywords that cannot be used as implicit (AS-less) aliases.
const RESERVED: &[&str] = &[
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "into",
    "union",
    "join",
    "inner",
    "left",
    "right",
    "full",
    "cross",
    "on",
    "as",
    "top",
    "and",
    "or",
    "not",
    "select",
    "case",
    "when",
    "then",
    "else",
    "end",
    "asc",
    "desc",
    "values",
    "set",
    "is",
    "null",
    "in",
    "exists",
    "begin",
    "if",
    "while",
    "return",
    "declare",
    "open",
    "fetch",
    "close",
    "deallocate",
    "distinct",
];

const AGG_NAMES: &[&str] = &["sum", "count", "min", "max", "avg"];

/// True if `name` is one of the built-in aggregate function names the planner folds into
/// an [`decorr_algebra::RelExpr::Aggregate`] node.
pub fn is_builtin_aggregate(name: &str) -> bool {
    AGG_NAMES.contains(&name.to_ascii_lowercase().as_str())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// A cursor declaration seen while parsing a function body.
struct CursorDecl {
    name: String,
    query: SelectStatement,
    fetch_vars: Vec<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn peek_at(&self, offset: usize) -> &Token {
        self.tokens.get(self.pos + offset).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "unexpected trailing input near '{}'",
                self.peek()
            )))
        }
    }

    fn skip_semicolons(&mut self) {
        while matches!(self.peek(), Token::Semicolon) {
            self.advance();
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        self.peek().is_keyword(kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword '{kw}', found '{}'",
                self.peek()
            )))
        }
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<()> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected '{t}', found '{}'",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(s) => Ok(normalize_ident(&s)),
            other => Err(Error::Parse(format!(
                "expected identifier, found '{other}'"
            ))),
        }
    }

    // ------------------------------------------------------------------ top level

    fn parse_top_level(&mut self) -> Result<SqlStatement> {
        if self.at_keyword("create") {
            match self.peek_at(1) {
                t if t.is_keyword("table") => self.parse_create_table(),
                t if t.is_keyword("index") || t.is_keyword("unique") => self.parse_create_index(),
                t if t.is_keyword("function") || t.is_keyword("or") => self.parse_create_function(),
                other => Err(Error::Parse(format!(
                    "unsupported CREATE statement near '{other}'"
                ))),
            }
        } else if self.at_keyword("drop") {
            self.advance();
            self.expect_keyword("table")?;
            let name = self.expect_ident()?;
            Ok(SqlStatement::DropTable { name })
        } else if self.at_keyword("insert") {
            self.parse_insert()
        } else if self.at_keyword("analyze") {
            self.advance();
            // `ANALYZE` alone covers every table; `ANALYZE t` one table.
            let table = match self.peek() {
                Token::Ident(_) => Some(self.expect_ident()?),
                _ => None,
            };
            Ok(SqlStatement::Analyze { table })
        } else if self.at_keyword("select") {
            Ok(SqlStatement::Query(self.parse_select()?))
        } else {
            Err(Error::Parse(format!(
                "unsupported statement starting with '{}'",
                self.peek()
            )))
        }
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let name = self.expect_ident()?;
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => DataType::Int,
            "float" | "real" | "double" | "decimal" | "numeric" | "money" => DataType::Float,
            "char" | "varchar" | "string" | "text" | "nvarchar" => DataType::Str,
            "bool" | "boolean" | "bit" => DataType::Bool,
            other => {
                return Err(Error::Parse(format!("unknown data type '{other}'")));
            }
        };
        // Optional length/precision arguments: char(10), decimal(12,2).
        if self.eat_token(&Token::LParen) {
            while !self.eat_token(&Token::RParen) {
                if self.at_eof() {
                    return Err(Error::Parse("unterminated type arguments".into()));
                }
                self.advance();
            }
        }
        Ok(ty)
    }

    fn is_type_keyword(token: &Token) -> bool {
        matches!(
            token.ident().as_deref(),
            Some(
                "int"
                    | "integer"
                    | "bigint"
                    | "smallint"
                    | "float"
                    | "real"
                    | "double"
                    | "decimal"
                    | "numeric"
                    | "money"
                    | "char"
                    | "varchar"
                    | "string"
                    | "text"
                    | "nvarchar"
                    | "bool"
                    | "boolean"
                    | "bit"
            )
        )
    }

    fn parse_create_table(&mut self) -> Result<SqlStatement> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let name = self.expect_ident()?;
        self.expect_token(&Token::LParen)?;
        let mut columns = vec![];
        loop {
            let col_name = self.expect_ident()?;
            let data_type = self.parse_data_type()?;
            let mut column = Column::new(col_name, data_type);
            // Optional column constraints: NOT NULL / PRIMARY KEY (primary key implies
            // not null; both are accepted and otherwise ignored).
            loop {
                if self.eat_keyword("not") {
                    self.expect_keyword("null")?;
                    column = column.not_null();
                } else if self.eat_keyword("primary") {
                    self.expect_keyword("key")?;
                    column = column.not_null();
                } else {
                    break;
                }
            }
            columns.push(column);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(SqlStatement::CreateTable { name, columns })
    }

    fn parse_create_index(&mut self) -> Result<SqlStatement> {
        self.expect_keyword("create")?;
        self.eat_keyword("unique");
        self.expect_keyword("index")?;
        // Optional index name.
        if !self.at_keyword("on") {
            self.expect_ident()?;
        }
        self.expect_keyword("on")?;
        let table = self.expect_ident()?;
        self.expect_token(&Token::LParen)?;
        let column = self.expect_ident()?;
        self.expect_token(&Token::RParen)?;
        Ok(SqlStatement::CreateIndex { table, column })
    }

    fn parse_insert(&mut self) -> Result<SqlStatement> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.expect_ident()?;
        let mut columns = None;
        if self.eat_token(&Token::LParen) {
            let mut cols = vec![];
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            columns = Some(cols);
        }
        self.expect_keyword("values")?;
        let mut rows = vec![];
        loop {
            self.expect_token(&Token::LParen)?;
            let mut row = vec![];
            loop {
                row.push(self.parse_expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            rows.push(row);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        Ok(SqlStatement::Insert {
            table,
            columns,
            rows,
        })
    }

    // ------------------------------------------------------------------ SELECT

    fn parse_select(&mut self) -> Result<SelectStatement> {
        self.expect_keyword("select")?;
        let mut select = SelectStatement::default();
        if self.eat_keyword("distinct") {
            select.distinct = true;
        }
        if self.eat_keyword("top") {
            select.limit = Some(self.parse_usize()?);
        }
        // Select list.
        loop {
            select.items.push(self.parse_select_item()?);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        // INTO targets (procedural contexts).
        if self.eat_keyword("into") {
            loop {
                let target = match self.advance() {
                    Token::NamedParam(p) => p,
                    Token::AtVariable(v) => v,
                    Token::Ident(s) => normalize_ident(&s),
                    other => {
                        return Err(Error::Parse(format!(
                            "expected INTO target variable, found '{other}'"
                        )))
                    }
                };
                select.into_targets.push(target);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("from") {
            loop {
                select.from.push(self.parse_from_item()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("where") {
            select.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                select.group_by.push(self.parse_expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("having") {
            select.having = Some(self.parse_expr()?);
        }
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                select.order_by.push(OrderByItem { expr, ascending });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("limit") {
            select.limit = Some(self.parse_usize()?);
        }
        Ok(select)
    }

    fn parse_usize(&mut self) -> Result<usize> {
        match self.advance() {
            Token::Int(i) if i >= 0 => Ok(i as usize),
            other => Err(Error::Parse(format!(
                "expected non-negative integer, found '{other}'"
            ))),
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if matches!(self.peek(), Token::Star) {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // t.* qualified wildcard
        if matches!(self.peek(), Token::Ident(_))
            && matches!(self.peek_at(1), Token::Dot)
            && matches!(self.peek_at(2), Token::Star)
        {
            let q = self.expect_ident()?;
            self.advance(); // .
            self.advance(); // *
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let mut alias = None;
        if self.eat_keyword("as") {
            alias = Some(self.expect_ident()?);
        } else if let Token::Ident(s) = self.peek() {
            if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                alias = Some(self.expect_ident()?);
            }
        }
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let table = self.expect_ident()?;
        let mut alias = None;
        if self.eat_keyword("as") {
            alias = Some(self.expect_ident()?);
        } else if let Token::Ident(s) = self.peek() {
            if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                alias = Some(self.expect_ident()?);
            }
        }
        Ok(TableRef { table, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let base = self.parse_table_ref()?;
        let mut joins = vec![];
        loop {
            let kind = if self.at_keyword("join") || self.at_keyword("inner") {
                self.eat_keyword("inner");
                self.expect_keyword("join")?;
                JoinKind::Inner
            } else if self.at_keyword("left") {
                self.advance();
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::LeftOuter
            } else if self.at_keyword("cross") {
                self.advance();
                self.expect_keyword("join")?;
                JoinKind::Cross
            } else {
                break;
            };
            let table = self.parse_table_ref()?;
            let on = if self.eat_keyword("on") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(JoinClause { kind, table, on });
        }
        Ok(FromItem { base, joins })
    }

    // ------------------------------------------------------------------ expressions

    fn parse_expr(&mut self) -> Result<ScalarExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<ScalarExpr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = ScalarExpr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<ScalarExpr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = ScalarExpr::and(left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<ScalarExpr> {
        if self.eat_keyword("not") {
            let inner = self.parse_not()?;
            return Ok(ScalarExpr::not(inner));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<ScalarExpr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.at_keyword("is") {
            self.advance();
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            let op = if negated {
                UnaryOp::IsNotNull
            } else {
                UnaryOp::IsNull
            };
            return Ok(ScalarExpr::Unary {
                op,
                expr: Box::new(left),
            });
        }
        // [NOT] IN (subquery | list)
        let negated_in = if self.at_keyword("not") && self.peek_at(1).is_keyword("in") {
            self.advance();
            true
        } else {
            false
        };
        if self.at_keyword("in") {
            self.advance();
            self.expect_token(&Token::LParen)?;
            if self.at_keyword("select") {
                let sub = self.parse_select()?;
                self.expect_token(&Token::RParen)?;
                let plan = plan_select(&sub)?;
                return Ok(ScalarExpr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(plan),
                    negated: negated_in,
                });
            }
            // IN value list → chain of equality comparisons.
            let mut expr: Option<ScalarExpr> = None;
            loop {
                let v = self.parse_expr()?;
                let eq = ScalarExpr::eq(left.clone(), v);
                expr = Some(match expr {
                    Some(acc) => ScalarExpr::or(acc, eq),
                    None => eq,
                });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            let mut result = expr.ok_or_else(|| Error::Parse("empty IN list".into()))?;
            if negated_in {
                result = ScalarExpr::not(result);
            }
            return Ok(result);
        }
        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(ScalarExpr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<ScalarExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                Token::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = ScalarExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<ScalarExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                Token::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = ScalarExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<ScalarExpr> {
        if self.eat_token(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(ScalarExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_token(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<ScalarExpr> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Int(i)))
            }
            Token::Float(x) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Float(x)))
            }
            Token::Str(s) => {
                self.advance();
                Ok(ScalarExpr::Literal(Value::Str(s)))
            }
            Token::NamedParam(p) => {
                self.advance();
                Ok(ScalarExpr::Param(p))
            }
            Token::AtVariable(v) => {
                self.advance();
                Ok(ScalarExpr::Param(v))
            }
            Token::Positional => {
                self.advance();
                Ok(ScalarExpr::Param("?1".to_string()))
            }
            Token::LParen => {
                self.advance();
                if self.at_keyword("select") {
                    let sub = self.parse_select()?;
                    self.expect_token(&Token::RParen)?;
                    let plan = plan_select(&sub)?;
                    return Ok(ScalarExpr::ScalarSubquery(Box::new(plan)));
                }
                let inner = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.advance();
                        Ok(ScalarExpr::Literal(Value::Null))
                    }
                    "true" => {
                        self.advance();
                        Ok(ScalarExpr::Literal(Value::Bool(true)))
                    }
                    "false" => {
                        self.advance();
                        Ok(ScalarExpr::Literal(Value::Bool(false)))
                    }
                    "case" => self.parse_case(),
                    "cast" => self.parse_cast(),
                    "exists" => {
                        self.advance();
                        self.expect_token(&Token::LParen)?;
                        self.expect_keyword("select")
                            .map_err(|_| Error::Parse("EXISTS requires a subquery".into()))?;
                        // Back up one token: parse_select expects to consume SELECT.
                        self.pos -= 1;
                        let sub = self.parse_select()?;
                        self.expect_token(&Token::RParen)?;
                        let plan = plan_select(&sub)?;
                        Ok(ScalarExpr::Exists(Box::new(plan)))
                    }
                    _ => {
                        // Function call?
                        if matches!(self.peek_at(1), Token::LParen) {
                            return self.parse_function_call(&lower);
                        }
                        // Qualified or bare column reference.
                        self.advance();
                        if self.eat_token(&Token::Dot) {
                            let col = self.expect_ident()?;
                            Ok(ScalarExpr::qualified_column(lower, col))
                        } else {
                            Ok(ScalarExpr::column(lower))
                        }
                    }
                }
            }
            other => Err(Error::Parse(format!(
                "unexpected token '{other}' in expression"
            ))),
        }
    }

    fn parse_case(&mut self) -> Result<ScalarExpr> {
        self.expect_keyword("case")?;
        let mut branches = vec![];
        let mut else_expr = None;
        while self.eat_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        if self.eat_keyword("else") {
            else_expr = Some(Box::new(self.parse_expr()?));
        }
        self.expect_keyword("end")?;
        if branches.is_empty() {
            return Err(Error::Parse(
                "CASE requires at least one WHEN branch".into(),
            ));
        }
        Ok(ScalarExpr::Case {
            branches,
            else_expr,
        })
    }

    fn parse_cast(&mut self) -> Result<ScalarExpr> {
        self.expect_keyword("cast")?;
        self.expect_token(&Token::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword("as")?;
        let data_type = self.parse_data_type()?;
        self.expect_token(&Token::RParen)?;
        Ok(ScalarExpr::Cast {
            expr: Box::new(expr),
            data_type,
        })
    }

    fn parse_function_call(&mut self, name: &str) -> Result<ScalarExpr> {
        self.advance(); // name
        self.expect_token(&Token::LParen)?;
        // count(*) — and any agg(*) — parses as a call with no arguments.
        if matches!(self.peek(), Token::Star) && matches!(self.peek_at(1), Token::RParen) {
            self.advance();
            self.advance();
            return Ok(ScalarExpr::UdfCall {
                name: name.to_string(),
                args: vec![],
            });
        }
        let mut args = vec![];
        if !self.eat_token(&Token::RParen) {
            // Optional DISTINCT inside aggregate calls is accepted and ignored (bag
            // semantics are enough for every workload in the paper).
            self.eat_keyword("distinct");
            loop {
                args.push(self.parse_expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        if name == "coalesce" {
            return Ok(ScalarExpr::Coalesce(args));
        }
        Ok(ScalarExpr::UdfCall {
            name: name.to_string(),
            args,
        })
    }

    // ------------------------------------------------------------------ CREATE FUNCTION

    fn parse_create_function(&mut self) -> Result<SqlStatement> {
        self.expect_keyword("create")?;
        if self.eat_keyword("or") {
            self.expect_keyword("replace")?;
        }
        self.expect_keyword("function")?;
        let name = self.expect_ident()?;
        self.expect_token(&Token::LParen)?;
        let mut params = vec![];
        if !self.eat_token(&Token::RParen) {
            loop {
                params.push(self.parse_udf_parameter()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        self.expect_keyword("returns")?;
        let mut return_type = DataType::Null;
        let mut returns_table = None;
        let mut result_table_name: Option<String> = None;
        if self.at_keyword("table") {
            self.advance();
            returns_table = Some(self.parse_table_type()?);
        } else if Self::is_type_keyword(self.peek()) {
            return_type = self.parse_data_type()?;
        } else {
            // `returns tt table(…)` — named result table.
            let tname = self.expect_ident()?;
            result_table_name = Some(tname);
            self.expect_keyword("table")?;
            returns_table = Some(self.parse_table_type()?);
        }
        // Optional volatility clause before AS: `VOLATILE` opts out of the executor's
        // dedup/memo machinery, `DETERMINISTIC` spells out the default.
        let mut pure = true;
        let mut purity_declared = false;
        loop {
            if self.eat_keyword("volatile") {
                pure = false;
                purity_declared = true;
            } else if self.eat_keyword("deterministic") {
                pure = true;
                purity_declared = true;
            } else {
                break;
            }
        }
        self.expect_keyword("as")?;
        self.expect_keyword("begin")?;
        let mut ctx = BodyContext {
            result_table: result_table_name,
            cursors: vec![],
        };
        let body = self.parse_block(&mut ctx)?;
        let mut udf = UdfDefinition::new(name, params, return_type, body);
        udf.returns_table = returns_table;
        udf.pure = pure;
        udf.purity_declared = purity_declared;
        Ok(SqlStatement::CreateFunction(udf))
    }

    fn parse_udf_parameter(&mut self) -> Result<UdfParameter> {
        // The paper writes `int ckey`; T-SQL writes `@ckey int`. Accept type-first,
        // name-first and @-prefixed names.
        if Self::is_type_keyword(self.peek()) {
            let ty = self.parse_data_type()?;
            let name = match self.advance() {
                Token::Ident(s) => normalize_ident(&s),
                Token::AtVariable(v) => v,
                other => {
                    return Err(Error::Parse(format!(
                        "expected parameter name, found '{other}'"
                    )))
                }
            };
            Ok(UdfParameter::new(name, ty))
        } else {
            let name = match self.advance() {
                Token::Ident(s) => normalize_ident(&s),
                Token::AtVariable(v) => v,
                other => {
                    return Err(Error::Parse(format!(
                        "expected parameter name, found '{other}'"
                    )))
                }
            };
            let ty = self.parse_data_type()?;
            Ok(UdfParameter::new(name, ty))
        }
    }

    fn parse_table_type(&mut self) -> Result<Schema> {
        self.expect_token(&Token::LParen)?;
        let mut columns = vec![];
        loop {
            let col_name = self.expect_ident()?;
            let ty = self.parse_data_type()?;
            columns.push(Column::new(col_name, ty));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(Schema::new(columns))
    }

    /// Parses statements until the matching `end`.
    fn parse_block(&mut self, ctx: &mut BodyContext) -> Result<Vec<Statement>> {
        let mut out = vec![];
        loop {
            self.skip_semicolons();
            if self.eat_keyword("end") {
                break;
            }
            if self.at_eof() {
                return Err(Error::Parse("unterminated BEGIN block".into()));
            }
            if let Some(stmt) = self.parse_proc_statement(ctx)? {
                out.push(stmt);
            }
        }
        Ok(out)
    }

    /// Parses a single procedural statement. Returns `None` for statements that are
    /// consumed but produce no AST node (cursor open/close/deallocate, the initial
    /// fetch).
    fn parse_proc_statement(&mut self, ctx: &mut BodyContext) -> Result<Option<Statement>> {
        // declare c cursor for <select>  |  declare x int [= expr]
        if self.at_keyword("declare") {
            if self.peek_at(2).is_keyword("cursor") {
                self.advance(); // declare
                let name = self.expect_ident()?;
                self.expect_keyword("cursor")?;
                self.expect_keyword("for")?;
                let query = self.parse_select()?;
                ctx.cursors.push(CursorDecl {
                    name,
                    query,
                    fetch_vars: vec![],
                });
                return Ok(None);
            }
            self.advance(); // declare
            let name = self.parse_variable_name()?;
            let data_type = self.parse_data_type()?;
            let init = if self.eat_token(&Token::Eq) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Some(Statement::Declare {
                name,
                data_type,
                init,
            }));
        }
        // open / close / deallocate <cursor>
        if self.at_keyword("open") || self.at_keyword("close") || self.at_keyword("deallocate") {
            self.advance();
            self.expect_ident()?;
            return Ok(None);
        }
        // fetch next from c into @a, @b
        if self.at_keyword("fetch") {
            let (cursor, vars) = self.parse_fetch()?;
            if let Some(c) = ctx.cursors.iter_mut().find(|c| c.name == cursor) {
                if c.fetch_vars.is_empty() {
                    c.fetch_vars = vars;
                }
            } else {
                return Err(Error::Parse(format!(
                    "fetch from undeclared cursor '{cursor}'"
                )));
            }
            return Ok(None);
        }
        // while <cond> …
        if self.at_keyword("while") {
            return self.parse_while(ctx).map(Some);
        }
        // if (<cond>) …
        if self.at_keyword("if") {
            return self.parse_if(ctx).map(Some);
        }
        // return [expr]
        if self.eat_keyword("return") {
            if matches!(self.peek(), Token::Semicolon) || self.peek().is_keyword("end") {
                return Ok(Some(Statement::Return { expr: None }));
            }
            // `return tt;` for a table-valued UDF returns no scalar expression.
            if let Token::Ident(id) = self.peek() {
                if ctx
                    .result_table
                    .as_deref()
                    .map(|t| t.eq_ignore_ascii_case(id))
                    .unwrap_or(false)
                {
                    self.advance();
                    return Ok(Some(Statement::Return { expr: None }));
                }
            }
            // `return select …` — a scalar query as return value (Example 4).
            if self.at_keyword("select") {
                let select = self.parse_select()?;
                let plan = plan_select(&select)?;
                return Ok(Some(Statement::Return {
                    expr: Some(ScalarExpr::ScalarSubquery(Box::new(plan))),
                }));
            }
            let expr = self.parse_expr()?;
            return Ok(Some(Statement::Return { expr: Some(expr) }));
        }
        // select … into …
        if self.at_keyword("select") {
            let select = self.parse_select()?;
            if select.into_targets.is_empty() {
                return Err(Error::Parse(
                    "SELECT inside a function body must have an INTO clause".into(),
                ));
            }
            let targets = select.into_targets.clone();
            let plan = plan_select(&select)?;
            return Ok(Some(Statement::SelectInto {
                query: plan,
                targets,
            }));
        }
        // insert into <result table> values (…)
        if self.at_keyword("insert") {
            self.advance();
            self.expect_keyword("into")?;
            let table = self.expect_ident()?;
            let inserts_into_result = ctx
                .result_table
                .as_deref()
                .map(|r| r.eq_ignore_ascii_case(&table))
                .unwrap_or(false);
            if !inserts_into_result {
                return Err(Error::Unsupported(format!(
                    "INSERT into base table '{table}' inside a UDF (side effects are not \
                     supported)"
                )));
            }
            self.expect_keyword("values")?;
            self.expect_token(&Token::LParen)?;
            let mut values = vec![];
            loop {
                values.push(self.parse_expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok(Some(Statement::InsertIntoResult { values }));
        }
        // set x = expr
        if self.eat_keyword("set") {
            let name = self.parse_variable_name()?;
            self.expect_token(&Token::Eq)?;
            let expr = self.parse_expr()?;
            return Ok(Some(Statement::Assign { name, expr }));
        }
        // <type> x [= expr][, y [= expr]]…   (C-style declarations used by the paper)
        if Self::is_type_keyword(self.peek()) && !matches!(self.peek_at(1), Token::LParen) {
            let data_type = self.parse_data_type()?;
            let mut decls = vec![];
            loop {
                let name = self.parse_variable_name()?;
                let init = if self.eat_token(&Token::Eq) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                decls.push(Statement::Declare {
                    name,
                    data_type,
                    init,
                });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            // Multiple same-type declarations become multiple statements; return the
            // first and push the rest through a small buffer trick: since the caller
            // expects one statement we wrap them in a no-op If(true) block when needed.
            if decls.len() == 1 {
                return Ok(Some(decls.into_iter().next().unwrap()));
            }
            return Ok(Some(Statement::If {
                condition: ScalarExpr::Literal(Value::Bool(true)),
                then_branch: decls,
                else_branch: vec![],
            }));
        }
        // assignment: x = expr   or   @x = expr
        if matches!(self.peek(), Token::Ident(_) | Token::AtVariable(_))
            && matches!(self.peek_at(1), Token::Eq)
        {
            let name = self.parse_variable_name()?;
            self.expect_token(&Token::Eq)?;
            let expr = self.parse_expr()?;
            return Ok(Some(Statement::Assign { name, expr }));
        }
        Err(Error::Parse(format!(
            "unsupported statement in function body near '{}'",
            self.peek()
        )))
    }

    fn parse_variable_name(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(s) => Ok(normalize_ident(&s)),
            Token::AtVariable(v) => Ok(v),
            Token::NamedParam(p) => Ok(p),
            other => Err(Error::Parse(format!(
                "expected variable name, found '{other}'"
            ))),
        }
    }

    /// Parses `fetch next from <cursor> into @a, @b, …` and returns (cursor, vars).
    fn parse_fetch(&mut self) -> Result<(String, Vec<String>)> {
        self.expect_keyword("fetch")?;
        self.eat_keyword("next");
        self.expect_keyword("from")?;
        let cursor = self.expect_ident()?;
        self.expect_keyword("into")?;
        let mut vars = vec![];
        loop {
            vars.push(self.parse_variable_name()?);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        Ok((cursor, vars))
    }

    fn parse_if(&mut self, ctx: &mut BodyContext) -> Result<Statement> {
        self.expect_keyword("if")?;
        let condition = if self.eat_token(&Token::LParen) {
            let c = self.parse_expr()?;
            self.expect_token(&Token::RParen)?;
            c
        } else {
            self.parse_expr()?
        };
        let then_branch = self.parse_branch(ctx)?;
        let mut else_branch = vec![];
        if self.eat_keyword("else") {
            if self.at_keyword("if") {
                else_branch = vec![self.parse_if(ctx)?];
            } else {
                else_branch = self.parse_branch(ctx)?;
            }
        }
        Ok(Statement::If {
            condition,
            then_branch,
            else_branch,
        })
    }

    /// Parses either a `begin … end` block or a single statement, as the body of an
    /// if/else arm.
    fn parse_branch(&mut self, ctx: &mut BodyContext) -> Result<Vec<Statement>> {
        if self.eat_keyword("begin") {
            return self.parse_block(ctx);
        }
        let stmt = self.parse_proc_statement(ctx)?;
        self.skip_semicolons();
        Ok(stmt.into_iter().collect())
    }

    fn parse_while(&mut self, ctx: &mut BodyContext) -> Result<Statement> {
        self.expect_keyword("while")?;
        let condition = if self.eat_token(&Token::LParen) {
            let c = self.parse_expr()?;
            self.expect_token(&Token::RParen)?;
            c
        } else {
            self.parse_expr()?
        };
        // Is this the cursor-loop idiom `while @@fetch_status = 0`?
        let is_cursor_loop = expr_mentions_fetch_status(&condition);
        if is_cursor_loop {
            let cursor = ctx
                .cursors
                .last()
                .ok_or_else(|| Error::Parse("cursor loop without a declared cursor".into()))?;
            let query = cursor.query.clone();
            let fetch_vars = cursor.fetch_vars.clone();
            if fetch_vars.is_empty() {
                return Err(Error::Parse(
                    "cursor loop without an initial FETCH … INTO".into(),
                ));
            }
            let body = self.parse_cursor_loop_body(ctx)?;
            let plan = plan_select(&query)?;
            return Ok(Statement::CursorLoop {
                query: plan,
                fetch_vars,
                body,
            });
        }
        // Plain while loop: body is a begin…end block or a single statement.
        let body = self.parse_branch(ctx)?;
        Ok(Statement::While { condition, body })
    }

    /// Parses the body of a `while @@fetch_status = 0` loop. The body either is a
    /// `begin … end` block, or (as in the paper's Example 5) runs until the `close`
    /// statement that follows the loop. Interior `fetch next` statements (the loop
    /// advance) are dropped.
    fn parse_cursor_loop_body(&mut self, ctx: &mut BodyContext) -> Result<Vec<Statement>> {
        let mut out = vec![];
        if self.eat_keyword("begin") {
            loop {
                self.skip_semicolons();
                if self.eat_keyword("end") {
                    break;
                }
                if self.at_eof() {
                    return Err(Error::Parse("unterminated cursor loop body".into()));
                }
                if self.at_keyword("fetch") {
                    self.parse_fetch()?;
                    continue;
                }
                if let Some(stmt) = self.parse_proc_statement(ctx)? {
                    out.push(stmt);
                }
            }
            return Ok(out);
        }
        loop {
            self.skip_semicolons();
            if self.at_keyword("close") || self.at_keyword("deallocate") || self.at_keyword("end") {
                break;
            }
            if self.at_eof() {
                return Err(Error::Parse("unterminated cursor loop body".into()));
            }
            if self.at_keyword("fetch") {
                self.parse_fetch()?;
                continue;
            }
            // `return` terminates the loop body (it belongs to the statements after the
            // loop in the paper's layout).
            if self.at_keyword("return") {
                break;
            }
            if let Some(stmt) = self.parse_proc_statement(ctx)? {
                out.push(stmt);
            }
        }
        Ok(out)
    }
}

struct BodyContext {
    result_table: Option<String>,
    cursors: Vec<CursorDecl>,
}

fn expr_mentions_fetch_status(expr: &ScalarExpr) -> bool {
    match expr {
        ScalarExpr::Param(p) => p.contains("fetch_status"),
        ScalarExpr::Column(c) => c.name.contains("fetch_status"),
        other => other
            .children()
            .iter()
            .any(|c| expr_mentions_fetch_status(c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_statement_parses_with_and_without_a_table() {
        match parse_statement("analyze orders").unwrap() {
            SqlStatement::Analyze { table } => assert_eq!(table.as_deref(), Some("orders")),
            other => panic!("unexpected statement {other:?}"),
        }
        match parse_statement("ANALYZE").unwrap() {
            SqlStatement::Analyze { table } => assert_eq!(table, None),
            other => panic!("unexpected statement {other:?}"),
        }
        // Statement lists mix ANALYZE with other statements.
        let statements = parse_statements("create table t(x int); analyze t; analyze").unwrap();
        let kinds: Vec<&str> = statements.iter().map(|s| s.kind()).collect();
        assert_eq!(kinds, vec!["create-table", "analyze", "analyze"]);
    }
}
