//! Lowering of parsed `SELECT` statements into the logical algebra.

use decorr_algebra::{AggCall, AggFunc, JoinKind, ProjectItem, RelExpr, ScalarExpr, SortKey};
use decorr_common::{Error, Result};

use crate::ast::{SelectItem, SelectStatement};

/// Lowers a parsed SELECT statement into a [`RelExpr`] tree:
/// `Scan → Join* → Select(where) → Aggregate? → Select(having)? → Project → Sort? → Limit?`.
///
/// UDF invocations remain embedded as [`ScalarExpr::UdfCall`]; built-in aggregate
/// function names (`sum`, `count`, `min`, `max`, `avg`) are recognised and pulled into an
/// [`RelExpr::Aggregate`] node.
pub fn plan_select(select: &SelectStatement) -> Result<RelExpr> {
    // 1. FROM clause: cross-join the comma-separated items; each item chains its joins.
    let mut plan: Option<RelExpr> = None;
    for item in &select.from {
        let mut item_plan = scan_of(&item.base.table, item.base.alias.as_deref());
        for join in &item.joins {
            let right = scan_of(&join.table.table, join.table.alias.as_deref());
            item_plan = RelExpr::Join {
                left: Box::new(item_plan),
                right: Box::new(right),
                kind: join.kind,
                condition: join.on.clone(),
            };
        }
        plan = Some(match plan {
            None => item_plan,
            Some(existing) => RelExpr::Join {
                left: Box::new(existing),
                right: Box::new(item_plan),
                kind: JoinKind::Cross,
                condition: None,
            },
        });
    }
    // A query with no FROM clause (e.g. `select 1+1`) selects from the Single relation.
    let mut plan = plan.unwrap_or(RelExpr::Single);

    // 2. WHERE.
    if let Some(pred) = &select.where_clause {
        plan = RelExpr::Select {
            input: Box::new(plan),
            predicate: pred.clone(),
        };
    }

    // 3. Aggregation: extract aggregate calls from the select list and HAVING clause.
    let mut agg_calls: Vec<AggCall> = vec![];
    let mut rewritten_items: Vec<(ScalarExpr, Option<String>)> = vec![];
    let mut wildcard_only = false;
    for item in select.items.iter() {
        match item {
            SelectItem::Wildcard => {
                if select.items.len() == 1 {
                    wildcard_only = true;
                } else {
                    return Err(Error::Unsupported(
                        "`*` mixed with other select items is not supported".into(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                return Err(Error::Unsupported(format!(
                    "qualified wildcard '{q}.*' is not supported"
                )));
            }
            SelectItem::Expr { expr, alias } => {
                let preferred = alias.clone();
                let rewritten = extract_aggs(expr, &mut agg_calls, preferred.as_deref());
                rewritten_items.push((rewritten, alias.clone()));
            }
        }
    }
    let rewritten_having = select
        .having
        .as_ref()
        .map(|h| extract_aggs(h, &mut agg_calls, None));

    let has_aggregation = !agg_calls.is_empty() || !select.group_by.is_empty();
    if has_aggregation {
        plan = RelExpr::Aggregate {
            input: Box::new(plan),
            group_by: select.group_by.clone(),
            aggregates: agg_calls,
        };
        if let Some(having) = rewritten_having {
            plan = RelExpr::Select {
                input: Box::new(plan),
                predicate: having,
            };
        }
    } else if select.having.is_some() {
        return Err(Error::Unsupported(
            "HAVING without aggregation is not supported".into(),
        ));
    }

    // 4. Projection. A bare `select * from t` needs no projection node. With
    //    aggregation, a lone wildcard keeps the aggregate's natural output.
    if !wildcard_only {
        let items: Vec<ProjectItem> = rewritten_items
            .into_iter()
            .map(|(expr, alias)| match alias {
                Some(a) => ProjectItem::aliased(expr, a),
                None => ProjectItem::new(expr),
            })
            .collect();
        // When the whole select list is exactly the aggregate outputs in order, the
        // projection is still added — it is cheap and keeps output names predictable.
        plan = RelExpr::Project {
            input: Box::new(plan),
            items,
            distinct: select.distinct,
        };
    } else if select.distinct {
        return Err(Error::Unsupported(
            "SELECT DISTINCT * is not supported".into(),
        ));
    }

    // 5. ORDER BY.
    if !select.order_by.is_empty() {
        plan = RelExpr::Sort {
            input: Box::new(plan),
            keys: select
                .order_by
                .iter()
                .map(|o| SortKey {
                    expr: o.expr.clone(),
                    ascending: o.ascending,
                })
                .collect(),
        };
    }

    // 6. LIMIT / TOP.
    if let Some(limit) = select.limit {
        plan = RelExpr::Limit {
            input: Box::new(plan),
            limit,
        };
    }
    Ok(plan)
}

fn scan_of(table: &str, alias: Option<&str>) -> RelExpr {
    match alias {
        Some(a) => RelExpr::scan_as(table, a),
        None => RelExpr::scan(table),
    }
}

/// Replaces aggregate function calls in `expr` with column references to aggregate
/// output columns, appending the extracted calls to `agg_calls`.
fn extract_aggs(
    expr: &ScalarExpr,
    agg_calls: &mut Vec<AggCall>,
    preferred_alias: Option<&str>,
) -> ScalarExpr {
    match expr {
        ScalarExpr::UdfCall { name, args } if is_agg_name(name) => {
            let func = match (name.as_str(), args.is_empty()) {
                ("count", true) => AggFunc::CountStar,
                ("count", false) => AggFunc::Count,
                ("sum", _) => AggFunc::Sum,
                ("min", _) => AggFunc::Min,
                ("max", _) => AggFunc::Max,
                ("avg", _) => AggFunc::Avg,
                _ => unreachable!("is_agg_name covers exactly these"),
            };
            // Reuse an identical aggregate if present; otherwise add a new one.
            let alias = preferred_alias
                .map(|a| a.to_string())
                .unwrap_or_else(|| format!("agg{}", agg_calls.len()));
            if let Some(existing) = agg_calls.iter().find(|c| c.func == func && c.args == *args) {
                return ScalarExpr::column(existing.alias.clone());
            }
            agg_calls.push(AggCall::new(func, args.clone(), alias.clone()));
            ScalarExpr::column(alias)
        }
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(extract_aggs(left, agg_calls, None)),
            right: Box::new(extract_aggs(right, agg_calls, None)),
        },
        ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(extract_aggs(expr, agg_calls, None)),
        },
        ScalarExpr::Case {
            branches,
            else_expr,
        } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(p, e)| {
                    (
                        extract_aggs(p, agg_calls, None),
                        extract_aggs(e, agg_calls, None),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(extract_aggs(e, agg_calls, None))),
        },
        ScalarExpr::Coalesce(args) => ScalarExpr::Coalesce(
            args.iter()
                .map(|a| extract_aggs(a, agg_calls, None))
                .collect(),
        ),
        ScalarExpr::Cast { expr, data_type } => ScalarExpr::Cast {
            expr: Box::new(extract_aggs(expr, agg_calls, None)),
            data_type: *data_type,
        },
        other => other.clone(),
    }
}

fn is_agg_name(name: &str) -> bool {
    crate::parser::is_builtin_aggregate(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SqlStatement;
    use crate::parse_and_plan as parse_and_plan_str;
    use crate::parser::{parse_function, parse_query, parse_statement};
    use decorr_algebra::display::explain;
    use decorr_common::DataType;
    use decorr_udf::Statement;

    #[test]
    fn plans_example1_query() {
        // Example 1 of the paper: UDF invocation in the select list.
        let plan =
            parse_and_plan_str("select custkey, service_level(custkey) from customer").unwrap();
        let text = explain(&plan);
        assert!(text.contains("Project [custkey, service_level(custkey)"));
        assert!(text.contains("Scan customer"));
        assert!(plan.contains_udf_call());
    }

    #[test]
    fn plans_scalar_aggregate_query() {
        // The body query of Example 1's UDF.
        let plan =
            parse_and_plan_str("select sum(totalprice) from orders where custkey = :ckey").unwrap();
        match &plan {
            RelExpr::Project { input, .. } => match input.as_ref() {
                RelExpr::Aggregate {
                    group_by,
                    aggregates,
                    ..
                } => {
                    assert!(group_by.is_empty());
                    assert_eq!(aggregates.len(), 1);
                    assert_eq!(aggregates[0].func, AggFunc::Sum);
                }
                other => panic!("expected Aggregate below Project, got {}", other.name()),
            },
            other => panic!("expected Project on top, got {}", other.name()),
        }
    }

    #[test]
    fn plans_group_by_query() {
        let plan = parse_and_plan_str(
            "select custkey, sum(totalprice) as totalbusiness from orders group by custkey",
        )
        .unwrap();
        let text = explain(&plan);
        assert!(
            text.contains("Aggregate group_by=[custkey] aggs=[sum(totalprice) as totalbusiness]")
        );
    }

    #[test]
    fn plans_joins_and_where() {
        let plan = parse_and_plan_str(
            "select o.orderkey from orders o, customer c \
             left outer join nation n on c.nationkey = n.nationkey \
             where o.custkey = c.custkey and o.totalprice > 1000",
        )
        .unwrap();
        let text = explain(&plan);
        assert!(text.contains("Join(cross)"));
        assert!(text.contains("Join(left outer) on (c.nationkey = n.nationkey)"));
        assert!(text.contains("Select [((o.custkey = c.custkey) AND (o.totalprice > 1000))]"));
    }

    #[test]
    fn plans_top_and_order_by() {
        let plan =
            parse_and_plan_str("select top 100 orderkey from orders order by totalprice desc")
                .unwrap();
        match &plan {
            RelExpr::Limit { limit, input } => {
                assert_eq!(*limit, 100);
                assert!(matches!(input.as_ref(), RelExpr::Sort { .. }));
            }
            other => panic!("expected Limit on top, got {}", other.name()),
        }
        // LIMIT syntax is equivalent.
        let plan2 =
            parse_and_plan_str("select orderkey from orders order by totalprice desc limit 100")
                .unwrap();
        assert_eq!(explain(&plan), explain(&plan2));
    }

    #[test]
    fn plans_scalar_subquery_in_where() {
        // The min-cost supplier query of Section II.
        let plan = parse_and_plan_str(
            "select suppkey, partkey from partsupp p1 \
             where supplycost = (select min(supplycost) from partsupp p2 \
                                 where p1.partkey = p2.partkey)",
        )
        .unwrap();
        let text = explain(&plan);
        assert!(text.contains("[subquery]"));
        assert!(text.contains("Aggregate group_by=[] aggs=[min(supplycost)"));
    }

    #[test]
    fn plans_count_star_and_case() {
        let plan = parse_and_plan_str(
            "select case when count(*) > 0 then 'some' else 'none' end as verdict from orders",
        )
        .unwrap();
        let text = explain(&plan);
        assert!(text.contains("count(*)"));
        assert!(text.contains("case when"));
    }

    #[test]
    fn select_without_from_uses_single() {
        let plan = parse_and_plan_str("select 1 + 2 as three").unwrap();
        match &plan {
            RelExpr::Project { input, items, .. } => {
                assert!(matches!(input.as_ref(), RelExpr::Single));
                assert_eq!(items[0].alias.as_deref(), Some("three"));
            }
            other => panic!("unexpected plan {}", other.name()),
        }
    }

    #[test]
    fn select_star_produces_bare_scan() {
        let plan = parse_and_plan_str("select * from customer").unwrap();
        assert!(matches!(plan, RelExpr::Scan { .. }));
    }

    #[test]
    fn parses_example8_discount_udf() {
        // Experiment 1's UDF (Example 8).
        let udf = parse_function(
            "create function discount(float amt, int ckey) returns float as \
             begin \
               int custcat; float catdisct, totaldiscount; \
               select category into :custcat from customer where customerkey = :ckey; \
               select frac_discount into :catdisct from categorydiscount where category = :custcat; \
               totaldiscount = catdisct * amt; \
               return totaldiscount; \
             end",
        )
        .unwrap();
        assert_eq!(udf.name, "discount");
        assert_eq!(udf.params.len(), 2);
        assert_eq!(udf.return_type, DataType::Float);
        assert!(udf.has_queries());
        assert!(!udf.has_loops());
        // declarations + 2 select-into + assignment + return
        assert!(udf.body.len() >= 5);
        assert!(matches!(
            udf.body.last().unwrap(),
            Statement::Return { expr: Some(_) }
        ));
    }

    #[test]
    fn volatility_clause_controls_purity() {
        let base = "begin return 1; end";
        let pure = parse_function(&format!("create function f() returns int as {base}")).unwrap();
        assert!(pure.pure, "UDFs default to pure");
        let volatile = parse_function(&format!(
            "create function f() returns int volatile as {base}"
        ))
        .unwrap();
        assert!(!volatile.pure);
        let spelled_out = parse_function(&format!(
            "create function f() returns int deterministic as {base}"
        ))
        .unwrap();
        assert!(spelled_out.pure);
    }

    #[test]
    fn parses_example1_service_level_udf() {
        let udf = parse_function(
            "create function service_level(int ckey) returns char(10) as \
             begin \
               float totalbusiness; string level; \
               select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
               if (totalbusiness > 1000000) \
                   level = 'Platinum'; \
               else if (totalbusiness > 500000) \
                   level = 'Gold'; \
               else level = 'Regular'; \
               return level; \
             end",
        )
        .unwrap();
        assert_eq!(udf.name, "service_level");
        assert_eq!(udf.return_type, DataType::Str);
        // Find the if statement and check its nesting (the paper's L3 / L3.2 structure).
        let if_stmt = udf
            .body
            .iter()
            .find(|s| matches!(s, Statement::If { .. }))
            .expect("if statement");
        match if_stmt {
            Statement::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(else_branch[0], Statement::If { .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_example5_cursor_loop_udf() {
        let udf = parse_function(
            "create function totalloss(int pkey) returns int as \
             begin \
               int total_loss = 0; \
               int cost = getcost(pkey); \
               declare c cursor for \
                 select price, qty, disc from lineitem where partkey = :pkey; \
               open c; \
               fetch next from c into @price, @qty, @disc; \
               while @@fetch_status = 0 \
                 int profit = (@price - @disc) - (cost * @qty); \
                 if (profit < 0) \
                     total_loss = total_loss - profit; \
                 fetch next from c into @price, @qty, @disc; \
               close c; deallocate c; \
               return total_loss; \
             end",
        )
        .unwrap();
        assert!(udf.has_loops());
        let cursor = udf
            .body
            .iter()
            .find(|s| matches!(s, Statement::CursorLoop { .. }))
            .expect("cursor loop");
        match cursor {
            Statement::CursorLoop {
                fetch_vars, body, ..
            } => {
                assert_eq!(
                    fetch_vars,
                    &vec!["@price".to_string(), "@qty".into(), "@disc".into()]
                );
                // Body: declare profit; if (profit < 0) …  (the trailing fetch is dropped)
                assert_eq!(body.len(), 2);
                assert!(matches!(body[1], Statement::If { .. }));
            }
            _ => unreachable!(),
        }
        // The return statement after the loop is preserved.
        assert!(matches!(
            udf.body.last().unwrap(),
            Statement::Return { expr: Some(_) }
        ));
    }

    #[test]
    fn parses_table_valued_udf() {
        let udf = parse_function(
            "create function top_customers() returns tt table(custkey int, total float) as \
             begin \
               declare c cursor for select custkey, totalprice from orders; \
               open c; \
               fetch next from c into @ck, @tp; \
               while @@fetch_status = 0 \
               begin \
                 insert into tt values (@ck, @tp * 1.1); \
                 fetch next from c into @ck, @tp; \
               end \
               close c; deallocate c; \
               return tt; \
             end",
        )
        .unwrap();
        assert!(udf.is_table_valued());
        let schema = udf.returns_table.as_ref().unwrap();
        assert_eq!(schema.names(), vec!["custkey", "total"]);
        let cursor = udf
            .body
            .iter()
            .find(|s| matches!(s, Statement::CursorLoop { .. }))
            .expect("cursor loop");
        match cursor {
            Statement::CursorLoop { body, .. } => {
                assert!(matches!(body[0], Statement::InsertIntoResult { .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_ddl_and_dml() {
        let stmt = parse_statement(
            "create table customer(custkey int not null, name varchar(25), acctbal float)",
        )
        .unwrap();
        match stmt {
            SqlStatement::CreateTable { name, columns } => {
                assert_eq!(name, "customer");
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].nullable);
                assert_eq!(columns[2].data_type, DataType::Float);
            }
            other => panic!("unexpected {:?}", other.kind()),
        }
        let stmt = parse_statement("create index idx_orders_custkey on orders(custkey)").unwrap();
        assert_eq!(stmt.kind(), "create-index");
        let stmt = parse_statement("insert into t (a, b) values (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            SqlStatement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap(), vec!["a".to_string(), "b".into()]);
            }
            other => panic!("unexpected {:?}", other.kind()),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("select from where").is_err());
        assert!(parse_query("selec 1").is_err());
        assert!(parse_statement("create table t(x unknown_type)").is_err());
        assert!(parse_function("create function f() returns int as begin banana end").is_err());
        // Insert into a base table inside a UDF body is a side effect: rejected.
        let err = parse_function(
            "create function f() returns int as begin insert into orders values (1); return 0; end",
        )
        .unwrap_err();
        assert_eq!(err.kind(), "unsupported");
    }

    #[test]
    fn where_clause_udf_call() {
        let plan =
            parse_and_plan_str("select orderkey from orders where discount(totalprice) > 100")
                .unwrap();
        assert!(plan.contains_udf_call());
    }

    #[test]
    fn in_list_and_exists() {
        let q = parse_query("select * from t where x in (1, 2, 3)").unwrap();
        assert!(q.where_clause.is_some());
        let plan = parse_and_plan_str(
            "select name from customer c where exists (select orderkey from orders o where o.custkey = c.custkey)",
        )
        .unwrap();
        let text = explain(&plan);
        assert!(text.contains("exists"));
    }
}
