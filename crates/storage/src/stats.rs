//! Per-table statistics for the cost model.

use std::collections::HashSet;

use decorr_common::{value::GroupKey, Row, Schema};

/// Statistics the optimizer's cardinality estimator consumes: total row count and the
/// number of distinct values per column.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: usize,
    /// Distinct (non-NULL) value count per column, in schema order.
    pub distinct_counts: Vec<usize>,
    /// Column names, in schema order (for lookups by name).
    pub column_names: Vec<String>,
}

impl TableStats {
    /// Computes statistics over the full table contents.
    pub fn compute(schema: &Schema, rows: &[Row]) -> TableStats {
        let ncols = schema.len();
        let mut sets: Vec<HashSet<GroupKey>> = vec![HashSet::new(); ncols];
        for row in rows {
            for (i, v) in row.values.iter().enumerate() {
                if !v.is_null() {
                    sets[i].insert(v.group_key());
                }
            }
        }
        TableStats {
            row_count: rows.len(),
            distinct_counts: sets.iter().map(|s| s.len()).collect(),
            column_names: schema.columns.iter().map(|c| c.name.clone()).collect(),
        }
    }

    /// Distinct value count for a column by name; falls back to the row count (i.e. the
    /// "all distinct" pessimistic assumption) when the column is unknown.
    pub fn distinct_count(&self, column: &str) -> usize {
        self.column_names
            .iter()
            .position(|c| c.eq_ignore_ascii_case(column))
            .map(|i| self.distinct_counts[i])
            .unwrap_or(self.row_count)
            .max(1)
    }

    /// Estimated selectivity of an equality predicate on `column` (1 / distinct count).
    pub fn equality_selectivity(&self, column: &str) -> f64 {
        1.0 / self.distinct_count(column) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType, Value};

    #[test]
    fn compute_counts_and_selectivity() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("grp", DataType::Int),
        ]);
        let rows: Vec<Row> = (0..100i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 4)]))
            .collect();
        let stats = TableStats::compute(&schema, &rows);
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.distinct_count("k"), 100);
        assert_eq!(stats.distinct_count("grp"), 4);
        assert!((stats.equality_selectivity("grp") - 0.25).abs() < 1e-9);
        // Unknown column: pessimistic fallback.
        assert_eq!(stats.distinct_count("nosuch"), 100);
    }

    #[test]
    fn nulls_do_not_count_as_distinct() {
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Null]),
        ];
        let stats = TableStats::compute(&schema, &rows);
        assert_eq!(stats.distinct_count("k"), 1);
    }

    #[test]
    fn empty_table_has_min_distinct_one() {
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        let stats = TableStats::compute(&schema, &[]);
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.distinct_count("k"), 1);
    }
}
