//! Per-table statistics for the cost model — a thin wrapper over `decorr-stats`.
//!
//! The wrapper keeps the seed API (`row_count`/`distinct_count`/`equality_selectivity`
//! with the pessimistic fallbacks the cost model relies on) and adds the
//! histogram-backed entry points a sampled [`ANALYZE`](crate::table::Table::analyze)
//! unlocks: value-aware equality selectivities (MCV + equal-rest) and range
//! selectivities from equi-depth histograms. Statistics are *cached* on the owning
//! [`Table`](crate::table::Table) behind a dirty flag — see `Table::stats`.

use decorr_common::Value;
use decorr_stats::TableStatistics;

pub use decorr_stats::{
    q_error, AnalyzeConfig, ColumnStatistics, Histogram, ShardColumnSummary, ShardStatistics,
};

/// Statistics the optimizer's cardinality estimator consumes. Wraps
/// [`decorr_stats::TableStatistics`]; construct through [`TableStats::basic`] /
/// [`TableStats::analyzed`] (or the legacy [`TableStats::compute`] alias).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    inner: TableStatistics,
}

impl TableStats {
    /// Basic statistics: row count, exact distinct counts and null fractions.
    pub fn basic(schema: &decorr_common::Schema, rows: &[decorr_common::Row]) -> TableStats {
        TableStats {
            inner: TableStatistics::basic(schema, rows),
        }
    }

    /// Analyzed statistics: basic plus sampled histograms, MCVs and min/max.
    pub fn analyzed(
        schema: &decorr_common::Schema,
        rows: &[decorr_common::Row],
        config: &AnalyzeConfig,
    ) -> TableStats {
        TableStats {
            inner: TableStatistics::analyzed(schema, rows, config),
        }
    }

    /// Seed-compatible alias for [`TableStats::basic`].
    pub fn compute(schema: &decorr_common::Schema, rows: &[decorr_common::Row]) -> TableStats {
        TableStats::basic(schema, rows)
    }

    /// Table-level statistics merged from per-shard summaries (exact distinct-set
    /// unions; per-shard stratified samples concatenated and re-capped). For a single
    /// shard this is byte-identical to [`TableStats::basic`] / [`TableStats::analyzed`]
    /// over the same rows — see [`ShardStatistics::merge`].
    pub fn merged(
        schema: &decorr_common::Schema,
        summaries: &[std::sync::Arc<ShardStatistics>],
        config: Option<&AnalyzeConfig>,
    ) -> TableStats {
        let refs: Vec<&ShardStatistics> = summaries.iter().map(|s| s.as_ref()).collect();
        TableStats {
            inner: ShardStatistics::merge(schema, &refs, config),
        }
    }

    /// Rewraps a statistics document — the snapshot-restore constructor, the inverse
    /// of persisting [`inner`](TableStats::inner).
    pub fn from_statistics(inner: TableStatistics) -> TableStats {
        TableStats { inner }
    }

    /// The underlying statistics document.
    pub fn inner(&self) -> &TableStatistics {
        &self.inner
    }

    /// Number of rows in the table when statistics were computed.
    pub fn row_count(&self) -> usize {
        self.inner.row_count
    }

    /// True when histograms/MCVs were built by a sampled `ANALYZE`.
    pub fn is_analyzed(&self) -> bool {
        self.inner.analyzed
    }

    /// Rows the `ANALYZE` sample held (0 for basic statistics).
    pub fn sampled_rows(&self) -> usize {
        self.inner.sampled_rows
    }

    /// Column statistics by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&ColumnStatistics> {
        self.inner.column(name)
    }

    /// Distinct value count for a column by name; falls back to the row count (the
    /// "all distinct" pessimistic assumption) when the column is unknown.
    pub fn distinct_count(&self, column: &str) -> usize {
        self.inner.distinct_count(column)
    }

    /// Estimated selectivity of an equality predicate on `column` against an unknown
    /// value (1 / distinct count — the seed model).
    pub fn equality_selectivity(&self, column: &str) -> f64 {
        1.0 / self.distinct_count(column) as f64
    }

    /// Estimated selectivity of `column = value` for a *known* comparison value:
    /// MCV frequency or histogram-bucket estimate when analyzed, otherwise the
    /// 1 / distinct-count fallback.
    pub fn equality_selectivity_value(&self, column: &str, value: &Value) -> f64 {
        self.column(column)
            .and_then(|c| c.equality_selectivity(value))
            .unwrap_or_else(|| self.equality_selectivity(column))
    }

    /// Estimated selectivity of a numeric interval on `column` from its equi-depth
    /// histogram; `None` when the column has no histogram (not analyzed, or
    /// non-numeric) so the caller can fall back to its default constants.
    pub fn range_selectivity(
        &self,
        column: &str,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    ) -> Option<f64> {
        self.column(column)?.range_selectivity(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType, Row, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("grp", DataType::Int),
        ])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 4)]))
            .collect()
    }

    #[test]
    fn compute_counts_and_selectivity() {
        let stats = TableStats::compute(&schema(), &rows(100));
        assert_eq!(stats.row_count(), 100);
        assert_eq!(stats.distinct_count("k"), 100);
        assert_eq!(stats.distinct_count("grp"), 4);
        assert!((stats.equality_selectivity("grp") - 0.25).abs() < 1e-9);
        // Unknown column: pessimistic fallback.
        assert_eq!(stats.distinct_count("nosuch"), 100);
        assert!(!stats.is_analyzed());
        // Without ANALYZE there is no histogram to serve ranges from.
        assert!(stats
            .range_selectivity("k", None, Some((49.0, true)))
            .is_none());
    }

    #[test]
    fn nulls_do_not_count_as_distinct() {
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Null]),
        ];
        let stats = TableStats::compute(&schema, &rows);
        assert_eq!(stats.distinct_count("k"), 1);
    }

    #[test]
    fn empty_table_has_min_distinct_one() {
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        let stats = TableStats::compute(&schema, &[]);
        assert_eq!(stats.row_count(), 0);
        assert_eq!(stats.distinct_count("k"), 1);
    }

    #[test]
    fn analyzed_stats_serve_value_aware_selectivities() {
        let stats = TableStats::analyzed(&schema(), &rows(1000), &AnalyzeConfig::default());
        assert!(stats.is_analyzed());
        assert_eq!(stats.sampled_rows(), 1000);
        // grp = 2 is one of four equally heavy values.
        let eq = stats.equality_selectivity_value("grp", &Value::Int(2));
        assert!((eq - 0.25).abs() < 0.05, "eq {eq}");
        // k < 100 out of 0..999 ≈ 10%.
        let range = stats
            .range_selectivity("k", None, Some((99.0, true)))
            .unwrap();
        assert!((range - 0.1).abs() < 0.05, "range {range}");
        // Unanalyzed-style fallback still works for unknown values/columns.
        assert!(stats.equality_selectivity_value("nosuch", &Value::Int(1)) > 0.0);
    }
}
