//! In-memory row-store table with optional hash indexes.

use std::collections::HashMap;

use decorr_common::{normalize_ident, Error, Result, Row, Schema, Value};

use crate::index::HashIndex;
use crate::stats::TableStats;

/// An in-memory table: a schema, a vector of rows, and hash indexes keyed by column name.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    indexes: HashMap<String, HashIndex>,
}

impl Table {
    /// Creates an empty table. Column qualifiers in the supplied schema are replaced by
    /// the table name so that scans produce properly qualified columns.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let name = normalize_ident(&name.into());
        let schema = schema.with_qualifier(&name);
        Table {
            name,
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Validates and appends a row, maintaining all indexes.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Execution(format!(
                "insert into '{}': expected {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (i, v) in row.values.iter().enumerate() {
            let col = self.schema.column(i);
            if !v.is_null() && !col.data_type.is_compatible_with(v.data_type()) {
                return Err(Error::TypeError(format!(
                    "insert into '{}': column '{}' expects {}, got {} ({v})",
                    self.name,
                    col.name,
                    col.data_type,
                    v.data_type()
                )));
            }
            if v.is_null() && !col.nullable {
                return Err(Error::Execution(format!(
                    "insert into '{}': column '{}' is NOT NULL",
                    self.name, col.name
                )));
            }
        }
        let row_id = self.rows.len();
        for index in self.indexes.values_mut() {
            index.insert(&row, row_id);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Bulk insert (used by the data generator). Rows are validated like [`Table::insert`].
    pub fn insert_all(&mut self, rows: Vec<Row>) -> Result<()> {
        self.rows.reserve(rows.len());
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Creates a hash index on `column` (no-op if one already exists). Existing rows are
    /// indexed immediately.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let column = normalize_ident(column);
        if self.indexes.contains_key(&column) {
            return Ok(());
        }
        let col_idx = self.schema.index_of(None, &column)?;
        let mut index = HashIndex::new(&column, col_idx);
        for (row_id, row) in self.rows.iter().enumerate() {
            index.insert(row, row_id);
        }
        self.indexes.insert(column, index);
        Ok(())
    }

    /// Returns the hash index on `column` if one exists.
    pub fn index_on(&self, column: &str) -> Option<&HashIndex> {
        self.indexes.get(&normalize_ident(column))
    }

    /// Names of all indexed columns.
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.indexes.keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Looks up rows whose indexed `column` equals `value` using the hash index. Returns
    /// `None` when no index exists on the column (caller should fall back to a scan).
    pub fn index_lookup(&self, column: &str, value: &Value) -> Option<Vec<&Row>> {
        self.index_on(column)
            .map(|idx| idx.lookup(value).iter().map(|&i| &self.rows[i]).collect())
    }

    /// Computes statistics for the cost model.
    pub fn stats(&self) -> TableStats {
        TableStats::compute(&self.schema, &self.rows)
    }

    /// Removes all rows (keeps schema and index definitions).
    pub fn truncate(&mut self) {
        self.rows.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType};

    fn orders_table() -> Table {
        Table::new(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int).not_null(),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = orders_table();
        t.insert(Row::new(vec![1.into(), 10.into(), 100.5.into()]))
            .unwrap();
        t.insert(Row::new(vec![2.into(), 10.into(), 2.5.into()]))
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.rows()[1].get(2), &Value::Float(2.5));
        assert_eq!(t.schema().column(0).qualifier.as_deref(), Some("orders"));
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = orders_table();
        assert!(t.insert(Row::new(vec![1.into()])).is_err());
        assert!(t
            .insert(Row::new(vec!["x".into(), 10.into(), 1.0.into()]))
            .is_err());
        // NOT NULL violation
        assert!(t
            .insert(Row::new(vec![Value::Null, 10.into(), 1.0.into()]))
            .is_err());
        // Int accepted where Float expected (numeric compatibility)
        assert!(t
            .insert(Row::new(vec![1.into(), 10.into(), 7.into()]))
            .is_ok());
    }

    #[test]
    fn index_lookup_finds_matching_rows() {
        let mut t = orders_table();
        for i in 0..100i64 {
            t.insert(Row::new(vec![i.into(), (i % 10).into(), (i as f64).into()]))
                .unwrap();
        }
        t.create_index("custkey").unwrap();
        let hits = t.index_lookup("custkey", &Value::Int(3)).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|r| r.get(1) == &Value::Int(3)));
        // Unindexed column -> None
        assert!(t.index_lookup("totalprice", &Value::Float(1.0)).is_none());
        // Missing key -> empty
        assert_eq!(t.index_lookup("custkey", &Value::Int(99)).unwrap().len(), 0);
    }

    #[test]
    fn index_created_after_inserts_sees_existing_rows() {
        let mut t = orders_table();
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.create_index("custkey").unwrap();
        t.insert(Row::new(vec![2.into(), 7.into(), 2.0.into()]))
            .unwrap();
        assert_eq!(t.index_lookup("custkey", &Value::Int(7)).unwrap().len(), 2);
        assert_eq!(t.indexed_columns(), vec!["custkey".to_string()]);
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = orders_table();
        t.create_index("custkey").unwrap();
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.index_lookup("custkey", &Value::Int(7)).unwrap().len(), 0);
    }
}
