//! In-memory sharded row-store table with hash indexes and cached statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use decorr_common::{normalize_ident, Error, Result, Row, Schema, Value};

use crate::index::HashIndex;
use crate::shard::{RowsView, Shard, ShardPolicy, ShardSet};
use crate::stats::{AnalyzeConfig, ShardStatistics, TableStats};

/// Smallest shard a row-at-a-time insert stream fills before the table opens the next
/// shard: prevents degenerate `1, 1, 1, N-3` splits when rows trickle in one by one.
/// Bulk inserts ([`Table::insert_all`]) know their final size and balance exactly.
const MIN_SHARD_FILL: usize = 256;

/// An in-memory table: a schema, a fixed-fanout set of [`Shard`]s, and hash indexes
/// keyed by column name.
///
/// Rows live in `Arc<Shard>`s, so cloning a table (the engine's copy-on-write snapshot
/// swap) shares every shard, and a subsequent insert deep-clones only the one shard it
/// appends to. Each shard caches its own [`ShardStatistics`] summary; table-level
/// statistics are the lazy merge of the per-shard summaries, so after an insert the
/// next [`Table::stats`] re-samples only the dirty shard (incremental ANALYZE), and
/// the cached full-pass min/max lets scans prune shards a range or equality predicate
/// provably misses.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    shards: Vec<Arc<Shard>>,
    /// Configured fanout (≥ 1). `AppendToLast` opens shards lazily up to this count;
    /// `Hash` creates them all up front.
    shard_target: usize,
    shard_policy: ShardPolicy,
    total_rows: usize,
    indexes: HashMap<String, HashIndex>,
    /// Cached merged statistics; `None` marks them dirty. Interior mutability so
    /// `stats()` works through the shared references the executor and optimizer hold.
    cached_stats: RwLock<Option<Arc<TableStats>>>,
    /// Remembered `ANALYZE` configuration; `None` until the first ANALYZE.
    analyze_config: Option<AnalyzeConfig>,
    /// How many times the table-level merge was (re)computed — the regression metric:
    /// repeated optimizes against an unchanged table must not rescan it.
    stats_recomputes: AtomicU64,
    /// How many *per-shard* statistics passes ran — the incremental-ANALYZE metric:
    /// after one insert, exactly one shard re-samples, not all of them.
    shard_stat_recomputes: AtomicU64,
    /// How many full index builds ran (one per `create_index` over existing rows).
    /// Insert-path index maintenance is incremental and must never bump this.
    index_rebuilds: AtomicU64,
    /// Monotonic per-table data version: bumped by every insert and truncate. Result
    /// caches (the engine's UDF memo) key on this instead of the catalog-wide data
    /// generation when a UDF provably reads only this table, so writes to unrelated
    /// tables don't flush its memoized results.
    data_version: u64,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            // Arc clones: shards are shared with the original until one is written.
            shards: self.shards.clone(),
            shard_target: self.shard_target,
            shard_policy: self.shard_policy,
            total_rows: self.total_rows,
            indexes: self.indexes.clone(),
            cached_stats: RwLock::new(
                self.cached_stats
                    .read()
                    .expect("stats cache poisoned")
                    .clone(),
            ),
            analyze_config: self.analyze_config.clone(),
            stats_recomputes: AtomicU64::new(self.stats_recomputes.load(Ordering::Relaxed)),
            shard_stat_recomputes: AtomicU64::new(
                self.shard_stat_recomputes.load(Ordering::Relaxed),
            ),
            index_rebuilds: AtomicU64::new(self.index_rebuilds.load(Ordering::Relaxed)),
            data_version: self.data_version,
        }
    }
}

impl Table {
    /// Creates an empty single-shard table — the default layout, indistinguishable
    /// from the pre-shard storage. Column qualifiers in the supplied schema are
    /// replaced by the table name so that scans produce properly qualified columns.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table::with_shards(name, schema, 1, ShardPolicy::AppendToLast)
    }

    /// Creates an empty table with a fixed shard fanout and routing policy.
    pub fn with_shards(
        name: impl Into<String>,
        schema: Schema,
        shard_count: usize,
        policy: ShardPolicy,
    ) -> Table {
        let name = normalize_ident(&name.into());
        let schema = schema.with_qualifier(&name);
        let shard_target = shard_count.max(1);
        Table {
            name,
            schema,
            shards: Table::initial_shards(shard_target, policy),
            shard_target,
            shard_policy: policy,
            total_rows: 0,
            indexes: HashMap::new(),
            cached_stats: RwLock::new(None),
            analyze_config: None,
            stats_recomputes: AtomicU64::new(0),
            shard_stat_recomputes: AtomicU64::new(0),
            index_rebuilds: AtomicU64::new(0),
            data_version: 0,
        }
    }

    fn initial_shards(shard_target: usize, policy: ShardPolicy) -> Vec<Arc<Shard>> {
        match policy {
            // Lazy growth: open shards as the table fills.
            ShardPolicy::AppendToLast => vec![Arc::new(Shard::new())],
            // Hash routing needs every shard to exist up front.
            ShardPolicy::Hash => (0..shard_target).map(|_| Arc::new(Shard::new())).collect(),
        }
    }

    /// The (normalized) table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema, with columns qualified by the table name.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configured shard fanout (≥ 1), whether or not every shard is open yet.
    pub fn shard_target(&self) -> usize {
        self.shard_target
    }

    /// The row-routing policy in effect.
    pub fn shard_policy(&self) -> ShardPolicy {
        self.shard_policy
    }

    /// The remembered `ANALYZE` configuration (`None` until the first ANALYZE).
    pub fn analyze_config(&self) -> Option<&AnalyzeConfig> {
        self.analyze_config.as_ref()
    }

    /// Switches the row-routing policy, re-routing every existing row into fresh
    /// shards under the new policy and rebuilding indexes incrementally. A no-op when
    /// the policy is unchanged. Bumps [`data_version`](Table::data_version) (scan
    /// order changes under `Hash`, so result caches keyed on the old layout must not
    /// serve) and dirties cached statistics.
    pub fn set_placement(&mut self, policy: ShardPolicy) -> Result<()> {
        if policy == self.shard_policy {
            return Ok(());
        }
        let rows = self.scan().collect_rows();
        self.shard_policy = policy;
        self.shards = Table::initial_shards(self.shard_target, policy);
        for index in self.indexes.values_mut() {
            index.clear();
        }
        self.total_rows = 0;
        let target = rows.len().div_ceil(self.shard_target).max(1);
        for row in rows {
            self.insert_with_fill_target(row, target)?;
        }
        self.data_version += 1;
        self.mark_stats_dirty();
        Ok(())
    }

    /// Rebuilds a table from its persisted parts — the snapshot-restore constructor.
    /// `shard_rows` must match the persisted shard layout exactly (scan order is the
    /// concatenation), `indexed_columns` are rebuilt from the restored rows, and
    /// `stats`, when present, re-seeds the merged statistics cache so the first
    /// optimize after a cold open needs no rescan. Rows are arity-checked against the
    /// schema; deeper corruption is the snapshot checksum's job.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        name: impl Into<String>,
        schema: Schema,
        shard_target: usize,
        policy: ShardPolicy,
        shard_rows: Vec<Vec<Row>>,
        indexed_columns: &[String],
        analyze_config: Option<AnalyzeConfig>,
        stats: Option<TableStats>,
        data_version: u64,
    ) -> Result<Table> {
        let name = normalize_ident(&name.into());
        let schema = schema.with_qualifier(&name);
        let width = schema.len();
        for rows in &shard_rows {
            if let Some(bad) = rows.iter().find(|r| r.len() != width) {
                return Err(Error::Persist(format!(
                    "table '{}': restored row has {} values, schema has {}",
                    name,
                    bad.len(),
                    width
                )));
            }
        }
        let total_rows = shard_rows.iter().map(Vec::len).sum();
        let shards: Vec<Arc<Shard>> = shard_rows
            .into_iter()
            .map(|rows| Arc::new(Shard::from_rows(rows)))
            .collect();
        let mut table = Table {
            name,
            schema,
            shards,
            shard_target: shard_target.max(1),
            shard_policy: policy,
            total_rows,
            indexes: HashMap::new(),
            cached_stats: RwLock::new(stats.map(Arc::new)),
            analyze_config,
            stats_recomputes: AtomicU64::new(0),
            shard_stat_recomputes: AtomicU64::new(0),
            index_rebuilds: AtomicU64::new(0),
            data_version,
        };
        for column in indexed_columns {
            table.create_index(column)?;
        }
        Ok(table)
    }

    /// A borrowed, shard-iterating view over the table's rows — the scan API.
    pub fn scan(&self) -> RowsView<'_> {
        RowsView::new(&self.shards, self.total_rows)
    }

    /// The table's shards (shared handles).
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Current number of shards (≤ the configured fanout for `AppendToLast`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// An owned, `'static` handle over every shard — what the executor's worker-pool
    /// jobs capture to map morsel ranges onto shard slices without copying rows out.
    pub fn shard_set(&self) -> ShardSet {
        ShardSet::new(self.shards.clone())
    }

    /// An owned shard handle excluding shards whose *cached* summary proves no row
    /// can satisfy `lo <= column <= hi` (see [`ShardStatistics::may_contain_in_range`]).
    /// Returns the kept set and the number of shards pruned. Never computes
    /// statistics: dirty shards are conservatively kept, and empty shards are kept
    /// without counting as pruned.
    pub fn pruned_shard_set(
        &self,
        column: &str,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    ) -> (ShardSet, usize) {
        let mut kept = Vec::with_capacity(self.shards.len());
        let mut pruned = 0usize;
        for shard in &self.shards {
            if shard.is_empty() {
                kept.push(Arc::clone(shard));
                continue;
            }
            match shard.cached_summary() {
                Some(s) if !s.may_contain_in_range(column, lo, hi) => pruned += 1,
                _ => kept.push(Arc::clone(shard)),
            }
        }
        (ShardSet::new(kept), pruned)
    }

    /// Fraction of the table's rows in shards a scan with the given bound would keep
    /// (1.0 when nothing can be pruned — unknown column, dirty summaries, …). The
    /// cost model scales scan costs by this, pricing shard pruning.
    pub fn unpruned_row_fraction(
        &self,
        column: &str,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    ) -> f64 {
        if self.total_rows == 0 {
            return 1.0;
        }
        let mut kept = 0usize;
        for shard in &self.shards {
            match shard.cached_summary() {
                Some(s) if !s.may_contain_in_range(column, lo, hi) => {}
                _ => kept += shard.len(),
            }
        }
        kept as f64 / self.total_rows as f64
    }

    /// Total number of rows across all shards.
    pub fn row_count(&self) -> usize {
        self.total_rows
    }

    /// Validates and appends a row, maintaining all indexes. Row-at-a-time streams
    /// fill each shard to a minimum fill (256 rows) before opening the next.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        let target = (self.total_rows + 1)
            .div_ceil(self.shard_target)
            .max(MIN_SHARD_FILL);
        self.insert_with_fill_target(row, target)
    }

    /// Bulk insert (used by the data generator). Rows are validated like
    /// [`Table::insert`]; the batch's known final size balances rows evenly across
    /// the configured fanout.
    pub fn insert_all(&mut self, rows: Vec<Row>) -> Result<()> {
        let target = (self.total_rows + rows.len())
            .div_ceil(self.shard_target)
            .max(1);
        for row in rows {
            self.insert_with_fill_target(row, target)?;
        }
        Ok(())
    }

    fn insert_with_fill_target(&mut self, row: Row, fill_target: usize) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Execution(format!(
                "insert into '{}': expected {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (i, v) in row.values.iter().enumerate() {
            let col = self.schema.column(i);
            if !v.is_null() && !col.data_type.is_compatible_with(v.data_type()) {
                return Err(Error::TypeError(format!(
                    "insert into '{}': column '{}' expects {}, got {} ({v})",
                    self.name,
                    col.name,
                    col.data_type,
                    v.data_type()
                )));
            }
            if v.is_null() && !col.nullable {
                return Err(Error::Execution(format!(
                    "insert into '{}': column '{}' is NOT NULL",
                    self.name, col.name
                )));
            }
        }
        let shard_idx = match self.shard_policy {
            ShardPolicy::Hash => (Shard::route_hash(&row) % self.shard_target as u64) as usize,
            ShardPolicy::AppendToLast => {
                let last = self.shards.len() - 1;
                if self.shards.len() < self.shard_target && self.shards[last].len() >= fill_target {
                    self.shards.push(Arc::new(Shard::new()));
                }
                self.shards.len() - 1
            }
        };
        let offset = self.shards[shard_idx].len();
        for index in self.indexes.values_mut() {
            index.insert(&row, shard_idx, offset);
        }
        // Copy-on-write: only the shard receiving the row is deep-cloned when shared.
        Arc::make_mut(&mut self.shards[shard_idx]).push(row);
        self.total_rows += 1;
        self.data_version += 1;
        self.mark_stats_dirty();
        Ok(())
    }

    /// Creates a hash index on `column` (no-op if one already exists). Existing rows
    /// are indexed immediately — the one full build this index will ever run (see
    /// [`Table::index_rebuilds`]); insert-path maintenance is incremental per row.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let column = normalize_ident(column);
        if self.indexes.contains_key(&column) {
            return Ok(());
        }
        let col_idx = self.schema.index_of(None, &column)?;
        let mut index = HashIndex::new(&column, col_idx);
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            for (offset, row) in shard.rows().iter().enumerate() {
                index.insert(row, shard_idx, offset);
            }
        }
        self.index_rebuilds.fetch_add(1, Ordering::Relaxed);
        self.indexes.insert(column, index);
        Ok(())
    }

    /// Returns the hash index on `column` if one exists.
    pub fn index_on(&self, column: &str) -> Option<&HashIndex> {
        self.indexes.get(&normalize_ident(column))
    }

    /// Names of all indexed columns.
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.indexes.keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Looks up rows whose indexed `column` equals `value` using the hash index.
    /// Returns `None` when no index exists on the column (caller should fall back to
    /// a scan).
    pub fn index_lookup(&self, column: &str, value: &Value) -> Option<Vec<&Row>> {
        self.index_on(column).map(|idx| {
            idx.lookup(value)
                .iter()
                .map(|&(shard, offset)| &self.shards[shard].rows()[offset])
                .collect()
        })
    }

    /// Statistics for the cost model, computed lazily and cached until the next data
    /// change. The table-level document is the merge of per-shard summaries, and only
    /// *dirty* shards recompute theirs — an insert re-samples one shard, not the
    /// table. Unanalyzed tables get basic statistics (row count, exact distinct
    /// counts, null fractions); tables a sampled [`analyze`](Table::analyze) ran over
    /// additionally carry histograms and MCV lists, and *re-analyze themselves* with
    /// the remembered configuration when the cache is invalidated by new data.
    pub fn stats(&self) -> Arc<TableStats> {
        if let Some(cached) = self
            .cached_stats
            .read()
            .expect("stats cache poisoned")
            .clone()
        {
            return cached;
        }
        // Double-checked under the write lock: concurrent readers that missed above
        // must not each run the merge (and each bump the recompute counter) — one
        // computes, the rest wait and reuse it.
        let mut slot = self.cached_stats.write().expect("stats cache poisoned");
        if let Some(cached) = slot.as_ref() {
            return Arc::clone(cached);
        }
        let config = self.analyze_config.as_ref();
        let summaries: Vec<Arc<ShardStatistics>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                shard.ensure_summary(&self.schema, config, i as u64, &self.shard_stat_recomputes)
            })
            .collect();
        let computed = Arc::new(TableStats::merged(&self.schema, &summaries, config));
        self.stats_recomputes.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&computed));
        computed
    }

    /// Runs a sampled `ANALYZE` over the table: builds histogram/MCV statistics from
    /// per-shard reservoir samples and remembers `config` so later invalidations
    /// re-analyze automatically (and incrementally). Returns the fresh statistics.
    pub fn analyze(&mut self, config: AnalyzeConfig) -> Arc<TableStats> {
        self.analyze_config = Some(config);
        self.mark_stats_dirty();
        self.stats()
    }

    /// True when the table carries `ANALYZE`-built histogram statistics.
    pub fn is_analyzed(&self) -> bool {
        self.analyze_config.is_some()
    }

    /// Lifetime count of table-level statistics merges — the regression metric
    /// proving that repeated `stats()` calls against unchanged data never rescan the
    /// table.
    pub fn stats_recomputes(&self) -> u64 {
        self.stats_recomputes.load(Ordering::Relaxed)
    }

    /// Lifetime count of per-shard statistics passes — the incremental-ANALYZE
    /// metric: after an insert, the next `stats()` bumps this by the number of
    /// *dirty* shards (usually 1), not the shard count.
    pub fn shard_stat_recomputes(&self) -> u64 {
        self.shard_stat_recomputes.load(Ordering::Relaxed)
    }

    /// Lifetime count of full index builds (one per `create_index` over existing
    /// rows). Insert-path index maintenance is incremental and never bumps this.
    pub fn index_rebuilds(&self) -> u64 {
        self.index_rebuilds.load(Ordering::Relaxed)
    }

    /// Monotonic data version: bumped by every [`insert`](Table::insert) and
    /// [`truncate`](Table::truncate). See the field docs for how result caches use it.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// Marks cached statistics dirty (cheap; the next `stats()` call recomputes).
    fn mark_stats_dirty(&mut self) {
        let cached = self.cached_stats.get_mut().expect("stats cache poisoned");
        *cached = None;
    }

    /// Removes all rows (keeps schema, index definitions, the shard layout and the
    /// ANALYZE config).
    pub fn truncate(&mut self) {
        self.shards = Table::initial_shards(self.shard_target, self.shard_policy);
        self.total_rows = 0;
        for index in self.indexes.values_mut() {
            index.clear();
        }
        self.data_version += 1;
        self.mark_stats_dirty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType};

    fn orders_table() -> Table {
        Table::new(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int).not_null(),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
        )
    }

    fn sharded_orders(shard_count: usize) -> Table {
        Table::with_shards(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int).not_null(),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
            shard_count,
            ShardPolicy::AppendToLast,
        )
    }

    fn order_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![i.into(), (i % 10).into(), (i as f64).into()]))
            .collect()
    }

    #[test]
    fn insert_and_scan() {
        let mut t = orders_table();
        t.insert(Row::new(vec![1.into(), 10.into(), 100.5.into()]))
            .unwrap();
        t.insert(Row::new(vec![2.into(), 10.into(), 2.5.into()]))
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.scan().get(1).unwrap().get(2), &Value::Float(2.5));
        assert_eq!(t.schema().column(0).qualifier.as_deref(), Some("orders"));
    }

    #[test]
    fn scan_materializes_rows_in_global_order() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(1000)).unwrap();
        let materialized = t.scan().collect_rows();
        assert_eq!(materialized.len(), 1000);
        assert_eq!(materialized[7].get(0), &Value::Int(7));
        assert_eq!(materialized[999].get(0), &Value::Int(999));
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = orders_table();
        assert!(t.insert(Row::new(vec![1.into()])).is_err());
        assert!(t
            .insert(Row::new(vec!["x".into(), 10.into(), 1.0.into()]))
            .is_err());
        // NOT NULL violation
        assert!(t
            .insert(Row::new(vec![Value::Null, 10.into(), 1.0.into()]))
            .is_err());
        // Int accepted where Float expected (numeric compatibility)
        assert!(t
            .insert(Row::new(vec![1.into(), 10.into(), 7.into()]))
            .is_ok());
    }

    #[test]
    fn bulk_loads_balance_across_shards_and_keep_scan_order() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(1000)).unwrap();
        assert_eq!(t.shard_count(), 4);
        let sizes: Vec<usize> = t.shards().iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![250, 250, 250, 250]);
        // Global scan order is insertion order regardless of fanout.
        let keys: Vec<i64> = t
            .scan()
            .iter()
            .map(|r| match r.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(keys, (0..1000).collect::<Vec<_>>());
        // Appends after the fanout is reached go to the last shard.
        t.insert(Row::new(vec![1000.into(), 0.into(), 0.0.into()]))
            .unwrap();
        assert_eq!(t.shard_count(), 4);
        assert_eq!(t.shards()[3].len(), 251);
    }

    #[test]
    fn row_at_a_time_streams_fill_shards_to_the_minimum_first() {
        let mut t = sharded_orders(4);
        for row in order_rows(600) {
            t.insert(row).unwrap();
        }
        // 600 singleton inserts: each shard fills to MIN_SHARD_FILL before the next
        // opens — no degenerate 1-row shards.
        let sizes: Vec<usize> = t.shards().iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![256, 256, 88]);
    }

    #[test]
    fn hash_policy_routes_rows_deterministically() {
        let make = || {
            let mut t = Table::with_shards(
                "orders",
                Schema::new(vec![
                    Column::new("orderkey", DataType::Int).not_null(),
                    Column::new("custkey", DataType::Int),
                    Column::new("totalprice", DataType::Float),
                ]),
                4,
                ShardPolicy::Hash,
            );
            t.insert_all(order_rows(400)).unwrap();
            t
        };
        let (a, b) = (make(), make());
        assert_eq!(a.shard_count(), 4);
        assert_eq!(a.row_count(), 400);
        // Same rows, same routing.
        let sizes = |t: &Table| t.shards().iter().map(|s| s.len()).collect::<Vec<_>>();
        assert_eq!(sizes(&a), sizes(&b));
        // Every shard's rows are found through the index after routing.
        assert!(sizes(&a).iter().sum::<usize>() == 400);
    }

    #[test]
    fn clone_shares_shards_until_written() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(1000)).unwrap();
        let snapshot = t.clone();
        // All four shards are physically shared right after the clone.
        for (a, b) in t.shards().iter().zip(snapshot.shards()) {
            assert!(Arc::ptr_eq(a, b));
        }
        t.insert(Row::new(vec![1000.into(), 0.into(), 0.0.into()]))
            .unwrap();
        // The write deep-cloned only the shard it appended to.
        let shared: Vec<bool> = t
            .shards()
            .iter()
            .zip(snapshot.shards())
            .map(|(a, b)| Arc::ptr_eq(a, b))
            .collect();
        assert_eq!(shared, vec![true, true, true, false]);
        assert_eq!(snapshot.row_count(), 1000);
        assert_eq!(t.row_count(), 1001);
    }

    #[test]
    fn index_lookup_finds_matching_rows() {
        let mut t = orders_table();
        for i in 0..100i64 {
            t.insert(Row::new(vec![i.into(), (i % 10).into(), (i as f64).into()]))
                .unwrap();
        }
        t.create_index("custkey").unwrap();
        let hits = t.index_lookup("custkey", &Value::Int(3)).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|r| r.get(1) == &Value::Int(3)));
        // Unindexed column -> None
        assert!(t.index_lookup("totalprice", &Value::Float(1.0)).is_none());
        // Missing key -> empty
        assert_eq!(t.index_lookup("custkey", &Value::Int(99)).unwrap().len(), 0);
    }

    #[test]
    fn index_lookup_spans_shards() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(1000)).unwrap();
        t.create_index("custkey").unwrap();
        let hits = t.index_lookup("custkey", &Value::Int(3)).unwrap();
        assert_eq!(hits.len(), 100);
        assert!(hits.iter().all(|r| r.get(1) == &Value::Int(3)));
    }

    #[test]
    fn index_created_after_inserts_sees_existing_rows() {
        let mut t = orders_table();
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.create_index("custkey").unwrap();
        t.insert(Row::new(vec![2.into(), 7.into(), 2.0.into()]))
            .unwrap();
        assert_eq!(t.index_lookup("custkey", &Value::Int(7)).unwrap().len(), 2);
        assert_eq!(t.indexed_columns(), vec!["custkey".to_string()]);
    }

    #[test]
    fn index_maintenance_is_incremental_not_a_rebuild() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(1000)).unwrap();
        assert_eq!(t.index_rebuilds(), 0, "no index yet, no build");
        t.create_index("custkey").unwrap();
        assert_eq!(t.index_rebuilds(), 1, "one full build over existing rows");
        // Creating it again is a no-op, not a rebuild.
        t.create_index("custkey").unwrap();
        assert_eq!(t.index_rebuilds(), 1);
        // Inserts maintain the index per row without rebuilding it.
        for row in order_rows(100) {
            t.insert(Row::new(vec![
                (2000 + row.get(0).as_int().unwrap()).into(),
                row.get(1).clone(),
                row.get(2).clone(),
            ]))
            .unwrap();
        }
        assert_eq!(t.index_rebuilds(), 1, "inserts never trigger a rebuild");
        assert_eq!(
            t.index_lookup("custkey", &Value::Int(3)).unwrap().len(),
            110
        );
    }

    #[test]
    fn stats_are_cached_until_data_changes() {
        let mut t = orders_table();
        for i in 0..50i64 {
            t.insert(Row::new(vec![i.into(), (i % 5).into(), (i as f64).into()]))
                .unwrap();
        }
        assert_eq!(t.stats_recomputes(), 0, "stats are lazy");
        let first = t.stats();
        assert_eq!(first.distinct_count("custkey"), 5);
        assert_eq!(t.stats_recomputes(), 1);
        // Repeated reads serve the cached Arc without rescanning.
        for _ in 0..10 {
            let again = t.stats();
            assert_eq!(again.row_count(), 50);
        }
        assert_eq!(t.stats_recomputes(), 1, "unchanged table must not rescan");
        // An insert dirties the cache; the next read recomputes once.
        t.insert(Row::new(vec![50.into(), 9.into(), 1.0.into()]))
            .unwrap();
        assert_eq!(t.stats().distinct_count("custkey"), 6);
        assert_eq!(t.stats_recomputes(), 2);
    }

    #[test]
    fn analyze_is_sticky_across_invalidation() {
        let mut t = orders_table();
        for i in 0..200i64 {
            t.insert(Row::new(vec![i.into(), (i % 10).into(), (i as f64).into()]))
                .unwrap();
        }
        assert!(!t.is_analyzed());
        let analyzed = t.analyze(crate::stats::AnalyzeConfig::default());
        assert!(analyzed.is_analyzed());
        assert!(analyzed
            .range_selectivity("orderkey", None, Some((99.0, true)))
            .is_some());
        // New data invalidates, and the next stats() re-analyzes automatically.
        t.insert(Row::new(vec![200.into(), 3.into(), 1.0.into()]))
            .unwrap();
        let refreshed = t.stats();
        assert!(refreshed.is_analyzed(), "re-analyze with remembered config");
        assert_eq!(refreshed.row_count(), 201);
    }

    #[test]
    fn incremental_analyze_resamples_only_dirty_shards() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(1000)).unwrap();
        t.analyze(crate::stats::AnalyzeConfig::default());
        assert_eq!(t.stats_recomputes(), 1);
        assert_eq!(t.shard_stat_recomputes(), 4, "all four shards sample once");
        // Repeated reads touch nothing.
        let _ = t.stats();
        assert_eq!(t.shard_stat_recomputes(), 4);
        // One insert dirties exactly one shard; the merge re-runs but only that
        // shard re-samples.
        t.insert(Row::new(vec![1000.into(), 0.into(), 0.0.into()]))
            .unwrap();
        let refreshed = t.stats();
        assert!(refreshed.is_analyzed());
        assert_eq!(refreshed.row_count(), 1001);
        assert_eq!(t.stats_recomputes(), 2);
        assert_eq!(
            t.shard_stat_recomputes(),
            5,
            "only the dirty shard re-sampled"
        );
    }

    #[test]
    fn pruned_shard_sets_respect_cached_summaries() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(1000)).unwrap();
        // Before any statistics pass nothing can be pruned.
        let (set, pruned) = t.pruned_shard_set("orderkey", Some((900.0, true)), None);
        assert_eq!((set.len(), pruned), (1000, 0), "dirty shards never prune");
        assert_eq!(
            t.unpruned_row_fraction("orderkey", Some((900.0, true)), None),
            1.0
        );
        t.analyze(crate::stats::AnalyzeConfig::default());
        // orderkey >= 900 lives entirely in the last shard (rows 750..999).
        let (set, pruned) = t.pruned_shard_set("orderkey", Some((900.0, true)), None);
        assert_eq!(pruned, 3);
        assert_eq!(set.len(), 250);
        let frac = t.unpruned_row_fraction("orderkey", Some((900.0, true)), None);
        assert!((frac - 0.25).abs() < 1e-9, "frac {frac}");
        // Equality inside one shard's range keeps just that shard.
        let (set, pruned) = t.pruned_shard_set("orderkey", Some((10.0, true)), Some((10.0, true)));
        assert_eq!(pruned, 3);
        assert_eq!(set.len(), 250);
        // An unknown column prunes nothing.
        let (_, pruned) = t.pruned_shard_set("nosuch", Some((900.0, true)), None);
        assert_eq!(pruned, 0);
        // custkey spans 0..9 in every shard: no pruning for custkey = 3.
        let (set, pruned) = t.pruned_shard_set("custkey", Some((3.0, true)), Some((3.0, true)));
        assert_eq!((set.len(), pruned), (1000, 0));
    }

    #[test]
    fn data_version_tracks_inserts_and_truncate() {
        let mut t = orders_table();
        assert_eq!(t.data_version(), 0);
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.insert(Row::new(vec![2.into(), 8.into(), 2.0.into()]))
            .unwrap();
        assert_eq!(t.data_version(), 2);
        // Read-only operations leave it alone.
        let _ = t.stats();
        t.create_index("custkey").unwrap();
        assert_eq!(t.data_version(), 2);
        t.truncate();
        assert_eq!(t.data_version(), 3);
        // Clones carry the version forward.
        assert_eq!(t.clone().data_version(), 3);
    }

    #[test]
    fn set_placement_reroutes_rows_and_maintains_indexes() {
        let mut t = sharded_orders(4);
        t.insert_all(order_rows(400)).unwrap();
        t.create_index("custkey").unwrap();
        let version_before = t.data_version();
        t.set_placement(ShardPolicy::Hash).unwrap();
        assert_eq!(t.shard_policy(), ShardPolicy::Hash);
        assert_eq!(t.shard_count(), 4, "hash placement opens every shard");
        assert_eq!(t.row_count(), 400);
        assert!(t.data_version() > version_before);
        // Same rows, different order: compare as sorted multisets.
        let mut keys: Vec<i64> = t
            .scan()
            .iter()
            .map(|r| r.get(0).as_int().unwrap())
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..400).collect::<Vec<_>>());
        // Indexes were rebuilt against the new locators.
        let hits = t.index_lookup("custkey", &Value::Int(3)).unwrap();
        assert_eq!(hits.len(), 40);
        assert!(hits.iter().all(|r| r.get(1) == &Value::Int(3)));
        // Routing matches a table built under Hash from scratch.
        let mut fresh = Table::with_shards(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int).not_null(),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
            4,
            ShardPolicy::Hash,
        );
        fresh.insert_all(order_rows(400)).unwrap();
        let sizes = |t: &Table| t.shards().iter().map(|s| s.len()).collect::<Vec<_>>();
        assert_eq!(sizes(&t), sizes(&fresh));
        // Switching to the same policy is a no-op.
        let v = t.data_version();
        t.set_placement(ShardPolicy::Hash).unwrap();
        assert_eq!(t.data_version(), v);
    }

    #[test]
    fn restore_rebuilds_exact_layout_and_indexes() {
        let mut original = sharded_orders(4);
        original.insert_all(order_rows(1000)).unwrap();
        original.create_index("custkey").unwrap();
        let analyzed = original.analyze(AnalyzeConfig::default());
        let shard_rows: Vec<Vec<Row>> = original
            .shards()
            .iter()
            .map(|s| s.rows().to_vec())
            .collect();
        let restored = Table::restore(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int).not_null(),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
            original.shard_target(),
            original.shard_policy(),
            shard_rows,
            &original.indexed_columns(),
            original.analyze_config().cloned(),
            Some(analyzed.as_ref().clone()),
            original.data_version(),
        )
        .unwrap();
        assert_eq!(restored.row_count(), 1000);
        assert_eq!(restored.shard_count(), original.shard_count());
        assert_eq!(restored.data_version(), original.data_version());
        assert_eq!(
            restored.scan().collect_rows(),
            original.scan().collect_rows(),
            "scan order is byte-identical"
        );
        assert_eq!(
            restored
                .index_lookup("custkey", &Value::Int(3))
                .unwrap()
                .len(),
            100
        );
        // The restored stats cache serves without a rescan.
        assert_eq!(restored.stats_recomputes(), 0);
        let stats = restored.stats();
        assert!(stats.is_analyzed());
        assert_eq!(stats.row_count(), 1000);
        assert_eq!(restored.stats_recomputes(), 0, "cache restored, no rescan");
        assert!(restored.is_analyzed());
        // Arity mismatches are rejected with a persist error, not a panic.
        let err = Table::restore(
            "bad",
            Schema::new(vec![Column::new("k", DataType::Int)]),
            1,
            ShardPolicy::AppendToLast,
            vec![vec![Row::new(vec![1.into(), 2.into()])]],
            &[],
            None,
            None,
            0,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "persist");
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = orders_table();
        t.create_index("custkey").unwrap();
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.index_lookup("custkey", &Value::Int(7)).unwrap().len(), 0);
        assert!(t.scan().is_empty());
    }
}
