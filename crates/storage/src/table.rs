//! In-memory row-store table with optional hash indexes and cached statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use decorr_common::{normalize_ident, Error, Result, Row, Schema, Value};

use crate::index::HashIndex;
use crate::stats::{AnalyzeConfig, TableStats};

/// An in-memory table: a schema, a vector of rows, and hash indexes keyed by column name.
///
/// Statistics are cached: [`Table::stats`] computes them at most once per data change.
/// Inserts and `truncate` set a dirty flag (by clearing the cached value); the next
/// `stats` call recomputes — a table that was [`analyze`](Table::analyze)d re-runs the
/// sampled ANALYZE with its remembered configuration, so histograms stay fresh without
/// the caller re-issuing `ANALYZE` after every load.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    indexes: HashMap<String, HashIndex>,
    /// Cached statistics; `None` marks them dirty. Interior mutability so `stats()`
    /// works through the shared references the executor and optimizer hold.
    cached_stats: RwLock<Option<Arc<TableStats>>>,
    /// Remembered `ANALYZE` configuration; `None` until the first ANALYZE.
    analyze_config: Option<AnalyzeConfig>,
    /// How many times statistics were (re)computed — the satellite regression metric:
    /// repeated optimizes against an unchanged table must not rescan it.
    stats_recomputes: AtomicU64,
    /// Monotonic per-table data version: bumped by every insert and truncate. Result
    /// caches (the engine's UDF memo) key on this instead of the catalog-wide data
    /// generation when a UDF provably reads only this table, so writes to unrelated
    /// tables don't flush its memoized results.
    data_version: u64,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            indexes: self.indexes.clone(),
            cached_stats: RwLock::new(
                self.cached_stats
                    .read()
                    .expect("stats cache poisoned")
                    .clone(),
            ),
            analyze_config: self.analyze_config.clone(),
            stats_recomputes: AtomicU64::new(self.stats_recomputes.load(Ordering::Relaxed)),
            data_version: self.data_version,
        }
    }
}

impl Table {
    /// Creates an empty table. Column qualifiers in the supplied schema are replaced by
    /// the table name so that scans produce properly qualified columns.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let name = normalize_ident(&name.into());
        let schema = schema.with_qualifier(&name);
        Table {
            name,
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
            cached_stats: RwLock::new(None),
            analyze_config: None,
            stats_recomputes: AtomicU64::new(0),
            data_version: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Validates and appends a row, maintaining all indexes.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Execution(format!(
                "insert into '{}': expected {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (i, v) in row.values.iter().enumerate() {
            let col = self.schema.column(i);
            if !v.is_null() && !col.data_type.is_compatible_with(v.data_type()) {
                return Err(Error::TypeError(format!(
                    "insert into '{}': column '{}' expects {}, got {} ({v})",
                    self.name,
                    col.name,
                    col.data_type,
                    v.data_type()
                )));
            }
            if v.is_null() && !col.nullable {
                return Err(Error::Execution(format!(
                    "insert into '{}': column '{}' is NOT NULL",
                    self.name, col.name
                )));
            }
        }
        let row_id = self.rows.len();
        for index in self.indexes.values_mut() {
            index.insert(&row, row_id);
        }
        self.rows.push(row);
        self.data_version += 1;
        self.mark_stats_dirty();
        Ok(())
    }

    /// Bulk insert (used by the data generator). Rows are validated like [`Table::insert`].
    pub fn insert_all(&mut self, rows: Vec<Row>) -> Result<()> {
        self.rows.reserve(rows.len());
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Creates a hash index on `column` (no-op if one already exists). Existing rows are
    /// indexed immediately.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let column = normalize_ident(column);
        if self.indexes.contains_key(&column) {
            return Ok(());
        }
        let col_idx = self.schema.index_of(None, &column)?;
        let mut index = HashIndex::new(&column, col_idx);
        for (row_id, row) in self.rows.iter().enumerate() {
            index.insert(row, row_id);
        }
        self.indexes.insert(column, index);
        Ok(())
    }

    /// Returns the hash index on `column` if one exists.
    pub fn index_on(&self, column: &str) -> Option<&HashIndex> {
        self.indexes.get(&normalize_ident(column))
    }

    /// Names of all indexed columns.
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.indexes.keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Looks up rows whose indexed `column` equals `value` using the hash index. Returns
    /// `None` when no index exists on the column (caller should fall back to a scan).
    pub fn index_lookup(&self, column: &str, value: &Value) -> Option<Vec<&Row>> {
        self.index_on(column)
            .map(|idx| idx.lookup(value).iter().map(|&i| &self.rows[i]).collect())
    }

    /// Statistics for the cost model, computed lazily and cached until the next data
    /// change. Unanalyzed tables get basic statistics (row count, exact distinct
    /// counts, null fractions); tables a sampled [`analyze`](Table::analyze) ran over
    /// additionally carry histograms and MCV lists, and *re-analyze themselves* with
    /// the remembered configuration when the cache is invalidated by new data.
    pub fn stats(&self) -> Arc<TableStats> {
        if let Some(cached) = self
            .cached_stats
            .read()
            .expect("stats cache poisoned")
            .clone()
        {
            return cached;
        }
        // Double-checked under the write lock: concurrent readers that missed above
        // must not each run the full-table pass (and each bump the recompute
        // counter) — one computes, the rest wait and reuse it.
        let mut slot = self.cached_stats.write().expect("stats cache poisoned");
        if let Some(cached) = slot.as_ref() {
            return Arc::clone(cached);
        }
        let computed = Arc::new(match &self.analyze_config {
            Some(config) => TableStats::analyzed(&self.schema, &self.rows, config),
            None => TableStats::basic(&self.schema, &self.rows),
        });
        self.stats_recomputes.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&computed));
        computed
    }

    /// Runs a sampled `ANALYZE` over the table: builds histogram/MCV statistics from a
    /// reservoir sample and remembers `config` so later invalidations re-analyze
    /// automatically. Returns the fresh statistics.
    pub fn analyze(&mut self, config: AnalyzeConfig) -> Arc<TableStats> {
        self.analyze_config = Some(config);
        self.mark_stats_dirty();
        self.stats()
    }

    /// True when the table carries `ANALYZE`-built histogram statistics.
    pub fn is_analyzed(&self) -> bool {
        self.analyze_config.is_some()
    }

    /// Lifetime count of statistics (re)computations — the regression metric proving
    /// that repeated `stats()` calls against unchanged data never rescan the table.
    pub fn stats_recomputes(&self) -> u64 {
        self.stats_recomputes.load(Ordering::Relaxed)
    }

    /// Monotonic data version: bumped by every [`insert`](Table::insert) and
    /// [`truncate`](Table::truncate). See the field docs for how result caches use it.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// Marks cached statistics dirty (cheap; the next `stats()` call recomputes).
    fn mark_stats_dirty(&mut self) {
        let cached = self.cached_stats.get_mut().expect("stats cache poisoned");
        *cached = None;
    }

    /// Removes all rows (keeps schema, index definitions and the ANALYZE config).
    pub fn truncate(&mut self) {
        self.rows.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
        self.data_version += 1;
        self.mark_stats_dirty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType};

    fn orders_table() -> Table {
        Table::new(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int).not_null(),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = orders_table();
        t.insert(Row::new(vec![1.into(), 10.into(), 100.5.into()]))
            .unwrap();
        t.insert(Row::new(vec![2.into(), 10.into(), 2.5.into()]))
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.rows()[1].get(2), &Value::Float(2.5));
        assert_eq!(t.schema().column(0).qualifier.as_deref(), Some("orders"));
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = orders_table();
        assert!(t.insert(Row::new(vec![1.into()])).is_err());
        assert!(t
            .insert(Row::new(vec!["x".into(), 10.into(), 1.0.into()]))
            .is_err());
        // NOT NULL violation
        assert!(t
            .insert(Row::new(vec![Value::Null, 10.into(), 1.0.into()]))
            .is_err());
        // Int accepted where Float expected (numeric compatibility)
        assert!(t
            .insert(Row::new(vec![1.into(), 10.into(), 7.into()]))
            .is_ok());
    }

    #[test]
    fn index_lookup_finds_matching_rows() {
        let mut t = orders_table();
        for i in 0..100i64 {
            t.insert(Row::new(vec![i.into(), (i % 10).into(), (i as f64).into()]))
                .unwrap();
        }
        t.create_index("custkey").unwrap();
        let hits = t.index_lookup("custkey", &Value::Int(3)).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|r| r.get(1) == &Value::Int(3)));
        // Unindexed column -> None
        assert!(t.index_lookup("totalprice", &Value::Float(1.0)).is_none());
        // Missing key -> empty
        assert_eq!(t.index_lookup("custkey", &Value::Int(99)).unwrap().len(), 0);
    }

    #[test]
    fn index_created_after_inserts_sees_existing_rows() {
        let mut t = orders_table();
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.create_index("custkey").unwrap();
        t.insert(Row::new(vec![2.into(), 7.into(), 2.0.into()]))
            .unwrap();
        assert_eq!(t.index_lookup("custkey", &Value::Int(7)).unwrap().len(), 2);
        assert_eq!(t.indexed_columns(), vec!["custkey".to_string()]);
    }

    #[test]
    fn stats_are_cached_until_data_changes() {
        let mut t = orders_table();
        for i in 0..50i64 {
            t.insert(Row::new(vec![i.into(), (i % 5).into(), (i as f64).into()]))
                .unwrap();
        }
        assert_eq!(t.stats_recomputes(), 0, "stats are lazy");
        let first = t.stats();
        assert_eq!(first.distinct_count("custkey"), 5);
        assert_eq!(t.stats_recomputes(), 1);
        // Repeated reads serve the cached Arc without rescanning.
        for _ in 0..10 {
            let again = t.stats();
            assert_eq!(again.row_count(), 50);
        }
        assert_eq!(t.stats_recomputes(), 1, "unchanged table must not rescan");
        // An insert dirties the cache; the next read recomputes once.
        t.insert(Row::new(vec![50.into(), 9.into(), 1.0.into()]))
            .unwrap();
        assert_eq!(t.stats().distinct_count("custkey"), 6);
        assert_eq!(t.stats_recomputes(), 2);
    }

    #[test]
    fn analyze_is_sticky_across_invalidation() {
        let mut t = orders_table();
        for i in 0..200i64 {
            t.insert(Row::new(vec![i.into(), (i % 10).into(), (i as f64).into()]))
                .unwrap();
        }
        assert!(!t.is_analyzed());
        let analyzed = t.analyze(crate::stats::AnalyzeConfig::default());
        assert!(analyzed.is_analyzed());
        assert!(analyzed
            .range_selectivity("orderkey", None, Some((99.0, true)))
            .is_some());
        // New data invalidates, and the next stats() re-analyzes automatically.
        t.insert(Row::new(vec![200.into(), 3.into(), 1.0.into()]))
            .unwrap();
        let refreshed = t.stats();
        assert!(refreshed.is_analyzed(), "re-analyze with remembered config");
        assert_eq!(refreshed.row_count(), 201);
    }

    #[test]
    fn data_version_tracks_inserts_and_truncate() {
        let mut t = orders_table();
        assert_eq!(t.data_version(), 0);
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.insert(Row::new(vec![2.into(), 8.into(), 2.0.into()]))
            .unwrap();
        assert_eq!(t.data_version(), 2);
        // Read-only operations leave it alone.
        let _ = t.stats();
        t.create_index("custkey").unwrap();
        assert_eq!(t.data_version(), 2);
        t.truncate();
        assert_eq!(t.data_version(), 3);
        // Clones carry the version forward.
        assert_eq!(t.clone().data_version(), 3);
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = orders_table();
        t.create_index("custkey").unwrap();
        t.insert(Row::new(vec![1.into(), 7.into(), 1.0.into()]))
            .unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.index_lookup("custkey", &Value::Int(7)).unwrap().len(), 0);
    }
}
