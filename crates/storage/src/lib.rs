//! In-memory storage: tables, hash indexes, catalog and statistics.
//!
//! The paper runs its experiments on commercial systems over TPC-H with "default indices
//! on primary and foreign keys". This crate provides the equivalent substrate: an
//! in-memory row store with hash indexes that the executor uses both for the iterative
//! baseline (the per-invocation lookups inside UDF bodies) and for index-nested-loop
//! joins, plus simple per-table statistics for the cost model.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod index;
pub mod shard;
pub mod stats;
pub mod table;

pub use catalog::Catalog;
pub use index::{HashIndex, RowLocator};
pub use shard::{RowsView, Shard, ShardPolicy, ShardSet, ShardSlices};
pub use stats::{AnalyzeConfig, ColumnStatistics, Histogram, ShardStatistics, TableStats};
pub use table::Table;
