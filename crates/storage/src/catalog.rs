//! The catalog: a named collection of tables.

use std::collections::BTreeMap;
use std::sync::Arc;

use decorr_common::{normalize_ident, Error, Result, Row, Schema};

use crate::shard::ShardPolicy;
use crate::table::Table;

/// The database catalog. Owns every table; the executor reads through shared references
/// while DDL/DML goes through `&mut` methods on the owning engine.
///
/// DDL statements bump a monotonic [`ddl_generation`](Catalog::ddl_generation) counter;
/// the optimizer's plan cache folds it into its cache key so plans bound against a
/// dropped or re-created schema become unreachable. Row inserts deliberately do *not*
/// bump it — they can only make a cached cost-based choice suboptimal, never incorrect.
/// Inserts instead bump the separate [`data_generation`](Catalog::data_generation)
/// counter, which consumers whose cached *results* (not plans) depend on table
/// contents — like the engine's UDF memo cache — fold into their invalidation epoch.
/// Tables are stored behind `Arc` so cloning a catalog (the engine's copy-on-write
/// snapshot swap) is cheap: only tables a writer actually touches are deep-cloned, via
/// [`Arc::make_mut`] in [`table_mut`](Catalog::table_mut).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    ddl_generation: u64,
    data_generation: u64,
    /// Shard fanout newly created tables get (0/1 = single-shard, the pre-shard
    /// layout). Configured through `Engine::builder().shard_count(..)`.
    default_shard_count: usize,
    /// Row-routing policy newly created tables get. Configured through
    /// `Engine::builder().default_placement(..)`; defaults to `AppendToLast`.
    default_placement: ShardPolicy,
}

impl Catalog {
    /// An empty catalog with single-shard `AppendToLast` defaults.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Sets the shard fanout future [`create_table`](Catalog::create_table) calls use
    /// (existing tables keep their layout). Values ≤ 1 mean single-shard.
    pub fn set_default_shard_count(&mut self, shard_count: usize) {
        self.default_shard_count = shard_count;
    }

    /// The shard fanout newly created tables get.
    pub fn default_shard_count(&self) -> usize {
        self.default_shard_count.max(1)
    }

    /// Sets the row-routing policy future [`create_table`](Catalog::create_table)
    /// calls use (existing tables keep theirs).
    pub fn set_default_placement(&mut self, policy: ShardPolicy) {
        self.default_placement = policy;
    }

    /// The row-routing policy newly created tables get.
    pub fn default_placement(&self) -> ShardPolicy {
        self.default_placement
    }

    /// Switches one table's row-routing policy, re-routing its existing rows (see
    /// [`Table::set_placement`]). Bumps the DDL generation: `Hash` scan order differs
    /// from insertion order, so cached plans and their cost-based shard-pruning
    /// choices must re-optimize against the new layout.
    pub fn set_table_placement(&mut self, name: &str, policy: ShardPolicy) -> Result<()> {
        self.table_mut(name)?.set_placement(policy)?;
        self.ddl_generation += 1;
        Ok(())
    }

    /// Installs a fully-built table (the snapshot-restore path). Fails if a table
    /// with the same name already exists. Does *not* bump generations — restore sets
    /// them wholesale via [`set_generations`](Catalog::set_generations).
    pub fn restore_table(&mut self, table: Table) -> Result<()> {
        let key = table.name().to_string();
        if self.tables.contains_key(&key) {
            return Err(Error::Persist(format!(
                "restore: table '{key}' already exists"
            )));
        }
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Overwrites both generation counters — the snapshot-restore path, so counters
    /// (and everything keyed on them, like plan-cache entries) continue exactly where
    /// the checkpointed engine left off.
    pub fn set_generations(&mut self, ddl: u64, data: u64) {
        self.ddl_generation = ddl;
        self.data_generation = data;
    }

    /// Creates a table. Fails if a table with the same name already exists.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = normalize_ident(name);
        if self.tables.contains_key(&key) {
            return Err(Error::Catalog(format!("table '{name}' already exists")));
        }
        self.ddl_generation += 1;
        let table = Table::with_shards(
            key.clone(),
            schema,
            self.default_shard_count(),
            self.default_placement,
        );
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Drops a table. Fails if it does not exist.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = normalize_ident(name);
        if self.tables.remove(&key).is_none() {
            return Err(Error::Catalog(format!("table '{name}' does not exist")));
        }
        self.ddl_generation += 1;
        Ok(())
    }

    /// Monotonic DDL counter: incremented by `create_table`, `drop_table` and
    /// `create_index`. Plan caches key on this value so schema changes invalidate
    /// cached plans.
    pub fn ddl_generation(&self) -> u64 {
        self.ddl_generation
    }

    /// Monotonic data-mutation counter: incremented by every successful
    /// [`insert_rows`](Catalog::insert_rows). A pure UDF's result may depend on table
    /// contents (its body can run queries), so result caches key on this value to
    /// avoid serving answers computed against rows that have since changed.
    pub fn data_generation(&self) -> u64 {
        self.data_generation
    }

    /// Shared access to a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&normalize_ident(name))
            .map(|t| t.as_ref())
            .ok_or_else(|| Error::Catalog(format!("unknown table '{name}'")))
    }

    /// Mutable access to a table. On a catalog cloned from a pinned snapshot the table
    /// is still shared with the snapshot, so this copy-on-writes just that table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&normalize_ident(name))
            .map(Arc::make_mut)
            .ok_or_else(|| Error::Catalog(format!("unknown table '{name}'")))
    }

    /// The shared handle for a table — lets executors pin one table's data
    /// independently of the catalog it came from.
    pub fn table_arc(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(&normalize_ident(name))
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("unknown table '{name}'")))
    }

    /// True when a table with the given (case-insensitive) name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&normalize_ident(name))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Convenience: schema of a table (unqualified error if missing).
    pub fn table_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.table(name)?.schema().clone())
    }

    /// Convenience: inserts rows into a table. Bumps the data generation (but not the
    /// DDL generation — plans stay valid, memoized UDF results do not).
    pub fn insert_rows(&mut self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let n = rows.len();
        self.table_mut(name)?.insert_all(rows)?;
        self.data_generation += 1;
        Ok(n)
    }

    /// Convenience: creates a hash index.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        self.table_mut(table)?.create_index(column)?;
        self.ddl_generation += 1;
        Ok(())
    }

    /// Runs a sampled `ANALYZE` over one table (see
    /// [`Table::analyze`](crate::table::Table::analyze)). Bumps the DDL generation:
    /// fresh histograms change cost-based decisions, so cached plans must be
    /// re-optimized against the new statistics.
    pub fn analyze_table(
        &mut self,
        name: &str,
        config: &crate::stats::AnalyzeConfig,
    ) -> Result<()> {
        self.table_mut(name)?.analyze(config.clone());
        self.ddl_generation += 1;
        Ok(())
    }

    /// Runs a sampled `ANALYZE` over every table; returns the analyzed table names.
    pub fn analyze_all(&mut self, config: &crate::stats::AnalyzeConfig) -> Vec<String> {
        let names = self.table_names();
        for name in &names {
            if let Some(table) = self.tables.get_mut(name) {
                Arc::make_mut(table).analyze(config.clone());
            }
        }
        self.ddl_generation += 1;
        names
    }

    /// Total number of rows across all tables (used in tests and diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Str),
        ])
    }

    #[test]
    fn create_insert_lookup() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(c.has_table("T"));
        c.insert_rows("t", vec![Row::new(vec![1.into(), "a".into()])])
            .unwrap();
        assert_eq!(c.table("t").unwrap().row_count(), 1);
        assert_eq!(c.total_rows(), 1);
        assert_eq!(c.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn duplicate_and_missing_tables_error() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert_eq!(c.create_table("T", schema()).unwrap_err().kind(), "catalog");
        assert_eq!(c.table("nosuch").unwrap_err().kind(), "catalog");
        assert_eq!(c.drop_table("nosuch").unwrap_err().kind(), "catalog");
        c.drop_table("t").unwrap();
        assert!(!c.has_table("t"));
    }

    #[test]
    fn inserts_bump_data_generation_but_not_ddl() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        let (ddl, data) = (c.ddl_generation(), c.data_generation());
        c.insert_rows("t", vec![Row::new(vec![1.into(), "a".into()])])
            .unwrap();
        assert_eq!(c.ddl_generation(), ddl);
        assert_eq!(c.data_generation(), data + 1);
        // A failed insert (unknown table) leaves the counter alone.
        assert!(c.insert_rows("nosuch", vec![]).is_err());
        assert_eq!(c.data_generation(), data + 1);
    }

    #[test]
    fn clone_is_copy_on_write_per_table() {
        let mut c = Catalog::new();
        c.create_table("a", schema()).unwrap();
        c.create_table("b", schema()).unwrap();
        let snapshot = c.clone();
        c.insert_rows("a", vec![Row::new(vec![1.into(), "a".into()])])
            .unwrap();
        // The pinned snapshot still sees the old contents of the written table...
        assert_eq!(snapshot.table("a").unwrap().row_count(), 0);
        assert_eq!(c.table("a").unwrap().row_count(), 1);
        assert_eq!(snapshot.data_generation() + 1, c.data_generation());
        // ...while the untouched table is still physically shared, not deep-cloned.
        assert!(Arc::ptr_eq(
            &c.table_arc("b").unwrap(),
            &snapshot.table_arc("b").unwrap()
        ));
        assert!(!Arc::ptr_eq(
            &c.table_arc("a").unwrap(),
            &snapshot.table_arc("a").unwrap()
        ));
    }

    #[test]
    fn default_shard_count_applies_to_new_tables_only() {
        let mut c = Catalog::new();
        c.create_table("single", schema()).unwrap();
        c.set_default_shard_count(4);
        assert_eq!(c.default_shard_count(), 4);
        c.create_table("sharded", schema()).unwrap();
        let rows: Vec<Row> = (0..1000)
            .map(|i| Row::new(vec![i.into(), "x".into()]))
            .collect();
        c.insert_rows("single", rows.clone()).unwrap();
        c.insert_rows("sharded", rows).unwrap();
        assert_eq!(c.table("single").unwrap().shard_count(), 1);
        assert_eq!(c.table("sharded").unwrap().shard_count(), 4);
    }

    #[test]
    fn placement_defaults_and_per_table_switch() {
        use crate::shard::ShardPolicy;
        let mut c = Catalog::new();
        assert_eq!(c.default_placement(), ShardPolicy::AppendToLast);
        c.set_default_shard_count(4);
        c.set_default_placement(ShardPolicy::Hash);
        c.create_table("hashed", schema()).unwrap();
        assert_eq!(c.table("hashed").unwrap().shard_policy(), ShardPolicy::Hash);
        assert_eq!(
            c.table("hashed").unwrap().shard_count(),
            4,
            "hash placement opens all shards up front"
        );
        // Per-table switch bumps the DDL generation (plans must re-optimize).
        c.set_default_placement(ShardPolicy::AppendToLast);
        c.create_table("t", schema()).unwrap();
        let rows: Vec<Row> = (0..100)
            .map(|i| Row::new(vec![i.into(), "x".into()]))
            .collect();
        c.insert_rows("t", rows).unwrap();
        let ddl = c.ddl_generation();
        c.set_table_placement("t", ShardPolicy::Hash).unwrap();
        assert_eq!(c.ddl_generation(), ddl + 1);
        assert_eq!(c.table("t").unwrap().shard_policy(), ShardPolicy::Hash);
        assert_eq!(c.table("t").unwrap().row_count(), 100);
        assert_eq!(
            c.set_table_placement("nosuch", ShardPolicy::Hash)
                .unwrap_err()
                .kind(),
            "catalog"
        );
    }

    #[test]
    fn generations_can_be_restored_wholesale() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        c.set_generations(41, 17);
        assert_eq!(c.ddl_generation(), 41);
        assert_eq!(c.data_generation(), 17);
        // Restore refuses to clobber an existing table.
        let dup = Table::new("t", schema());
        assert_eq!(c.restore_table(dup).unwrap_err().kind(), "persist");
    }

    #[test]
    fn index_via_catalog() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        c.insert_rows(
            "t",
            vec![
                Row::new(vec![1.into(), "a".into()]),
                Row::new(vec![1.into(), "b".into()]),
            ],
        )
        .unwrap();
        c.create_index("t", "k").unwrap();
        let hits = c
            .table("t")
            .unwrap()
            .index_lookup("k", &Value::Int(1))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }
}
