//! Table shards: the unit of copy-on-write, statistics maintenance and pruning.
//!
//! A [`Table`](crate::table::Table) owns a fixed-fanout set of `Arc<Shard>`s. Writers
//! copy-on-write one shard per insert instead of cloning the whole row vector, each
//! shard caches its own [`ShardStatistics`] summary (so ANALYZE is incremental: only
//! shards that changed re-sample), and the cached full-pass min/max lets scans prune
//! shards whose value range provably misses a predicate.
//!
//! Two read-side views exist over a shard set:
//!
//! * [`RowsView`] borrows the table — the everyday replacement for the retired
//!   contiguous `Table::rows()` slice;
//! * [`ShardSet`] owns `Arc` handles plus prefix offsets — the `'static`,
//!   cheaply-cloned form the executor's worker-pool jobs capture, mapping global
//!   morsel ranges onto per-shard slices with no intermediate copy-out.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::{Arc, RwLock};

use decorr_common::{Row, Schema};

use crate::stats::{AnalyzeConfig, ShardStatistics};

/// How a table routes inserted rows onto its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Rows append to the last open shard; new shards open as the table grows (up to
    /// the configured fanout). Shards are contiguous insertion-order segments, so the
    /// global scan order equals insertion order at *every* fanout — the invariant the
    /// byte-identity contract across shard counts rests on.
    #[default]
    AppendToLast,
    /// Rows route by a hash of their values; all shards exist up front. Scan order
    /// differs from insertion order, so this policy is for workloads that never
    /// relied on it (and for exercising empty/skewed shards in tests).
    Hash,
}

/// One shard: a contiguous run of rows plus a lazily-computed statistics summary.
///
/// The summary is cached under the same dirty-on-write discipline as table-level
/// statistics: appending a row clears it, and the next statistics pass recomputes
/// only the shards whose cache is empty (or was computed at the wrong tier).
#[derive(Debug, Default)]
pub struct Shard {
    rows: Vec<Row>,
    /// Cached summary; `None` marks it dirty. Interior mutability so lazily ensuring
    /// summaries works through the shared references the executor holds.
    summary: RwLock<Option<Arc<ShardStatistics>>>,
}

impl Clone for Shard {
    fn clone(&self) -> Shard {
        Shard {
            rows: self.rows.clone(),
            summary: RwLock::new(self.cached_summary()),
        }
    }
}

impl Shard {
    /// An empty shard with no cached summary.
    pub fn new() -> Shard {
        Shard::default()
    }

    /// Rebuilds a shard around an exact row vector — the snapshot-restore
    /// constructor. The summary starts dirty; statistics recompute lazily.
    pub fn from_rows(rows: Vec<Row>) -> Shard {
        Shard {
            rows,
            summary: RwLock::new(None),
        }
    }

    /// The shard's rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows in the shard.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the shard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row and dirties the cached summary.
    pub(crate) fn push(&mut self, row: Row) {
        self.rows.push(row);
        *self.summary.get_mut().expect("shard summary poisoned") = None;
    }

    /// The cached summary, if the shard is clean. Never computes — scan-time pruning
    /// must not pay a statistics pass, so dirty shards simply decline to prune.
    pub fn cached_summary(&self) -> Option<Arc<ShardStatistics>> {
        self.summary.read().expect("shard summary poisoned").clone()
    }

    /// The shard's summary at the tier `config` implies, computing (and caching) it
    /// only when the cache is dirty or was computed at the other tier. Every real
    /// recompute bumps `recomputes` — the regression metric proving ANALYZE stays
    /// incremental.
    pub(crate) fn ensure_summary(
        &self,
        schema: &Schema,
        config: Option<&AnalyzeConfig>,
        shard_index: u64,
        recomputes: &std::sync::atomic::AtomicU64,
    ) -> Arc<ShardStatistics> {
        let wanted_analyzed = config.is_some();
        if let Some(cached) = self.cached_summary() {
            if cached.analyzed == wanted_analyzed {
                return cached;
            }
        }
        // Double-checked under the write lock so concurrent readers that raced past
        // the fast path compute (and count) the pass only once.
        let mut slot = self.summary.write().expect("shard summary poisoned");
        if let Some(cached) = slot.as_ref() {
            if cached.analyzed == wanted_analyzed {
                return Arc::clone(cached);
            }
        }
        let computed = Arc::new(match config {
            Some(c) => ShardStatistics::analyzed(schema, &self.rows, c, shard_index),
            None => ShardStatistics::basic(schema, &self.rows),
        });
        recomputes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        *slot = Some(Arc::clone(&computed));
        computed
    }

    /// Routing hash for [`ShardPolicy::Hash`]: a hash over the row's value group
    /// keys (NULL-safe, Int/Float-unifying like every other value-keyed structure).
    pub(crate) fn route_hash(row: &Row) -> u64 {
        let mut h = DefaultHasher::new();
        for v in &row.values {
            v.group_key().hash(&mut h);
        }
        h.finish()
    }
}

/// A borrowed view over a table's shards — the replacement for the retired
/// `Table::rows() -> &[Row]` contract. Iteration visits rows in global scan order;
/// [`chunks`](RowsView::chunks) yields morsel-sized slices that never cross a shard
/// boundary; [`collect_rows`](RowsView::collect_rows) is the explicit escape hatch
/// for callers that genuinely need one contiguous vector.
#[derive(Debug, Clone, Copy)]
pub struct RowsView<'a> {
    shards: &'a [Arc<Shard>],
    len: usize,
}

impl<'a> RowsView<'a> {
    pub(crate) fn new(shards: &'a [Arc<Shard>], len: usize) -> RowsView<'a> {
        RowsView { shards, len }
    }

    /// Total number of rows across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All rows in global scan order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Row> {
        self.shards.iter().flat_map(|s| s.rows().iter())
    }

    /// Morsel-sized row slices, at most `size` rows each, never crossing a shard
    /// boundary (each slice is contiguous in one shard's storage).
    pub fn chunks(&self, size: usize) -> impl Iterator<Item = &'a [Row]> {
        let size = size.max(1);
        self.shards.iter().flat_map(move |s| s.rows().chunks(size))
    }

    /// The row at global position `i`, if in bounds.
    pub fn get(&self, mut i: usize) -> Option<&'a Row> {
        for shard in self.shards {
            if i < shard.len() {
                return Some(&shard.rows()[i]);
            }
            i -= shard.len();
        }
        None
    }

    /// Materializes every row into one contiguous vector — the explicit escape hatch
    /// for consumers of the old contiguous-slice contract.
    pub fn collect_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len);
        for shard in self.shards {
            out.extend_from_slice(shard.rows());
        }
        out
    }
}

impl<'a> IntoIterator for RowsView<'a> {
    type Item = &'a Row;
    type IntoIter = std::iter::FlatMap<
        std::slice::Iter<'a, Arc<Shard>>,
        std::slice::Iter<'a, Row>,
        fn(&'a Arc<Shard>) -> std::slice::Iter<'a, Row>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.shards.iter().flat_map(|s| s.rows().iter())
    }
}

/// An owned, cheaply-cloned handle onto a set of shards plus prefix offsets: the
/// `'static` form of [`RowsView`] the executor's worker-pool jobs capture. A global
/// row range (a morsel) maps onto per-shard sub-slices via [`slices`](ShardSet::slices)
/// with no row copied.
#[derive(Debug, Clone, Default)]
pub struct ShardSet {
    shards: Vec<Arc<Shard>>,
    /// Prefix sums: `offsets[i]` is the global position of shard `i`'s first row;
    /// the final entry is the total row count.
    offsets: Vec<usize>,
}

impl ShardSet {
    /// Wraps a set of shard handles, computing the prefix offsets.
    pub fn new(shards: Vec<Arc<Shard>>) -> ShardSet {
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for shard in &shards {
            total += shard.len();
            offsets.push(total);
        }
        ShardSet { shards, offsets }
    }

    /// Total number of rows across all shards.
    pub fn len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// True when the set covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards in the set.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying shard handles.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The per-shard sub-slices covering the global row range — the zero-copy morsel
    /// source. Empty intersections are skipped.
    pub fn slices(&self, range: Range<usize>) -> ShardSlices<'_> {
        let end = range.end.min(self.len());
        let start = range.start.min(end);
        // First shard whose span contains `start`.
        let shard = self
            .offsets
            .partition_point(|&o| o <= start)
            .saturating_sub(1);
        ShardSlices {
            set: self,
            shard,
            start,
            end,
        }
    }

    /// Rows of the global range, one at a time, in scan order.
    pub fn iter_range(&self, range: Range<usize>) -> impl Iterator<Item = &Row> {
        self.slices(range).flatten()
    }

    /// All rows, in scan order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.shards.iter().flat_map(|s| s.rows().iter())
    }

    /// The row at global position `i`, if in bounds — a binary search over the prefix
    /// offsets (the hash-join probe resolves build-side matches by global index).
    pub fn get(&self, i: usize) -> Option<&Row> {
        if i >= self.len() {
            return None;
        }
        let shard = self.offsets.partition_point(|&o| o <= i) - 1;
        Some(&self.shards[shard].rows()[i - self.offsets[shard]])
    }

    /// Materializes the global range into one vector (used where an operator's output
    /// genuinely is a contiguous row vector, e.g. a scan result).
    pub fn collect_range(&self, range: Range<usize>) -> Vec<Row> {
        let end = range.end.min(self.len());
        let start = range.start.min(end);
        let mut out = Vec::with_capacity(end - start);
        for slice in self.slices(start..end) {
            out.extend_from_slice(slice);
        }
        out
    }

    /// Materializes every row.
    pub fn collect_rows(&self) -> Vec<Row> {
        self.collect_range(0..self.len())
    }
}

/// Iterator of per-shard sub-slices covering a global row range (see
/// [`ShardSet::slices`]).
#[derive(Debug)]
pub struct ShardSlices<'a> {
    set: &'a ShardSet,
    shard: usize,
    start: usize,
    end: usize,
}

impl<'a> Iterator for ShardSlices<'a> {
    type Item = &'a [Row];

    fn next(&mut self) -> Option<&'a [Row]> {
        while self.start < self.end && self.shard < self.set.shards.len() {
            let lo = self.set.offsets[self.shard];
            let hi = self.set.offsets[self.shard + 1];
            if self.start >= hi {
                self.shard += 1;
                continue;
            }
            let begin = self.start - lo;
            let stop = self.end.min(hi) - lo;
            let slice = &self.set.shards[self.shard].rows()[begin..stop];
            self.start = self.end.min(hi);
            self.shard += 1;
            if slice.is_empty() {
                continue;
            }
            return Some(slice);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::Value;

    fn shard_of(values: Range<i64>) -> Arc<Shard> {
        let mut s = Shard::new();
        for i in values {
            s.push(Row::new(vec![Value::Int(i)]));
        }
        Arc::new(s)
    }

    fn ints(rows: Vec<Row>) -> Vec<i64> {
        rows.iter()
            .map(|r| match r.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected value {other:?}"),
            })
            .collect()
    }

    #[test]
    fn shard_set_maps_global_ranges_onto_shard_slices() {
        let set = ShardSet::new(vec![shard_of(0..4), shard_of(4..4), shard_of(4..10)]);
        assert_eq!(set.len(), 10);
        assert_eq!(set.shard_count(), 3);
        // A range inside one shard.
        assert_eq!(ints(set.collect_range(1..3)), vec![1, 2]);
        // A range crossing the (empty) middle shard.
        assert_eq!(ints(set.collect_range(2..7)), vec![2, 3, 4, 5, 6]);
        let slices: Vec<usize> = set.slices(2..7).map(<[Row]>::len).collect();
        assert_eq!(slices, vec![2, 3], "two shard-local slices, no copy");
        // Degenerate and clamped ranges.
        assert!(set.collect_range(5..5).is_empty());
        assert_eq!(ints(set.collect_range(8..usize::MAX)), vec![8, 9]);
        // Point lookups by global index, across the empty middle shard.
        assert_eq!(set.get(3), Some(&Row::new(vec![Value::Int(3)])));
        assert_eq!(set.get(4), Some(&Row::new(vec![Value::Int(4)])));
        assert_eq!(set.get(10), None);
        // Full iteration order is global scan order.
        assert_eq!(ints(set.collect_rows()), (0..10).collect::<Vec<_>>());
        assert_eq!(set.iter_range(0..10).count(), 10);
        assert_eq!(set.iter().count(), 10);
    }

    #[test]
    fn empty_shard_set_is_sane() {
        let set = ShardSet::new(vec![]);
        assert_eq!(set.len(), 0);
        assert!(set.is_empty());
        assert!(set.slices(0..10).next().is_none());
        assert!(set.collect_rows().is_empty());
    }

    #[test]
    fn rows_view_chunks_never_cross_shard_boundaries() {
        let shards = vec![shard_of(0..5), shard_of(5..8)];
        let view = RowsView::new(&shards, 8);
        assert_eq!(view.len(), 8);
        let chunk_lens: Vec<usize> = view.chunks(4).map(<[Row]>::len).collect();
        assert_eq!(
            chunk_lens,
            vec![4, 1, 3],
            "shard 0 splits 4+1, shard 1 is whole"
        );
        assert_eq!(ints(view.collect_rows()), (0..8).collect::<Vec<_>>());
        assert_eq!(view.get(5), Some(&Row::new(vec![Value::Int(5)])));
        assert_eq!(view.get(8), None);
        assert_eq!(view.iter().count(), 8);
        let mut seen = 0;
        for _row in view {
            seen += 1;
        }
        assert_eq!(seen, 8);
    }
}
