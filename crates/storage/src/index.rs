//! Hash indexes over a single column.

use std::collections::HashMap;

use decorr_common::{value::GroupKey, Row, Value};

/// Position of an indexed row inside a sharded table: `(shard index, offset within
/// that shard)`. Rows never move between shards, so postings stay valid across
/// inserts — index maintenance is strictly incremental, never a rebuild.
pub type RowLocator = (usize, usize);

/// An equality hash index: maps a column value to the locators of the rows holding it.
///
/// NULL keys are not indexed (SQL equality never matches NULL), so lookups for NULL
/// return no rows, matching predicate semantics.
#[derive(Debug, Clone)]
pub struct HashIndex {
    column_name: String,
    column_idx: usize,
    map: HashMap<GroupKey, Vec<RowLocator>>,
}

impl HashIndex {
    /// An empty index over the named column at position `column_idx` in the schema.
    pub fn new(column_name: &str, column_idx: usize) -> HashIndex {
        HashIndex {
            column_name: column_name.to_string(),
            column_idx,
            map: HashMap::new(),
        }
    }

    /// The indexed column's (normalized) name.
    pub fn column_name(&self) -> &str {
        &self.column_name
    }

    /// The indexed column's position in the table schema.
    pub fn column_idx(&self) -> usize {
        self.column_idx
    }

    /// Number of distinct (non-NULL) keys in the index.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Adds a row (by shard/offset locator) to the index.
    pub fn insert(&mut self, row: &Row, shard: usize, offset: usize) {
        let key = &row.values[self.column_idx];
        if key.is_null() {
            return;
        }
        self.map
            .entry(key.group_key())
            .or_default()
            .push((shard, offset));
    }

    /// Locators of rows whose indexed column equals `value`.
    pub fn lookup(&self, value: &Value) -> &[RowLocator] {
        if value.is_null() {
            return &[];
        }
        self.map
            .get(&value.group_key())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Removes every posting (used by `truncate` and placement changes).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_key() {
        let mut idx = HashIndex::new("k", 0);
        idx.insert(&Row::new(vec![Value::Int(1), "a".into()]), 0, 0);
        idx.insert(&Row::new(vec![Value::Int(2), "b".into()]), 0, 1);
        idx.insert(&Row::new(vec![Value::Int(1), "c".into()]), 1, 0);
        assert_eq!(idx.lookup(&Value::Int(1)), &[(0, 0), (1, 0)]);
        assert_eq!(idx.lookup(&Value::Int(3)), &[] as &[RowLocator]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn null_keys_are_not_indexed() {
        let mut idx = HashIndex::new("k", 0);
        idx.insert(&Row::new(vec![Value::Null]), 0, 0);
        assert_eq!(idx.lookup(&Value::Null), &[] as &[RowLocator]);
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn int_and_float_keys_unify() {
        let mut idx = HashIndex::new("k", 0);
        idx.insert(&Row::new(vec![Value::Int(2)]), 0, 0);
        assert_eq!(idx.lookup(&Value::Float(2.0)), &[(0, 0)]);
    }
}
