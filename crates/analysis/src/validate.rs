//! Structural plan validation.
//!
//! [`validate_plan`] walks a logical plan bottom-up, threading the *outer scopes*
//! visible to correlated subtrees (Apply right sides, `ApplyMerge` right sides,
//! `ConditionalApplyMerge` branches and scalar subqueries all see the schemas of
//! their enclosing operators), and checks the invariants every rewrite rule must
//! preserve:
//!
//! * every [`Scan`](RelExpr::Scan) names a table the provider knows;
//! * every column reference resolves against the operator's input schema or an
//!   enclosing scope;
//! * `Union` sides agree on arity and column types (up to numeric widening);
//! * `Values` rows match their declared schema's arity;
//! * every Apply correlation binding is consumed by the right subtree;
//! * every UDF call and user-defined aggregate names a registered function.
//!
//! Free [`Param`](decorr_algebra::ScalarExpr::Param)s are deliberately *not*
//! violations: UDF body fragments and mid-rewrite plans legitimately contain
//! parameters bound by an enclosing Apply-bind or by the interpreter.

use std::fmt;
use std::rc::Rc;

use decorr_algebra::visit::free_params;
use decorr_algebra::{AggFunc, ColumnRef, RelExpr, ScalarExpr, SchemaMemo, SchemaProvider};
use decorr_common::{DataType, Result, Schema};
use decorr_storage::Catalog;
use decorr_udf::FunctionRegistry;

/// One violated structural invariant, located by operator name.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A `Scan` references a table the schema provider does not know.
    UnknownTable {
        /// The unresolvable table name.
        table: String,
    },
    /// A column reference resolves against neither the operator's input schema nor
    /// any enclosing scope.
    UnresolvedColumn {
        /// The unresolvable (possibly qualified) column reference.
        column: String,
        /// Name of the operator whose expression holds the reference.
        operator: &'static str,
    },
    /// A scalar UDF invocation names a function that is neither registered nor known
    /// to the schema provider.
    UnknownFunction {
        /// The unresolvable function name.
        name: String,
    },
    /// A user-defined aggregate names a function that is neither registered nor known
    /// to the schema provider (auxiliary aggregates are resolved through the
    /// provider).
    UnknownAggregate {
        /// The unresolvable aggregate name.
        name: String,
    },
    /// The two sides of a `Union` produce different numbers of columns.
    UnionArityMismatch {
        /// Column count of the left side.
        left: usize,
        /// Column count of the right side.
        right: usize,
    },
    /// A `Union` column pairs two types that cannot be unified.
    UnionTypeMismatch {
        /// Zero-based column position.
        position: usize,
        /// Type on the left side.
        left: DataType,
        /// Type on the right side.
        right: DataType,
    },
    /// A `Values` row does not match the declared schema's arity.
    ValuesArityMismatch {
        /// Column count declared by the `Values` schema.
        expected: usize,
        /// Column count of the offending row.
        found: usize,
    },
    /// An Apply correlation binding whose parameter is never consumed by the right
    /// subtree — dead correlation a rewrite should have removed, or (worse) a binding
    /// whose consumer a buggy rule dropped.
    UnconsumedBinding {
        /// The unused binding parameter.
        param: String,
        /// Name of the Apply-family operator holding the binding.
        operator: &'static str,
    },
    /// A residual Apply-family operator in a plan the pipeline claims is fully
    /// decorrelated.
    ResidualApply {
        /// Name of the residual operator.
        operator: &'static str,
    },
}

impl Violation {
    /// Stable kebab-case violation name, used in pipeline error messages and tests.
    pub fn name(&self) -> &'static str {
        match self {
            Violation::UnknownTable { .. } => "unknown-table",
            Violation::UnresolvedColumn { .. } => "unresolved-column",
            Violation::UnknownFunction { .. } => "unknown-function",
            Violation::UnknownAggregate { .. } => "unknown-aggregate",
            Violation::UnionArityMismatch { .. } => "union-arity-mismatch",
            Violation::UnionTypeMismatch { .. } => "union-type-mismatch",
            Violation::ValuesArityMismatch { .. } => "values-arity-mismatch",
            Violation::UnconsumedBinding { .. } => "unconsumed-binding",
            Violation::ResidualApply { .. } => "residual-apply",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnknownTable { table } => write!(f, "scan of unknown table '{table}'"),
            Violation::UnresolvedColumn { column, operator } => write!(
                f,
                "column '{column}' in operator '{operator}' resolves against neither its \
                 input schema nor any enclosing scope"
            ),
            Violation::UnknownFunction { name } => {
                write!(f, "call of unknown function '{name}'")
            }
            Violation::UnknownAggregate { name } => {
                write!(f, "call of unknown user-defined aggregate '{name}'")
            }
            Violation::UnionArityMismatch { left, right } => write!(
                f,
                "union sides produce {left} and {right} columns respectively"
            ),
            Violation::UnionTypeMismatch {
                position,
                left,
                right,
            } => write!(
                f,
                "union column {position} pairs incompatible types {left} and {right}"
            ),
            Violation::ValuesArityMismatch { expected, found } => write!(
                f,
                "values row has {found} fields but the declared schema has {expected} columns"
            ),
            Violation::UnconsumedBinding { param, operator } => write!(
                f,
                "binding parameter '{param}' of operator '{operator}' is never consumed \
                 by its right subtree"
            ),
            Violation::ResidualApply { operator } => write!(
                f,
                "residual '{operator}' operator in a plan claimed fully decorrelated"
            ),
        }
    }
}

/// Outcome of one [`validate_plan`] run: the violations found plus the number of
/// individual checks performed (reported per pass in `PipelineReport`/EXPLAIN).
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Violated invariants, in plan-walk order.
    pub violations: Vec<Violation>,
    /// Individual invariant checks performed (column resolutions, arity checks,
    /// binding-consumption checks, name lookups).
    pub checks: u64,
}

impl ValidationReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validates a plan against a schema provider and function registry, counting checks.
///
/// This is the entry point the optimizer's per-pass validation uses: the provider is
/// whatever view of the catalog the pipeline optimizes against (including the layered
/// auxiliary-aggregate provider of the rewrite passes).
pub fn validate_plan(
    plan: &RelExpr,
    provider: &dyn SchemaProvider,
    registry: &FunctionRegistry,
) -> ValidationReport {
    let mut v = Validator {
        provider,
        registry,
        report: ValidationReport::default(),
        schemas: SchemaMemo::new(),
    };
    v.check_plan(plan, &[]);
    v.report
}

/// Validates a plan directly against a storage [`Catalog`] — the convenience form for
/// engine-level and test callers. Returns the violations only.
pub fn validate(plan: &RelExpr, catalog: &Catalog, registry: &FunctionRegistry) -> Vec<Violation> {
    let provider = CatalogView { catalog, registry };
    validate_plan(plan, &provider, registry).violations
}

/// Checks that a plan the pipeline claims fully decorrelated really contains no
/// Apply-family operator (including inside scalar subqueries). Returns one
/// [`Violation::ResidualApply`] per residual operator.
pub fn check_decorrelated(plan: &RelExpr) -> Vec<Violation> {
    let mut out = vec![];
    collect_residual_applies(plan, &mut out);
    out
}

fn collect_residual_applies(plan: &RelExpr, out: &mut Vec<Violation>) {
    if matches!(
        plan,
        RelExpr::Apply { .. } | RelExpr::ApplyMerge { .. } | RelExpr::ConditionalApplyMerge { .. }
    ) {
        out.push(Violation::ResidualApply {
            operator: plan.name(),
        });
    }
    plan.for_each_expr(&mut |e| collect_expr_residual_applies(e, out));
    plan.for_each_child(&mut |c| collect_residual_applies(c, out));
}

fn collect_expr_residual_applies(expr: &ScalarExpr, out: &mut Vec<Violation>) {
    match expr {
        ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => collect_residual_applies(q, out),
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            collect_expr_residual_applies(expr, out);
            collect_residual_applies(subquery, out);
        }
        other => {
            other.for_each_child(&mut |c| collect_expr_residual_applies(c, out));
        }
    }
}

/// Adapter presenting a storage [`Catalog`] + [`FunctionRegistry`] as a
/// [`SchemaProvider`] without pulling in the executor crate.
struct CatalogView<'a> {
    catalog: &'a Catalog,
    registry: &'a FunctionRegistry,
}

impl SchemaProvider for CatalogView<'_> {
    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.catalog.table_schema(table)
    }

    fn udf_return_type(&self, name: &str) -> Option<DataType> {
        self.registry.return_type(name)
    }
}

struct Validator<'a> {
    provider: &'a dyn SchemaProvider,
    registry: &'a FunctionRegistry,
    report: ValidationReport,
    /// Pointer-keyed inference memo: the validator asks for schemas at every level of
    /// the walk, which is quadratic without one. Valid because the plan tree is
    /// borrowed (immutable and alive) for the whole validation.
    schemas: SchemaMemo,
}

impl Validator<'_> {
    fn schema_of(&mut self, plan: &RelExpr) -> Option<Rc<Schema>> {
        self.schemas.infer(plan, self.provider).ok()
    }

    /// The schema this operator's own expressions are evaluated against, mirroring
    /// the scope model of `decorr_algebra::visit::free_column_refs`. `None` means a
    /// child schema could not be computed (e.g. an unknown table below) — expression
    /// checks are skipped so the root cause is reported exactly once, at its node.
    fn visible_schema(&mut self, plan: &RelExpr) -> Option<Rc<Schema>> {
        match plan {
            RelExpr::Join { left, right, .. }
            | RelExpr::Union { left, right, .. }
            | RelExpr::Apply { left, right, .. }
            | RelExpr::ApplyMerge { left, right, .. } => {
                let (l, r) = (self.schema_of(left)?, self.schema_of(right)?);
                Some(Rc::new(l.join(&r)))
            }
            RelExpr::ConditionalApplyMerge { left, .. } => self.schema_of(left),
            other => match other.first_child() {
                Some(c) => self.schema_of(c),
                None => Some(Rc::new(Schema::empty())),
            },
        }
    }

    fn check_plan(&mut self, plan: &RelExpr, outer: &[Rc<Schema>]) {
        match plan {
            RelExpr::Scan { table, .. } => {
                self.report.checks += 1;
                if self.provider.table_schema(table).is_err() {
                    self.report.violations.push(Violation::UnknownTable {
                        table: table.clone(),
                    });
                }
            }
            RelExpr::Values { schema, rows } => {
                for row in rows {
                    self.report.checks += 1;
                    if row.len() != schema.len() {
                        self.report.violations.push(Violation::ValuesArityMismatch {
                            expected: schema.len(),
                            found: row.len(),
                        });
                        break;
                    }
                }
            }
            RelExpr::Union { left, right, .. } => {
                if let (Some(l), Some(r)) = (self.schema_of(left), self.schema_of(right)) {
                    self.report.checks += 1;
                    if l.len() != r.len() {
                        self.report.violations.push(Violation::UnionArityMismatch {
                            left: l.len(),
                            right: r.len(),
                        });
                    } else {
                        for i in 0..l.len() {
                            self.report.checks += 1;
                            let (lt, rt) = (l.column(i).data_type, r.column(i).data_type);
                            if lt.unify(rt).is_err() {
                                self.report.violations.push(Violation::UnionTypeMismatch {
                                    position: i,
                                    left: lt,
                                    right: rt,
                                });
                            }
                        }
                    }
                }
            }
            RelExpr::Aggregate { aggregates, .. } => {
                for a in aggregates {
                    if let AggFunc::UserDefined(name) = &a.func {
                        self.report.checks += 1;
                        if !self.registry.has_aggregate(name)
                            && self.provider.udf_return_type(name).is_none()
                        {
                            self.report
                                .violations
                                .push(Violation::UnknownAggregate { name: name.clone() });
                        }
                    }
                }
            }
            RelExpr::Apply {
                right, bindings, ..
            } => {
                let consumed = free_params(right);
                for b in bindings {
                    self.report.checks += 1;
                    if !consumed.contains(&b.param) {
                        self.report.violations.push(Violation::UnconsumedBinding {
                            param: b.param.clone(),
                            operator: plan.name(),
                        });
                    }
                }
            }
            _ => {}
        }

        let visible = self.visible_schema(plan);
        plan.for_each_expr(&mut |e| self.check_expr(e, visible.as_ref(), outer, plan.name()));

        // Recurse, threading the left schema as an outer scope into correlated
        // subtrees: Apply-family right sides and conditional branches may reference
        // the outer relation's columns directly.
        match plan {
            RelExpr::Apply { left, right, .. } | RelExpr::ApplyMerge { left, right, .. } => {
                self.check_plan(left, outer);
                let mut inner = outer.to_vec();
                if let Some(l) = self.schema_of(left) {
                    inner.push(l);
                }
                self.check_plan(right, &inner);
            }
            RelExpr::ConditionalApplyMerge {
                left,
                then_branch,
                else_branch,
                ..
            } => {
                self.check_plan(left, outer);
                let mut inner = outer.to_vec();
                if let Some(l) = self.schema_of(left) {
                    inner.push(l);
                }
                self.check_plan(then_branch, &inner);
                self.check_plan(else_branch, &inner);
            }
            other => {
                other.for_each_child(&mut |c| self.check_plan(c, outer));
            }
        }
    }

    fn resolves(&self, c: &ColumnRef, visible: &Schema, outer: &[Rc<Schema>]) -> bool {
        visible.find(c.qualifier.as_deref(), &c.name).is_some()
            || outer
                .iter()
                .rev()
                .any(|s| s.find(c.qualifier.as_deref(), &c.name).is_some())
    }

    fn check_expr(
        &mut self,
        expr: &ScalarExpr,
        visible: Option<&Rc<Schema>>,
        outer: &[Rc<Schema>],
        operator: &'static str,
    ) {
        match expr {
            ScalarExpr::Column(c) => {
                if let Some(vis) = visible {
                    self.report.checks += 1;
                    if !self.resolves(c, vis, outer) {
                        self.report.violations.push(Violation::UnresolvedColumn {
                            column: c.to_string(),
                            operator,
                        });
                    }
                }
            }
            ScalarExpr::UdfCall { name, args } => {
                self.report.checks += 1;
                if !self.registry.has_udf(name) && self.provider.udf_return_type(name).is_none() {
                    self.report
                        .violations
                        .push(Violation::UnknownFunction { name: name.clone() });
                }
                for a in args {
                    self.check_expr(a, visible, outer, operator);
                }
            }
            ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => {
                let mut inner = outer.to_vec();
                if let Some(vis) = visible {
                    inner.push(Rc::clone(vis));
                }
                self.check_plan(q, &inner);
            }
            ScalarExpr::InSubquery { expr, subquery, .. } => {
                self.check_expr(expr, visible, outer, operator);
                let mut inner = outer.to_vec();
                if let Some(vis) = visible {
                    inner.push(Rc::clone(vis));
                }
                self.check_plan(subquery, &inner);
            }
            other => {
                other.for_each_child(&mut |c| self.check_expr(c, visible, outer, operator));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::{
        AggCall, ApplyKind, JoinKind, MapProvider, ParamBinding, ProjectItem, ScalarExpr as E,
    };
    use decorr_common::{Column, Value};

    fn provider() -> MapProvider {
        MapProvider::new()
            .with_table(
                "customer",
                Schema::new(vec![
                    Column::new("custkey", DataType::Int),
                    Column::new("name", DataType::Str),
                ]),
            )
            .with_table(
                "orders",
                Schema::new(vec![
                    Column::new("orderkey", DataType::Int),
                    Column::new("custkey", DataType::Int),
                    Column::new("totalprice", DataType::Float),
                ]),
            )
    }

    fn run(plan: &RelExpr) -> ValidationReport {
        validate_plan(plan, &provider(), &FunctionRegistry::new())
    }

    #[test]
    fn well_formed_query_is_clean() {
        let plan = RelExpr::Select {
            input: Box::new(RelExpr::scan("orders")),
            predicate: E::gt(E::column("totalprice"), E::literal(100)),
        };
        let report = run(&plan);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.checks >= 2, "scan + column resolution counted");
    }

    #[test]
    fn unknown_table_is_flagged_once() {
        let plan = RelExpr::Select {
            input: Box::new(RelExpr::scan("nosuch")),
            predicate: E::gt(E::column("totalprice"), E::literal(100)),
        };
        let report = run(&plan);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].name(), "unknown-table");
    }

    #[test]
    fn dangling_column_is_flagged_with_operator() {
        let plan = RelExpr::Project {
            input: Box::new(RelExpr::scan("orders")),
            items: vec![ProjectItem::new(E::column("no_such_col"))],
            distinct: false,
        };
        let report = run(&plan);
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0] {
            Violation::UnresolvedColumn { column, operator } => {
                assert_eq!(column, "no_such_col");
                assert_eq!(*operator, "Project");
            }
            other => panic!("expected unresolved-column, got {other:?}"),
        }
    }

    #[test]
    fn correlated_subquery_resolves_through_outer_scope() {
        // select * from customer c where exists(select * from orders o
        //                                       where o.custkey = c.custkey)
        let subquery = RelExpr::Select {
            input: Box::new(RelExpr::scan_as("orders", "o")),
            predicate: E::eq(
                E::qualified_column("o", "custkey"),
                E::qualified_column("c", "custkey"),
            ),
        };
        let plan = RelExpr::Select {
            input: Box::new(RelExpr::scan_as("customer", "c")),
            predicate: E::Exists(Box::new(subquery)),
        };
        assert!(run(&plan).is_clean());
    }

    #[test]
    fn truly_free_column_in_subquery_is_flagged() {
        let subquery = RelExpr::Select {
            input: Box::new(RelExpr::scan_as("orders", "o")),
            predicate: E::eq(
                E::qualified_column("o", "custkey"),
                E::qualified_column("zz", "custkey"),
            ),
        };
        let plan = RelExpr::Select {
            input: Box::new(RelExpr::scan_as("customer", "c")),
            predicate: E::Exists(Box::new(subquery)),
        };
        let report = run(&plan);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].name(), "unresolved-column");
    }

    #[test]
    fn union_arity_and_type_mismatches() {
        let two_cols = RelExpr::Project {
            input: Box::new(RelExpr::scan("customer")),
            items: vec![
                ProjectItem::new(E::column("custkey")),
                ProjectItem::new(E::column("name")),
            ],
            distinct: false,
        };
        let one_col = RelExpr::Project {
            input: Box::new(RelExpr::scan("orders")),
            items: vec![ProjectItem::new(E::column("orderkey"))],
            distinct: false,
        };
        let arity = RelExpr::Union {
            left: Box::new(two_cols.clone()),
            right: Box::new(one_col),
            all: true,
        };
        let report = run(&arity);
        assert_eq!(report.violations[0].name(), "union-arity-mismatch");

        let int_then_str = RelExpr::Project {
            input: Box::new(RelExpr::scan("orders")),
            items: vec![
                ProjectItem::new(E::column("orderkey")),
                ProjectItem::aliased(E::column("orderkey"), "n"),
            ],
            distinct: false,
        };
        let types = RelExpr::Union {
            left: Box::new(two_cols),
            right: Box::new(int_then_str),
            all: true,
        };
        let report = run(&types);
        // Column 0 unifies (int/int); column 1 pairs str with int.
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0] {
            Violation::UnionTypeMismatch { position, .. } => assert_eq!(*position, 1),
            other => panic!("expected union-type-mismatch, got {other:?}"),
        }
    }

    #[test]
    fn values_row_arity_mismatch() {
        let plan = RelExpr::Values {
            schema: Schema::new(vec![Column::new("a", DataType::Int)]),
            rows: vec![vec![Value::Int(1), Value::Int(2)]],
        };
        let report = run(&plan);
        assert_eq!(report.violations[0].name(), "values-arity-mismatch");
    }

    #[test]
    fn unconsumed_apply_binding_is_flagged() {
        let consumed = RelExpr::Apply {
            left: Box::new(RelExpr::scan_as("customer", "c")),
            right: Box::new(RelExpr::Project {
                input: Box::new(RelExpr::Single),
                items: vec![ProjectItem::aliased(E::param("ckey"), "retval")],
                distinct: false,
            }),
            kind: ApplyKind::Cross,
            bindings: vec![ParamBinding::new(
                "ckey",
                E::qualified_column("c", "custkey"),
            )],
        };
        assert!(run(&consumed).is_clean());

        let dangling = RelExpr::Apply {
            left: Box::new(RelExpr::scan_as("customer", "c")),
            right: Box::new(RelExpr::scan("orders")),
            kind: ApplyKind::Cross,
            bindings: vec![ParamBinding::new(
                "ckey",
                E::qualified_column("c", "custkey"),
            )],
        };
        let report = run(&dangling);
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0] {
            Violation::UnconsumedBinding { param, .. } => assert_eq!(param, "ckey"),
            other => panic!("expected unconsumed-binding, got {other:?}"),
        }
    }

    #[test]
    fn unknown_function_and_aggregate_are_flagged() {
        let call = RelExpr::Project {
            input: Box::new(RelExpr::scan("orders")),
            items: vec![ProjectItem::new(E::udf(
                "no_such_fn",
                vec![E::column("orderkey")],
            ))],
            distinct: false,
        };
        let report = run(&call);
        assert_eq!(report.violations[0].name(), "unknown-function");
        // A provider that knows the return type (e.g. the optimizer's layered
        // aux-aggregate provider) resolves the name without a registry entry.
        let knows = provider().with_udf("no_such_fn", DataType::Int);
        assert!(validate_plan(&call, &knows, &FunctionRegistry::new()).is_clean());

        let agg = RelExpr::Aggregate {
            input: Box::new(RelExpr::scan("orders")),
            group_by: vec![],
            aggregates: vec![AggCall::new(
                AggFunc::UserDefined("no_such_agg".into()),
                vec![E::column("totalprice")],
                "v",
            )],
        };
        let report = run(&agg);
        assert_eq!(report.violations[0].name(), "unknown-aggregate");
    }

    #[test]
    fn aggregate_argument_out_of_scope_is_flagged() {
        let plan = RelExpr::Aggregate {
            input: Box::new(RelExpr::scan("orders")),
            group_by: vec![],
            aggregates: vec![AggCall::new(AggFunc::Sum, vec![E::column("nope")], "v")],
        };
        let report = run(&plan);
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0] {
            Violation::UnresolvedColumn { operator, .. } => assert_eq!(*operator, "Aggregate"),
            other => panic!("expected unresolved-column, got {other:?}"),
        }
    }

    #[test]
    fn free_params_are_tolerated() {
        // A UDF body fragment: its formal parameter is free in the plan.
        let plan = RelExpr::Select {
            input: Box::new(RelExpr::scan("orders")),
            predicate: E::eq(E::column("custkey"), E::param("ckey")),
        };
        assert!(run(&plan).is_clean());
    }

    #[test]
    fn join_resolves_against_both_sides() {
        let plan = RelExpr::Join {
            left: Box::new(RelExpr::scan_as("customer", "c")),
            right: Box::new(RelExpr::scan_as("orders", "o")),
            kind: JoinKind::Inner,
            condition: Some(E::eq(
                E::qualified_column("c", "custkey"),
                E::qualified_column("o", "custkey"),
            )),
        };
        assert!(run(&plan).is_clean());
    }

    #[test]
    fn residual_apply_detection() {
        let apply = RelExpr::Apply {
            left: Box::new(RelExpr::scan("customer")),
            right: Box::new(RelExpr::Single),
            kind: ApplyKind::Cross,
            bindings: vec![],
        };
        let found = check_decorrelated(&apply);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name(), "residual-apply");
        assert!(check_decorrelated(&RelExpr::scan("customer")).is_empty());
        // Buried inside a scalar subquery still counts.
        let buried = RelExpr::Select {
            input: Box::new(RelExpr::scan("customer")),
            predicate: E::Exists(Box::new(apply)),
        };
        assert_eq!(check_decorrelated(&buried).len(), 1);
    }

    #[test]
    fn catalog_convenience_signature() {
        let mut catalog = Catalog::new();
        catalog
            .create_table("t", Schema::new(vec![Column::new("x", DataType::Int)]))
            .unwrap();
        let registry = FunctionRegistry::new();
        let ok = RelExpr::Select {
            input: Box::new(RelExpr::scan("t")),
            predicate: E::gt(E::column("x"), E::literal(0)),
        };
        assert!(validate(&ok, &catalog, &registry).is_empty());
        let bad = RelExpr::scan("missing");
        assert_eq!(validate(&bad, &catalog, &registry).len(), 1);
    }

    #[test]
    fn violation_display_names_the_problem() {
        let v = Violation::UnresolvedColumn {
            column: "o.custkey".into(),
            operator: "select",
        };
        let text = v.to_string();
        assert!(text.contains("o.custkey") && text.contains("select"));
        assert_eq!(
            Violation::ResidualApply { operator: "apply" }.name(),
            "residual-apply"
        );
    }
}
