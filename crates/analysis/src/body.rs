//! Transitive UDF body analysis.
//!
//! [`analyze_body`] generalizes `decorr_udf::analysis::table_reads` from a single
//! body to the *transitive closure* over called UDFs: the facts of a function are
//! the union of the facts of everything it can reach through [`UdfCall`]s, resolved
//! against a [`FunctionRegistry`] with a visited set so mutually recursive
//! definitions terminate. The engine consumes the result twice:
//!
//! * at **registration** — a function declared `DETERMINISTIC` whose body
//!   (transitively) calls a `VOLATILE` function is rejected with a diagnostic, and a
//!   function whose purity was merely defaulted is silently downgraded to volatile;
//! * at **memo-epoch construction** — a body with an [exact](BodyFacts::reads_exact)
//!   read set is invalidated per *table set* (any of its tables changing moves the
//!   epoch) instead of on the catalog-wide data generation.
//!
//! [`UdfCall`]: decorr_algebra::ScalarExpr::UdfCall

use std::collections::BTreeSet;

use decorr_algebra::{RelExpr, ScalarExpr};
use decorr_common::normalize_ident;
use decorr_udf::{FunctionRegistry, Statement, UdfDefinition};

/// Inferred volatility of a UDF body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purity {
    /// Every construct reachable from the body is deterministic: all callees are
    /// registered and pure. Safe to deduplicate and memoize.
    Pure,
    /// The body calls at least one function that is not (yet) registered, so its
    /// volatility cannot be inferred. Callers must not *reject* on this, but must
    /// also not strengthen the declared contract.
    Unknown,
    /// The body (transitively) calls a function registered as volatile.
    Volatile,
}

/// Facts inferred from a UDF body, transitively through called UDFs.
#[derive(Debug, Clone, PartialEq)]
pub struct BodyFacts {
    /// Inferred volatility (see [`Purity`]).
    pub purity: Purity,
    /// Every catalog table the body can read, directly or through any reachable
    /// callee's body (normalized names). Exact only when [`reads_exact`] holds.
    ///
    /// [`reads_exact`]: BodyFacts::reads_exact
    pub table_reads: BTreeSet<String>,
    /// Called UDF names in first-encounter order (direct calls first, then callees'
    /// calls), deduplicated and normalized.
    pub calls: Vec<String>,
    /// True when the body — or any reachable callee's body — executes a SQL query
    /// (`SELECT INTO`, a cursor loop, or a subquery inside an expression).
    pub has_subquery: bool,
    /// True when [`table_reads`](BodyFacts::table_reads) is provably the complete
    /// read set: every reachable callee is registered, so no unregistered body can
    /// hide additional reads. When false, callers must fall back to catalog-wide
    /// invalidation.
    pub reads_exact: bool,
    /// Names of reachable callees registered as volatile — the witnesses behind
    /// [`Purity::Volatile`], used in registration diagnostics.
    pub volatile_calls: Vec<String>,
}

/// Analyzes a UDF definition against a registry (see the [module docs](self)).
///
/// The definition itself does not need to be registered; its *callees* are resolved
/// in `registry`. The root's own declared volatility is deliberately ignored — the
/// result describes what the body *does*, for the caller to compare against what was
/// declared.
pub fn analyze_body(udf: &UdfDefinition, registry: &FunctionRegistry) -> BodyFacts {
    analyze_statements(&udf.body, registry)
}

/// Analyzes a raw statement list (the body of a UDF) against a registry.
pub fn analyze_statements(body: &[Statement], registry: &FunctionRegistry) -> BodyFacts {
    let mut facts = BodyFacts {
        purity: Purity::Pure,
        table_reads: BTreeSet::new(),
        calls: vec![],
        has_subquery: false,
        reads_exact: true,
        volatile_calls: vec![],
    };
    let mut direct = Direct::default();
    for stmt in body {
        direct.statement(stmt);
    }
    facts.table_reads.extend(direct.tables);
    facts.has_subquery |= direct.has_subquery;

    // Worklist over callees with a visited set: cycles (f calls g calls f) terminate
    // because each name is expanded at most once.
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut pending = direct.calls;
    while let Some(name) = pending.pop_front() {
        if !visited.insert(name.clone()) {
            continue;
        }
        facts.calls.push(name.clone());
        match registry.udf(&name) {
            Ok(callee) => {
                if !callee.pure {
                    facts.purity = Purity::Volatile;
                    facts.volatile_calls.push(name.clone());
                }
                let mut d = Direct::default();
                for stmt in &callee.body {
                    d.statement(stmt);
                }
                facts.table_reads.extend(d.tables);
                facts.has_subquery |= d.has_subquery;
                pending.extend(d.calls);
            }
            Err(_) => {
                // An unregistered callee may read anything and do anything.
                facts.reads_exact = false;
                if facts.purity == Purity::Pure {
                    facts.purity = Purity::Unknown;
                }
            }
        }
    }
    facts
}

/// Direct (non-transitive) facts of one statement list.
#[derive(Default)]
struct Direct {
    tables: BTreeSet<String>,
    calls: std::collections::VecDeque<String>,
    has_subquery: bool,
}

impl Direct {
    fn statement(&mut self, stmt: &Statement) {
        match stmt {
            Statement::Declare { init, .. } => {
                if let Some(e) = init {
                    self.expr(e);
                }
            }
            Statement::Assign { expr, .. } => self.expr(expr),
            Statement::SelectInto { query, .. } => {
                self.has_subquery = true;
                self.plan(query);
            }
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                self.expr(condition);
                for s in then_branch.iter().chain(else_branch) {
                    self.statement(s);
                }
            }
            Statement::CursorLoop { query, body, .. } => {
                self.has_subquery = true;
                self.plan(query);
                for s in body {
                    self.statement(s);
                }
            }
            Statement::While { condition, body } => {
                self.expr(condition);
                for s in body {
                    self.statement(s);
                }
            }
            Statement::InsertIntoResult { values } => {
                for v in values {
                    self.expr(v);
                }
            }
            Statement::Return { expr } => {
                if let Some(e) = expr {
                    self.expr(e);
                }
            }
        }
    }

    fn plan(&mut self, plan: &RelExpr) {
        if let RelExpr::Scan { table, .. } = plan {
            self.tables.insert(normalize_ident(table));
        }
        for e in plan.expressions() {
            self.expr(e);
        }
        for c in plan.children() {
            self.plan(c);
        }
    }

    fn expr(&mut self, expr: &ScalarExpr) {
        match expr {
            ScalarExpr::UdfCall { name, args } => {
                self.calls.push_back(normalize_ident(name));
                for a in args {
                    self.expr(a);
                }
            }
            ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => {
                self.has_subquery = true;
                self.plan(q);
            }
            ScalarExpr::InSubquery { expr, subquery, .. } => {
                self.has_subquery = true;
                self.expr(expr);
                self.plan(subquery);
            }
            other => {
                for c in other.children() {
                    self.expr(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::ScalarExpr as E;
    use decorr_common::DataType;
    use decorr_udf::UdfParameter;

    fn udf(name: &str, body: Vec<Statement>) -> UdfDefinition {
        UdfDefinition::new(
            name,
            vec![UdfParameter::new("x", DataType::Int)],
            DataType::Int,
            body,
        )
    }

    fn returning(expr: ScalarExpr) -> Vec<Statement> {
        vec![Statement::Return { expr: Some(expr) }]
    }

    fn select_into(table: &str) -> Statement {
        Statement::SelectInto {
            query: RelExpr::scan(table),
            targets: vec!["v".into()],
        }
    }

    #[test]
    fn pure_arithmetic_body_has_empty_exact_reads() {
        let f = udf("f", returning(E::param("x")));
        let facts = analyze_body(&f, &FunctionRegistry::new());
        assert_eq!(facts.purity, Purity::Pure);
        assert!(facts.table_reads.is_empty());
        assert!(facts.reads_exact);
        assert!(!facts.has_subquery);
        assert!(facts.calls.is_empty());
    }

    #[test]
    fn direct_reads_are_collected() {
        let f = udf(
            "f",
            vec![select_into("orders"), Statement::Return { expr: None }],
        );
        let facts = analyze_body(&f, &FunctionRegistry::new());
        assert_eq!(
            facts.table_reads,
            ["orders".to_string()].into_iter().collect()
        );
        assert!(facts.has_subquery);
        assert!(facts.reads_exact);
    }

    #[test]
    fn callee_reads_are_merged_transitively() {
        // f calls g; g reads lineitem; f itself reads orders.
        let mut registry = FunctionRegistry::new();
        registry.register_udf(udf(
            "g",
            vec![select_into("lineitem"), Statement::Return { expr: None }],
        ));
        let f = udf(
            "f",
            vec![
                select_into("orders"),
                Statement::Return {
                    expr: Some(E::udf("g", vec![E::param("x")])),
                },
            ],
        );
        let facts = analyze_body(&f, &registry);
        assert_eq!(facts.purity, Purity::Pure);
        assert!(facts.reads_exact);
        assert_eq!(facts.calls, vec!["g".to_string()]);
        let expected: BTreeSet<String> = ["orders".to_string(), "lineitem".to_string()].into();
        assert_eq!(facts.table_reads, expected);
    }

    #[test]
    fn volatile_callee_makes_purity_volatile_transitively() {
        // f calls g, g calls v, v is volatile — two hops away.
        let mut registry = FunctionRegistry::new();
        let mut v = udf("v", returning(E::param("x")));
        v.pure = false;
        registry.register_udf(v);
        registry.register_udf(udf("g", returning(E::udf("v", vec![E::param("x")]))));
        let f = udf("f", returning(E::udf("g", vec![E::param("x")])));
        let facts = analyze_body(&f, &registry);
        assert_eq!(facts.purity, Purity::Volatile);
        assert_eq!(facts.volatile_calls, vec!["v".to_string()]);
        assert_eq!(facts.calls, vec!["g".to_string(), "v".to_string()]);
    }

    #[test]
    fn unknown_callee_is_unknown_purity_and_inexact_reads() {
        let f = udf("f", returning(E::udf("mystery", vec![E::param("x")])));
        let facts = analyze_body(&f, &FunctionRegistry::new());
        assert_eq!(facts.purity, Purity::Unknown);
        assert!(!facts.reads_exact);
        assert_eq!(facts.calls, vec!["mystery".to_string()]);
    }

    #[test]
    fn mutual_recursion_terminates() {
        let mut registry = FunctionRegistry::new();
        registry.register_udf(udf("a", returning(E::udf("b", vec![E::param("x")]))));
        registry.register_udf(udf(
            "b",
            vec![
                select_into("orders"),
                Statement::Return {
                    expr: Some(E::udf("a", vec![E::param("x")])),
                },
            ],
        ));
        let a = registry.udf("a").unwrap().clone();
        let facts = analyze_body(&a, &registry);
        assert_eq!(facts.purity, Purity::Pure);
        assert!(facts.reads_exact);
        assert_eq!(
            facts.table_reads,
            ["orders".to_string()].into_iter().collect()
        );
        // Both names appear once despite the cycle.
        assert_eq!(facts.calls, vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn subquery_inside_expression_counts_and_reads() {
        let body = returning(E::ScalarSubquery(Box::new(RelExpr::scan("probes"))));
        let facts = analyze_statements(&body, &FunctionRegistry::new());
        assert!(facts.has_subquery);
        assert_eq!(
            facts.table_reads,
            ["probes".to_string()].into_iter().collect()
        );
    }
}
