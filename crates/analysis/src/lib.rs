//! Static analysis for the decorrelation engine: plan validation and UDF body facts.
//!
//! The decorrelation rewrites of the paper are only sound while two things remain
//! true: the plans they emit stay *well-formed* (every column reference resolves,
//! operator schemas are consistent bottom-up, Apply bindings are actually consumed),
//! and the UDFs they hoist are *actually* pure — not just declared so at
//! `CREATE FUNCTION` time. Neither property is guaranteed by construction, so this
//! crate checks both statically:
//!
//! * [`validate()`] / [`validate_plan`] — a structural [plan validator](mod@validate) run by
//!   `optimizer::PassManager` after every pass (behind
//!   `PassManagerOptions::validate_plans`), turning a buggy rewrite rule into a
//!   named-violation pipeline error instead of a silent wrong answer;
//! * [`analyze_body`] — a [UDF body analyzer](body) that infers [`BodyFacts`]
//!   (purity, transitive table read set, callee list, subquery use) cycle-safely
//!   through called UDFs, backing both registration-time purity diagnostics and
//!   per-table-set memo invalidation in the engine.
//!
//! The crate is dependency-free (only workspace crates below the optimizer) so every
//! layer — rewrite rules, optimizer, engine, tests — can call it without cycles.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod body;
pub mod validate;

pub use body::{analyze_body, analyze_statements, BodyFacts, Purity};
pub use validate::{check_decorrelated, validate, validate_plan, ValidationReport, Violation};
