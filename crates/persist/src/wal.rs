//! Write-ahead log of logical write operations between checkpoints.
//!
//! Each record frames one engine write (INSERT / DDL / ANALYZE / `CREATE FUNCTION` /
//! placement change) as: sequence number, payload length, an FNV-1a checksum over
//! sequence + payload, then the payload bytes. The engine appends from inside its
//! writer critical section, so record order matches the epoch-swap order readers
//! observe.
//!
//! Recovery tolerates a torn tail: [`WalWriter::open`] replays the longest prefix of
//! records whose framing, checksum and sequence all verify, truncates the file back
//! to that prefix, and reports whether anything was discarded. After a successful
//! checkpoint the engine calls [`WalWriter::reset`] — the snapshot now covers
//! everything the log held.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use decorr_common::{Error, FnvHasher, Result, Row};
use decorr_stats::AnalyzeConfig;

use crate::encode::{ByteReader, ByteWriter};
use crate::snapshot::ColumnDef;

/// File name of the write-ahead log inside a `data_dir`.
pub const WAL_FILE: &str = "wal.log";

/// Bytes of framing before each record's payload: seq (8) + len (4) + checksum (8).
const FRAME_BYTES: usize = 20;

/// One logged engine write, in logical (replayable) form. Replay drives the same
/// engine entry points the original statements did, so normalization, validation and
/// shard routing are identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE name (columns…)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions, unqualified.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// Rows appended to one table (already materialized to full-width rows).
    Insert {
        /// Target table.
        table: String,
        /// The inserted rows, in insertion order.
        rows: Vec<Row>,
    },
    /// `CREATE INDEX ON table (column)`.
    CreateIndex {
        /// Target table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `ANALYZE [table]` with the engine's analyze configuration at the time.
    Analyze {
        /// The analyzed table, or `None` for all tables.
        table: Option<String>,
        /// Sampling configuration the run used.
        config: AnalyzeConfig,
    },
    /// `CREATE FUNCTION …` — the full source text, replayed through the parser.
    CreateFunction {
        /// Original SQL source.
        source: String,
    },
    /// A per-table placement switch (`Catalog::set_table_placement`).
    SetPlacement {
        /// Target table.
        table: String,
        /// True for `Hash`, false for `AppendToLast`.
        hash_policy: bool,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            WalRecord::CreateTable { name, columns } => {
                w.put_u8(0);
                w.put_str(name);
                w.put_u32(columns.len() as u32);
                for c in columns {
                    w.put_str(&c.name);
                    w.put_data_type(c.data_type);
                    w.put_bool(c.nullable);
                }
            }
            WalRecord::DropTable { name } => {
                w.put_u8(1);
                w.put_str(name);
            }
            WalRecord::Insert { table, rows } => {
                w.put_u8(2);
                w.put_str(table);
                w.put_u64(rows.len() as u64);
                for row in rows {
                    w.put_row(row);
                }
            }
            WalRecord::CreateIndex { table, column } => {
                w.put_u8(3);
                w.put_str(table);
                w.put_str(column);
            }
            WalRecord::Analyze { table, config } => {
                w.put_u8(4);
                w.put_option(table.as_ref(), |w, t: &String| w.put_str(t));
                w.put_usize(config.sample_size);
                w.put_usize(config.histogram_buckets);
                w.put_usize(config.mcv_count);
                w.put_u64(config.seed);
            }
            WalRecord::CreateFunction { source } => {
                w.put_u8(5);
                w.put_str(source);
            }
            WalRecord::SetPlacement { table, hash_policy } => {
                w.put_u8(6);
                w.put_str(table);
                w.put_bool(*hash_policy);
            }
        }
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<WalRecord> {
        let mut r = ByteReader::new(bytes);
        let record = match r.get_u8()? {
            0 => {
                let name = r.get_str()?;
                let n = r.get_u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    columns.push(ColumnDef {
                        name: r.get_str()?,
                        data_type: r.get_data_type()?,
                        nullable: r.get_bool()?,
                    });
                }
                WalRecord::CreateTable { name, columns }
            }
            1 => WalRecord::DropTable { name: r.get_str()? },
            2 => {
                let table = r.get_str()?;
                let n = r.get_usize()?;
                let mut rows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    rows.push(r.get_row()?);
                }
                WalRecord::Insert { table, rows }
            }
            3 => WalRecord::CreateIndex {
                table: r.get_str()?,
                column: r.get_str()?,
            },
            4 => {
                let table = r.get_option(|r| r.get_str())?;
                let config = AnalyzeConfig {
                    sample_size: r.get_usize()?,
                    histogram_buckets: r.get_usize()?,
                    mcv_count: r.get_usize()?,
                    seed: r.get_u64()?,
                };
                WalRecord::Analyze { table, config }
            }
            5 => WalRecord::CreateFunction {
                source: r.get_str()?,
            },
            6 => WalRecord::SetPlacement {
                table: r.get_str()?,
                hash_policy: r.get_bool()?,
            },
            tag => return Err(Error::Persist(format!("invalid WAL record tag {tag}"))),
        };
        if !r.is_empty() {
            return Err(Error::Persist(format!(
                "WAL record has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(record)
    }
}

/// Outcome of opening a WAL: the valid records, plus whether a torn/corrupt tail was
/// discarded.
#[derive(Debug)]
pub struct WalRecovery {
    /// Records of the longest valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// True when bytes past the valid prefix were discarded (torn tail).
    pub truncated: bool,
}

/// Appender over a `data_dir`'s write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
    records_appended: u64,
    bytes_appended: u64,
}

impl WalWriter {
    /// Opens (creating if needed) the WAL in `dir`, recovering existing records
    /// first. The longest valid prefix is returned for replay; anything after it —
    /// a torn frame, a checksum mismatch, an out-of-order sequence number — is
    /// truncated away so subsequent appends extend a clean log.
    pub fn open(dir: &Path) -> Result<(WalWriter, WalRecovery)> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Persist(format!("cannot create data dir {dir:?}: {e}")))?;
        let path = dir.join(WAL_FILE);
        let existing = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(Error::Persist(format!("cannot read WAL {path:?}: {e}"))),
        };
        let (records, valid_len) = scan_valid_prefix(&existing);
        let truncated = valid_len < existing.len();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::Persist(format!("cannot open WAL {path:?}: {e}")))?;
        if truncated {
            file.set_len(valid_len as u64)
                .map_err(|e| Error::Persist(format!("cannot truncate torn WAL tail: {e}")))?;
        }
        let writer = WalWriter {
            file,
            path,
            next_seq: records.len() as u64 + 1,
            records_appended: 0,
            bytes_appended: 0,
        };
        Ok((writer, WalRecovery { records, truncated }))
    }

    /// Appends one record, returning the bytes written (framing included).
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(FRAME_BYTES + payload.len());
        frame.extend_from_slice(&self.next_seq.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut hasher = FnvHasher::new();
        hasher.write_u64(self.next_seq);
        hasher.write_bytes(&payload);
        frame.extend_from_slice(&hasher.finish().to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| Error::Persist(format!("cannot append to WAL {:?}: {e}", self.path)))?;
        self.next_seq += 1;
        self.records_appended += 1;
        self.bytes_appended += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Truncates the log to empty — called after a successful checkpoint, which now
    /// covers everything the log held. Sequence numbering restarts at 1.
    pub fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| Error::Persist(format!("cannot reset WAL {:?}: {e}", self.path)))?;
        self.next_seq = 1;
        Ok(())
    }

    /// Records appended through this writer (since open).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Bytes appended through this writer (since open), framing included.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }
}

/// Walks the raw log, returning the decoded records of the longest valid prefix and
/// its byte length. Stops — without erroring — at the first torn frame, checksum
/// mismatch, sequence gap or undecodable payload.
fn scan_valid_prefix(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = 1u64;
    while bytes.len() - pos >= FRAME_BYTES {
        let seq = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        let len =
            u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes")) as usize;
        let stored = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("8 bytes"));
        if seq != expected_seq || bytes.len() - pos - FRAME_BYTES < len {
            break;
        }
        let payload = &bytes[pos + FRAME_BYTES..pos + FRAME_BYTES + len];
        let mut hasher = FnvHasher::new();
        hasher.write_u64(seq);
        hasher.write_bytes(payload);
        if hasher.finish() != stored {
            break;
        }
        match WalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(_) => break,
        }
        pos += FRAME_BYTES + len;
        expected_seq += 1;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{DataType, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("decorr_wal_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                columns: vec![ColumnDef {
                    name: "k".into(),
                    data_type: DataType::Int,
                    nullable: false,
                }],
            },
            WalRecord::Insert {
                table: "t".into(),
                rows: vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])],
            },
            WalRecord::CreateIndex {
                table: "t".into(),
                column: "k".into(),
            },
            WalRecord::Analyze {
                table: Some("t".into()),
                config: AnalyzeConfig::default(),
            },
            WalRecord::CreateFunction {
                source: "create function f(x int) returns int as x".into(),
            },
            WalRecord::SetPlacement {
                table: "t".into(),
                hash_policy: true,
            },
            WalRecord::DropTable { name: "t".into() },
            WalRecord::Analyze {
                table: None,
                config: AnalyzeConfig::default(),
            },
        ]
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmp_dir("replay");
        let (mut w, recovery) = WalWriter::open(&dir).unwrap();
        assert!(recovery.records.is_empty());
        assert!(!recovery.truncated);
        let records = sample_records();
        for r in &records {
            assert!(w.append(r).unwrap() > FRAME_BYTES as u64);
        }
        assert_eq!(w.records_appended(), records.len() as u64);
        assert!(w.bytes_appended() > 0);
        drop(w);
        let (_, recovery) = WalWriter::open(&dir).unwrap();
        assert_eq!(recovery.records, records);
        assert!(!recovery.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_and_log_stays_appendable() {
        let dir = tmp_dir("torn");
        let (mut w, _) = WalWriter::open(&dir).unwrap();
        let records = sample_records();
        for r in &records {
            w.append(r).unwrap();
        }
        drop(w);
        // Tear the last record: chop a few bytes off the file.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut w, recovery) = WalWriter::open(&dir).unwrap();
        assert!(recovery.truncated, "torn tail must be reported");
        assert_eq!(recovery.records, records[..records.len() - 1]);
        // The log accepts new appends after recovery, and they replay cleanly.
        w.append(records.last().unwrap()).unwrap();
        drop(w);
        let (_, recovery) = WalWriter::open(&dir).unwrap();
        assert_eq!(recovery.records, records);
        assert!(!recovery.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_valid() {
        let dir = tmp_dir("corrupt");
        let (mut w, _) = WalWriter::open(&dir).unwrap();
        let records = sample_records();
        for r in &records {
            w.append(r).unwrap();
        }
        drop(w);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte near the middle of the file: replay stops at the record
        // boundary before it, keeping a strict prefix.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recovery) = WalWriter::open(&dir).unwrap();
        assert!(recovery.truncated);
        assert!(recovery.records.len() < records.len());
        assert_eq!(recovery.records[..], records[..recovery.records.len()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_empties_the_log_and_restarts_sequencing() {
        let dir = tmp_dir("reset");
        let (mut w, _) = WalWriter::open(&dir).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        w.reset().unwrap();
        let one = WalRecord::DropTable { name: "x".into() };
        w.append(&one).unwrap();
        drop(w);
        let (_, recovery) = WalWriter::open(&dir).unwrap();
        assert_eq!(recovery.records, vec![one]);
        assert!(!recovery.truncated, "post-reset log is clean");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
