//! Durable engine state: snapshots + write-ahead log.
//!
//! Everything the engine learns — table data, per-shard layout, `ANALYZE` statistics
//! and the feedback store's measured UDF costs — normally dies with the process. This
//! crate is the durability layer under the whole stack, dependency-free like the rest
//! of the workspace:
//!
//! * [`snapshot`] — a versioned, checksummed binary image of the full engine state
//!   ([`Snapshot`]), with atomic write-tmp-then-rename checkpointing ([`Snapshot::save`])
//!   and corruption-rejecting load ([`Snapshot::load`]);
//! * [`wal`] — a write-ahead log of the logical write operations between checkpoints
//!   ([`WalRecord`]), appended by the engine's clone-mutate-swap writer path, truncated
//!   after each successful checkpoint, and recovered with a torn-tail policy that
//!   replays the longest valid prefix ([`WalWriter::open`]);
//! * [`encode`] — the little-endian byte codec both share. Floats travel as IEEE bit
//!   patterns, so a restored engine answers queries byte-identically.
//!
//! The crate deliberately knows nothing about `Engine`, `Catalog` or `Table`: it moves
//! plain data (rows, schemas, statistics documents, feedback state). The engine crate
//! maps its live structures into [`Snapshot`]/[`WalRecord`] and back, which keeps this
//! layer small enough to reason about byte-for-byte — and keeps the fuzz harness
//! honest, because every code path here is reachable from decoded bytes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod encode;
pub mod snapshot;
pub mod wal;

pub use snapshot::{ColumnDef, Snapshot, TableSnapshot, SNAPSHOT_FILE};
pub use wal::{WalRecord, WalWriter, WAL_FILE};

/// Durability counters the engine surfaces through `Engine::persist_stats()`.
///
/// All zeros (with `active == false`) when the engine runs without a `data_dir`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// True when the engine was opened with a `data_dir` and is logging writes.
    pub active: bool,
    /// True when opening found (and loaded) an existing snapshot.
    pub snapshot_loaded: bool,
    /// Checkpoints completed since open.
    pub checkpoints: u64,
    /// Wall-clock of the most recent checkpoint, in microseconds.
    pub last_checkpoint_micros: u64,
    /// Size of the most recently written snapshot, in bytes.
    pub snapshot_bytes: u64,
    /// WAL records appended since open.
    pub wal_records_appended: u64,
    /// WAL bytes appended since open.
    pub wal_bytes_appended: u64,
    /// WAL records replayed when the engine opened.
    pub wal_records_replayed: u64,
}
