//! Little-endian byte codec shared by snapshots and the WAL.
//!
//! The format is deliberately dumb: fixed-width little-endian integers, IEEE-754 bit
//! patterns for floats (so `-0.0`, subnormals and every NaN payload round-trip
//! byte-identically), and length-prefixed strings/sequences. Every read is
//! bounds-checked and returns [`Error::Persist`] instead of panicking — the reader is
//! the first thing hostile bytes meet, and the fuzz harness drives it directly.

use decorr_common::{DataType, Error, Result, Row, Value};

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the on-disk format is width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends an `Option` as a presence byte plus, when present, the payload.
    pub fn put_option<T>(&mut self, v: Option<&T>, mut put: impl FnMut(&mut ByteWriter, &T)) {
        match v {
            None => self.put_bool(false),
            Some(inner) => {
                self.put_bool(true);
                put(self, inner);
            }
        }
    }

    /// Appends one [`Value`] as a tag byte plus payload.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_bool(*b);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(3);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
        }
    }

    /// Appends one [`Row`]: a value count plus each value.
    pub fn put_row(&mut self, row: &Row) {
        self.put_u32(row.values.len() as u32);
        for v in &row.values {
            self.put_value(v);
        }
    }

    /// Appends a [`DataType`] tag byte.
    pub fn put_data_type(&mut self, t: DataType) {
        self.put_u8(match t {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
            DataType::Bool => 3,
            DataType::Null => 4,
        });
    }
}

/// Bounds-checked decoder over a byte slice. Every accessor returns
/// [`Error::Persist`] on truncation or a malformed payload — never panics.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Persist(format!(
                "truncated record: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; anything other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Persist(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| Error::Persist("length does not fit in usize".into()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Persist("string is not valid UTF-8".into()))
    }

    /// Reads an `Option` written by [`ByteWriter::put_option`].
    pub fn get_option<T>(
        &mut self,
        mut get: impl FnMut(&mut ByteReader<'a>) -> Result<T>,
    ) -> Result<Option<T>> {
        if self.get_bool()? {
            Ok(Some(get(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads one [`Value`].
    pub fn get_value(&mut self) -> Result<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.get_bool()?)),
            2 => Ok(Value::Int(self.get_i64()?)),
            3 => Ok(Value::Float(self.get_f64()?)),
            4 => Ok(Value::Str(self.get_str()?)),
            tag => Err(Error::Persist(format!("invalid value tag {tag}"))),
        }
    }

    /// Reads one [`Row`].
    pub fn get_row(&mut self) -> Result<Row> {
        let n = self.get_u32()? as usize;
        // A value is at least one tag byte: cap the pre-allocation by what the
        // buffer could possibly hold, so a corrupt length cannot balloon memory.
        let mut values = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            values.push(self.get_value()?);
        }
        Ok(Row::new(values))
    }

    /// Reads a [`DataType`] tag byte.
    pub fn get_data_type(&mut self) -> Result<DataType> {
        match self.get_u8()? {
            0 => Ok(DataType::Int),
            1 => Ok(DataType::Float),
            2 => Ok(DataType::Str),
            3 => Ok(DataType::Bool),
            4 => Ok(DataType::Null),
            tag => Err(Error::Persist(format!("invalid data-type tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(i64::MIN);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_option(Some(&5i64), |w, v| w.put_i64(*v));
        w.put_option::<i64>(None, |w, v| w.put_i64(*v));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        // -0.0 and NaN survive as bit patterns.
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_option(|r| r.get_i64()).unwrap(), Some(5));
        assert_eq!(r.get_option(|r| r.get_i64()).unwrap(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn values_and_rows_round_trip() {
        let row = Row::new(vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(3.5),
            Value::Str("x".into()),
        ]);
        let mut w = ByteWriter::new();
        w.put_row(&row);
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bool,
            DataType::Null,
        ] {
            w.put_data_type(t);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_row().unwrap(), row);
        assert_eq!(r.get_data_type().unwrap(), DataType::Int);
        assert_eq!(r.get_data_type().unwrap(), DataType::Float);
        assert_eq!(r.get_data_type().unwrap(), DataType::Str);
        assert_eq!(r.get_data_type().unwrap(), DataType::Bool);
        assert_eq!(r.get_data_type().unwrap(), DataType::Null);
    }

    #[test]
    fn truncation_and_garbage_are_named_errors_not_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u64().unwrap_err().kind(), "persist");
        // Invalid tags.
        assert_eq!(
            ByteReader::new(&[9]).get_value().unwrap_err().kind(),
            "persist"
        );
        assert_eq!(
            ByteReader::new(&[9]).get_data_type().unwrap_err().kind(),
            "persist"
        );
        assert_eq!(
            ByteReader::new(&[2]).get_bool().unwrap_err().kind(),
            "persist"
        );
        // A row claiming a billion values cannot out-allocate the buffer.
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000_000);
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).get_row().unwrap_err().kind(),
            "persist"
        );
        // Invalid UTF-8 in a string.
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).get_str().unwrap_err().kind(),
            "persist"
        );
    }
}
