//! Versioned, checksummed binary snapshots of the full engine state.
//!
//! A snapshot is a plain-data image: catalog DDL (schemas, shard layout, indexed
//! columns), per-shard row vectors in exact scan order, the merged
//! [`TableStatistics`] documents (histograms/MCVs/NDVs re-seed the statistics cache
//! on open, so the first optimize after a cold start needs no rescan), registered
//! UDF sources, and the feedback store's learned state. The engine maps its live
//! structures into this model at checkpoint time and back at open.
//!
//! On disk: an 8-byte magic, a format version, a length-prefixed payload and a
//! trailing FNV-1a checksum over everything before it. [`Snapshot::save`] writes to
//! `snapshot.bin.tmp` and renames over `snapshot.bin`, so a crash mid-checkpoint
//! leaves the previous snapshot intact; [`Snapshot::load`] rejects any flipped byte
//! with a named [`Error::Persist`] rather than
//! deserializing garbage.

use std::fs;
use std::path::Path;

use decorr_common::{DataType, Error, FnvHasher, Result, Row};
use decorr_optimizer::{FeedbackState, QueryFeedback, UdfFeedbackState};
use decorr_stats::{AnalyzeConfig, ColumnStatistics, Histogram, TableStatistics};

use crate::encode::{ByteReader, ByteWriter};

/// File name of the snapshot inside a `data_dir`.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary file the atomic save writes before renaming.
const SNAPSHOT_TMP: &str = "snapshot.bin.tmp";
/// Magic prefix identifying a snapshot file.
const MAGIC: &[u8; 8] = b"DCRSNAP1";
/// Current format version. Bump on any incompatible layout change.
const VERSION: u32 = 1;

/// One column of a persisted table schema (unqualified — the restore path
/// re-qualifies columns with the table name, exactly like `CREATE TABLE`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// False for `NOT NULL` columns.
    pub nullable: bool,
}

/// Full persisted state of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Normalized table name.
    pub name: String,
    /// Schema columns, unqualified.
    pub columns: Vec<ColumnDef>,
    /// Configured shard fanout.
    pub shard_target: usize,
    /// True for `Hash` placement, false for `AppendToLast`.
    pub hash_policy: bool,
    /// Per-shard row vectors, in shard order — the exact layout, so a restored
    /// table scans byte-identically.
    pub shards: Vec<Vec<Row>>,
    /// Indexed column names (indexes rebuild from rows on restore).
    pub indexes: Vec<String>,
    /// Remembered `ANALYZE` configuration, when the table was analyzed.
    pub analyze_config: Option<AnalyzeConfig>,
    /// Merged table statistics at checkpoint time, when warm — re-seeds the
    /// statistics cache so a cold open serves the first optimize without a rescan.
    pub stats: Option<TableStatistics>,
    /// The table's monotonic data version (result caches key on it).
    pub data_version: u64,
}

/// A complete engine-state image.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Catalog DDL generation at checkpoint time.
    pub ddl_generation: u64,
    /// Catalog data generation at checkpoint time.
    pub data_generation: u64,
    /// Default shard fanout new tables get.
    pub default_shard_count: usize,
    /// True when new tables default to `Hash` placement.
    pub default_hash_placement: bool,
    /// Every table, in catalog (name) order.
    pub tables: Vec<TableSnapshot>,
    /// `CREATE FUNCTION` sources of every registered UDF, in registry (name) order.
    /// Restore replays them through the parser, so normalization is identical.
    pub functions: Vec<String>,
    /// The feedback store's learned state.
    pub feedback: FeedbackState,
}

impl Snapshot {
    /// Encodes the snapshot into its on-disk byte form (magic, version, payload,
    /// trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.ddl_generation);
        w.put_u64(self.data_generation);
        w.put_usize(self.default_shard_count);
        w.put_bool(self.default_hash_placement);
        w.put_u32(self.tables.len() as u32);
        for table in &self.tables {
            put_table(&mut w, table);
        }
        w.put_u32(self.functions.len() as u32);
        for source in &self.functions {
            w.put_str(source);
        }
        put_feedback(&mut w, &self.feedback);
        let payload = w.into_bytes();

        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let mut hasher = FnvHasher::new();
        hasher.write_bytes(&out);
        out.extend_from_slice(&hasher.finish().to_le_bytes());
        out
    }

    /// Decodes a snapshot, verifying magic, version, length and checksum. Any
    /// mismatch — including a single flipped byte anywhere in the file — is a named
    /// `persist` error, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
            return Err(Error::Persist("snapshot file is too short".into()));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(Error::Persist("snapshot magic mismatch".into()));
        }
        let body_len = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 bytes"));
        let mut hasher = FnvHasher::new();
        hasher.write_bytes(&bytes[..body_len]);
        if hasher.finish() != stored {
            return Err(Error::Persist(
                "snapshot checksum mismatch (corrupt or torn file)".into(),
            ));
        }
        let mut r = ByteReader::new(&bytes[MAGIC.len()..body_len]);
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(Error::Persist(format!(
                "snapshot format version {version} is not supported (expected {VERSION})"
            )));
        }
        let payload_len = r.get_usize()?;
        if payload_len != r.remaining() {
            return Err(Error::Persist(format!(
                "snapshot payload length mismatch: header says {payload_len}, file holds {}",
                r.remaining()
            )));
        }
        let ddl_generation = r.get_u64()?;
        let data_generation = r.get_u64()?;
        let default_shard_count = r.get_usize()?;
        let default_hash_placement = r.get_bool()?;
        let table_count = r.get_u32()? as usize;
        let mut tables = Vec::with_capacity(table_count.min(r.remaining()));
        for _ in 0..table_count {
            tables.push(get_table(&mut r)?);
        }
        let function_count = r.get_u32()? as usize;
        let mut functions = Vec::with_capacity(function_count.min(r.remaining()));
        for _ in 0..function_count {
            functions.push(r.get_str()?);
        }
        let feedback = get_feedback(&mut r)?;
        if !r.is_empty() {
            return Err(Error::Persist(format!(
                "snapshot has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(Snapshot {
            ddl_generation,
            data_generation,
            default_shard_count,
            default_hash_placement,
            tables,
            functions,
            feedback,
        })
    }

    /// Atomically writes the snapshot into `dir` (created if missing): encode to
    /// `snapshot.bin.tmp`, then rename over `snapshot.bin`. Returns the byte size.
    pub fn save(&self, dir: &Path) -> Result<u64> {
        fs::create_dir_all(dir)
            .map_err(|e| Error::Persist(format!("cannot create data dir {dir:?}: {e}")))?;
        let bytes = self.encode();
        let tmp = dir.join(SNAPSHOT_TMP);
        let dst = dir.join(SNAPSHOT_FILE);
        fs::write(&tmp, &bytes)
            .map_err(|e| Error::Persist(format!("cannot write snapshot {tmp:?}: {e}")))?;
        fs::rename(&tmp, &dst)
            .map_err(|e| Error::Persist(format!("cannot rename snapshot into place: {e}")))?;
        Ok(bytes.len() as u64)
    }

    /// Loads the snapshot from `dir`, if one exists. `Ok(None)` when the directory
    /// or file is missing (a fresh `data_dir`); a corrupt file is an error.
    pub fn load(dir: &Path) -> Result<Option<Snapshot>> {
        let path = dir.join(SNAPSHOT_FILE);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(Error::Persist(format!(
                    "cannot read snapshot {path:?}: {e}"
                )))
            }
        };
        Snapshot::decode(&bytes).map(Some)
    }
}

fn put_table(w: &mut ByteWriter, t: &TableSnapshot) {
    w.put_str(&t.name);
    w.put_u32(t.columns.len() as u32);
    for c in &t.columns {
        w.put_str(&c.name);
        w.put_data_type(c.data_type);
        w.put_bool(c.nullable);
    }
    w.put_usize(t.shard_target);
    w.put_bool(t.hash_policy);
    w.put_u32(t.shards.len() as u32);
    for shard in &t.shards {
        w.put_u64(shard.len() as u64);
        for row in shard {
            w.put_row(row);
        }
    }
    w.put_u32(t.indexes.len() as u32);
    for col in &t.indexes {
        w.put_str(col);
    }
    w.put_option(t.analyze_config.as_ref(), put_analyze_config);
    w.put_option(t.stats.as_ref(), put_table_statistics);
    w.put_u64(t.data_version);
}

fn get_table(r: &mut ByteReader<'_>) -> Result<TableSnapshot> {
    let name = r.get_str()?;
    let column_count = r.get_u32()? as usize;
    let mut columns = Vec::with_capacity(column_count.min(r.remaining()));
    for _ in 0..column_count {
        columns.push(ColumnDef {
            name: r.get_str()?,
            data_type: r.get_data_type()?,
            nullable: r.get_bool()?,
        });
    }
    let shard_target = r.get_usize()?;
    let hash_policy = r.get_bool()?;
    let shard_count = r.get_u32()? as usize;
    let mut shards = Vec::with_capacity(shard_count.min(r.remaining()));
    for _ in 0..shard_count {
        let rows_len = r.get_usize()?;
        let mut rows = Vec::with_capacity(rows_len.min(r.remaining()));
        for _ in 0..rows_len {
            rows.push(r.get_row()?);
        }
        shards.push(rows);
    }
    let index_count = r.get_u32()? as usize;
    let mut indexes = Vec::with_capacity(index_count.min(r.remaining()));
    for _ in 0..index_count {
        indexes.push(r.get_str()?);
    }
    let analyze_config = r.get_option(get_analyze_config)?;
    let stats = r.get_option(get_table_statistics)?;
    let data_version = r.get_u64()?;
    Ok(TableSnapshot {
        name,
        columns,
        shard_target,
        hash_policy,
        shards,
        indexes,
        analyze_config,
        stats,
        data_version,
    })
}

fn put_analyze_config(w: &mut ByteWriter, c: &AnalyzeConfig) {
    w.put_usize(c.sample_size);
    w.put_usize(c.histogram_buckets);
    w.put_usize(c.mcv_count);
    w.put_u64(c.seed);
}

fn get_analyze_config(r: &mut ByteReader<'_>) -> Result<AnalyzeConfig> {
    Ok(AnalyzeConfig {
        sample_size: r.get_usize()?,
        histogram_buckets: r.get_usize()?,
        mcv_count: r.get_usize()?,
        seed: r.get_u64()?,
    })
}

fn put_table_statistics(w: &mut ByteWriter, s: &TableStatistics) {
    w.put_usize(s.row_count);
    w.put_bool(s.analyzed);
    w.put_usize(s.sampled_rows);
    w.put_u32(s.columns.len() as u32);
    for c in &s.columns {
        put_column_statistics(w, c);
    }
}

fn get_table_statistics(r: &mut ByteReader<'_>) -> Result<TableStatistics> {
    let row_count = r.get_usize()?;
    let analyzed = r.get_bool()?;
    let sampled_rows = r.get_usize()?;
    let column_count = r.get_u32()? as usize;
    let mut columns = Vec::with_capacity(column_count.min(r.remaining()));
    for _ in 0..column_count {
        columns.push(get_column_statistics(r)?);
    }
    Ok(TableStatistics {
        row_count,
        columns,
        analyzed,
        sampled_rows,
    })
}

fn put_column_statistics(w: &mut ByteWriter, c: &ColumnStatistics) {
    w.put_str(&c.name);
    w.put_usize(c.distinct_count);
    w.put_f64(c.null_fraction);
    w.put_option(c.min.as_ref(), |w, v| w.put_f64(*v));
    w.put_option(c.max.as_ref(), |w, v| w.put_f64(*v));
    w.put_u32(c.mcvs.len() as u32);
    for (value, freq) in &c.mcvs {
        w.put_value(value);
        w.put_f64(*freq);
    }
    w.put_option(c.histogram.as_ref(), put_histogram);
}

fn get_column_statistics(r: &mut ByteReader<'_>) -> Result<ColumnStatistics> {
    let name = r.get_str()?;
    let distinct_count = r.get_usize()?;
    let null_fraction = r.get_f64()?;
    let min = r.get_option(|r| r.get_f64())?;
    let max = r.get_option(|r| r.get_f64())?;
    let mcv_count = r.get_u32()? as usize;
    let mut mcvs = Vec::with_capacity(mcv_count.min(r.remaining()));
    for _ in 0..mcv_count {
        let value = r.get_value()?;
        let freq = r.get_f64()?;
        mcvs.push((value, freq));
    }
    let histogram = r.get_option(get_histogram)?;
    Ok(ColumnStatistics {
        name,
        distinct_count,
        null_fraction,
        min,
        max,
        mcvs,
        histogram,
    })
}

fn put_histogram(w: &mut ByteWriter, h: &Histogram) {
    w.put_u32(h.bounds().len() as u32);
    for b in h.bounds() {
        w.put_f64(*b);
    }
    w.put_u32(h.counts().len() as u32);
    for c in h.counts() {
        w.put_u64(*c);
    }
    w.put_u32(h.distinct_counts().len() as u32);
    for d in h.distinct_counts() {
        w.put_u64(*d);
    }
    w.put_u64(h.total());
}

fn get_histogram(r: &mut ByteReader<'_>) -> Result<Histogram> {
    let nb = r.get_u32()? as usize;
    let mut bounds = Vec::with_capacity(nb.min(r.remaining()));
    for _ in 0..nb {
        bounds.push(r.get_f64()?);
    }
    let nc = r.get_u32()? as usize;
    let mut counts = Vec::with_capacity(nc.min(r.remaining()));
    for _ in 0..nc {
        counts.push(r.get_u64()?);
    }
    let nd = r.get_u32()? as usize;
    let mut distinct = Vec::with_capacity(nd.min(r.remaining()));
    for _ in 0..nd {
        distinct.push(r.get_u64()?);
    }
    let total = r.get_u64()?;
    Histogram::from_parts(bounds, counts, distinct, total)
        .ok_or_else(|| Error::Persist("histogram parts violate structural invariants".into()))
}

fn put_feedback(w: &mut ByteWriter, f: &FeedbackState) {
    w.put_u64(f.generation);
    w.put_u64(f.queries_recorded);
    w.put_u64(f.invalidations_flagged);
    w.put_u32(f.queries.len() as u32);
    for q in &f.queries {
        w.put_u64(q.fingerprint);
        w.put_f64(q.estimated_rows);
        w.put_u64(q.actual_rows);
        w.put_f64(q.q_error);
        w.put_f64(q.max_q_error);
        w.put_u64(q.executions);
        w.put_bool(q.invalidated);
    }
    w.put_u32(f.udfs.len() as u32);
    for u in &f.udfs {
        w.put_str(&u.name);
        w.put_u64(u.invocations);
        w.put_u64(u.total_nanos);
        w.put_f64(u.static_units);
        w.put_bool(u.flagged);
        w.put_u64(u.cache_hits);
        w.put_bool(u.dedup_flagged);
        w.put_u64(u.predicate_evaluated);
        w.put_u64(u.predicate_passed);
    }
}

fn get_feedback(r: &mut ByteReader<'_>) -> Result<FeedbackState> {
    let generation = r.get_u64()?;
    let queries_recorded = r.get_u64()?;
    let invalidations_flagged = r.get_u64()?;
    let query_count = r.get_u32()? as usize;
    let mut queries = Vec::with_capacity(query_count.min(r.remaining()));
    for _ in 0..query_count {
        queries.push(QueryFeedback {
            fingerprint: r.get_u64()?,
            estimated_rows: r.get_f64()?,
            actual_rows: r.get_u64()?,
            q_error: r.get_f64()?,
            max_q_error: r.get_f64()?,
            executions: r.get_u64()?,
            invalidated: r.get_bool()?,
        });
    }
    let udf_count = r.get_u32()? as usize;
    let mut udfs = Vec::with_capacity(udf_count.min(r.remaining()));
    for _ in 0..udf_count {
        udfs.push(UdfFeedbackState {
            name: r.get_str()?,
            invocations: r.get_u64()?,
            total_nanos: r.get_u64()?,
            static_units: r.get_f64()?,
            flagged: r.get_bool()?,
            cache_hits: r.get_u64()?,
            dedup_flagged: r.get_bool()?,
            predicate_evaluated: r.get_u64()?,
            predicate_passed: r.get_u64()?,
        });
    }
    Ok(FeedbackState {
        generation,
        queries_recorded,
        invalidations_flagged,
        queries,
        udfs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::Value;

    fn sample_snapshot() -> Snapshot {
        let histogram = Histogram::equi_depth((0..1000).map(|i| i as f64).collect(), 32).unwrap();
        Snapshot {
            ddl_generation: 12,
            data_generation: 7,
            default_shard_count: 4,
            default_hash_placement: true,
            tables: vec![TableSnapshot {
                name: "orders".into(),
                columns: vec![
                    ColumnDef {
                        name: "orderkey".into(),
                        data_type: DataType::Int,
                        nullable: false,
                    },
                    ColumnDef {
                        name: "totalprice".into(),
                        data_type: DataType::Float,
                        nullable: true,
                    },
                ],
                shard_target: 4,
                hash_policy: false,
                shards: vec![
                    vec![
                        Row::new(vec![Value::Int(1), Value::Float(10.5)]),
                        Row::new(vec![Value::Int(2), Value::Null]),
                    ],
                    vec![Row::new(vec![Value::Int(3), Value::Float(-0.0)])],
                ],
                indexes: vec!["orderkey".into()],
                analyze_config: Some(AnalyzeConfig::default()),
                stats: Some(TableStatistics {
                    row_count: 3,
                    columns: vec![ColumnStatistics {
                        name: "orderkey".into(),
                        distinct_count: 3,
                        null_fraction: 0.0,
                        min: Some(1.0),
                        max: Some(3.0),
                        mcvs: vec![(Value::Int(1), 0.33)],
                        histogram: Some(histogram),
                    }],
                    analyzed: true,
                    sampled_rows: 3,
                }),
                data_version: 3,
            }],
            functions: vec!["create function f(x int) returns int as x + 1".into()],
            feedback: FeedbackState {
                generation: 3,
                queries_recorded: 5,
                invalidations_flagged: 1,
                queries: vec![QueryFeedback {
                    fingerprint: 99,
                    estimated_rows: 10.0,
                    actual_rows: 1000,
                    q_error: 100.0,
                    max_q_error: 100.0,
                    executions: 2,
                    invalidated: true,
                }],
                udfs: vec![UdfFeedbackState {
                    name: "f".into(),
                    invocations: 20,
                    total_nanos: 1_000_000,
                    static_units: 5.0,
                    flagged: true,
                    cache_hits: 80,
                    dedup_flagged: true,
                    predicate_evaluated: 100,
                    predicate_passed: 25,
                }],
            },
        }
    }

    #[test]
    fn encode_decode_is_identity() {
        let snapshot = sample_snapshot();
        let bytes = snapshot.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        // Deterministic: same state, same bytes.
        assert_eq!(decoded.encode(), bytes);
        // The empty snapshot round-trips too.
        let empty = Snapshot::default();
        assert_eq!(Snapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn every_flipped_byte_is_rejected() {
        let bytes = sample_snapshot().encode();
        // Exhaustively flip one byte at a time across a stride of the file (every
        // byte for small files) — each corruption must be a named error.
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let err = Snapshot::decode(&corrupt).unwrap_err();
            assert_eq!(err.kind(), "persist", "flipping byte {i} must be caught");
        }
        // Truncations at any point are rejected.
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), "persist", "truncation at {cut}");
        }
    }

    #[test]
    fn save_and_load_round_trip_atomically() {
        let dir =
            std::env::temp_dir().join(format!("decorr_persist_snapshot_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Missing dir/file loads as None, not an error.
        assert_eq!(Snapshot::load(&dir).unwrap(), None);
        let snapshot = sample_snapshot();
        let bytes = snapshot.save(&dir).unwrap();
        assert!(bytes > 0);
        assert_eq!(Snapshot::load(&dir).unwrap(), Some(snapshot.clone()));
        // No tmp file survives a successful save.
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        // Overwrite with new state.
        let mut next = snapshot;
        next.ddl_generation += 1;
        next.save(&dir).unwrap();
        assert_eq!(
            Snapshot::load(&dir).unwrap().unwrap().ddl_generation,
            next.ddl_generation
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
