//! The engine facade: an embeddable in-memory SQL database with UDF decorrelation.
//!
//! The public API is split into two layers:
//!
//! * [`Engine`] — the shared, thread-safe process-wide state: the catalog and function
//!   registry behind an epoch/snapshot swap, plus the plan cache, runtime feedback
//!   store, cross-query UDF memo and persistent worker pool, all shared by every
//!   client. An `Engine` is a cheap clonable handle (`Arc` inside).
//! * [`Session`] — a cheap per-client handle onto an engine. Sessions carry only
//!   per-client state (an executor-config override and a default execution strategy)
//!   and expose the statement surface: [`Session::query`], [`Session::execute`],
//!   [`Session::explain`], [`Session::explain_analyze`]. Sessions are `Clone` and can
//!   be freely moved across threads; any number can run concurrently against one
//!   engine.
//!
//! Reads never block writes: a query *pins* an immutable snapshot of the catalog and
//! registry (two `Arc` clones) and runs entirely against it, while concurrent
//! `INSERT`/`ANALYZE`/DDL build a new catalog copy-on-write (only touched tables are
//! deep-cloned) and atomically swap it in as the next epoch.
//!
//! [`Database`] remains as a thin single-session facade over one private engine — the
//! embedded, single-threaded entry point. A query submitted through
//! [`Database::query`] goes through exactly the paper's pipeline: parse → algebraize &
//! merge UDFs → remove Apply operators → (cost-based) choice between the iterative and
//! the decorrelated plan → execute.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use decorr_algebra::display::explain;
use decorr_algebra::RelExpr;
use decorr_common::{Column, Error, Result, Row, Schema, Value};
use decorr_exec::{
    CatalogProvider, Env, ExecConfig, Executor, MemoEpoch, UdfMemo, UdfMemoStats, UdfRuntimeHint,
    WorkerPool, WorkerPoolStats,
};
use decorr_optimizer::{
    estimate_per_node, estimate_with, estimated_udf_invocation_cost, plan_fingerprint, CostParams,
    FeedbackConfig, FeedbackStats, FeedbackStore, OptimizeMode, OptimizeOutcome, PassManager,
    PipelineReport, PlanCache, PlanCacheStats,
};
use decorr_parser::{parse_statements, plan_select, SqlStatement};
use decorr_persist::{ColumnDef, PersistStats, Snapshot, TableSnapshot, WalRecord, WalWriter};
use decorr_rewrite::plan_to_sql;
use decorr_stats::q_error;
use decorr_storage::{AnalyzeConfig, Catalog, ShardPolicy, Table, TableStats};
use decorr_udf::FunctionRegistry;

/// How the engine should execute a query that invokes UDFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionStrategy {
    /// Decorrelate when possible and let the cost model pick between the iterative and
    /// the rewritten plan (the paper's intended deployment).
    #[default]
    Auto,
    /// Always execute the original plan, invoking UDFs tuple-at-a-time (the baseline of
    /// every experiment in the paper).
    Iterative,
    /// Always execute the decorrelated plan; fails if decorrelation is not possible.
    Decorrelated,
}

/// Per-query options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    pub strategy: ExecutionStrategy,
    /// Override the executor configuration (hash-join threshold etc.).
    pub exec_config: Option<ExecConfig>,
    /// Capture before/after plan snapshots in the per-pass `rewrite_report` (off by
    /// default: snapshot rendering costs string work per optimizer pass; `EXPLAIN`
    /// always captures them).
    pub capture_snapshots: bool,
    /// Override per-pass static plan validation for this query. `None` keeps the
    /// compile-profile default (on in debug builds, off in release unless the
    /// `DECORR_VALIDATE_PLANS` environment variable opts in); `Some(v)` forces it.
    /// The plan cache fingerprints the flag, so validated and unvalidated runs of
    /// the same query shape never serve each other's cached pipelines.
    pub validate_plans: Option<bool>,
}

impl QueryOptions {
    pub fn iterative() -> QueryOptions {
        QueryOptions {
            strategy: ExecutionStrategy::Iterative,
            ..QueryOptions::default()
        }
    }

    pub fn decorrelated() -> QueryOptions {
        QueryOptions {
            strategy: ExecutionStrategy::Decorrelated,
            ..QueryOptions::default()
        }
    }
}

/// The result of a query, together with how it was obtained.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
    /// The strategy that was requested.
    pub strategy: ExecutionStrategy,
    /// True if the executed plan was the decorrelated one.
    pub used_decorrelated_plan: bool,
    /// Notes from the rewriter (skipped UDFs, reasons decorrelation was abandoned).
    pub rewrite_notes: Vec<String>,
    /// Rules that fired during rewriting.
    pub applied_rules: Vec<String>,
    /// Executor counters (UDF invocations performed, index lookups, joins, …).
    pub exec_stats: decorr_exec::executor::ExecStats,
    /// The optimizer's per-pass trace: pass timings, per-rule fire counts, fixpoint
    /// iteration counts and before/after plan snapshots.
    pub rewrite_report: PipelineReport,
    /// The executor's per-operator trace (morsels dispatched, per-worker row spread,
    /// rows in/out, operator wall clock) — empty for fully serial executions.
    pub exec_trace: decorr_exec::ExecTrace,
    /// Estimated root cardinality of the executed plan (the cost model's number the
    /// feedback loop compares against `rows.len()`).
    pub estimated_rows: f64,
    /// q-error of the root cardinality estimate for this execution.
    pub cardinality_q_error: f64,
    /// Measured wall-clock per invoked UDF (empty for set-oriented executions).
    pub udf_timings: Vec<decorr_exec::UdfTiming>,
    /// Actual output cardinality per executed plan node, keyed by structural
    /// fingerprint. Only populated when the query ran with
    /// `ExecConfig::collect_cardinalities` (e.g. under `EXPLAIN ANALYZE`).
    pub node_cardinalities: Vec<decorr_exec::NodeCardinality>,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of a named output column.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(None, name)?;
        Ok(self.rows.iter().map(|r| r.get(idx).clone()).collect())
    }

    /// Order-insensitive canonical form restricted to the given columns (for comparing
    /// the iterative and decorrelated executions in tests).
    pub fn canonical_projection(&self, columns: &[&str]) -> Result<Vec<String>> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.index_of(None, c))
            .collect::<Result<Vec<_>>>()?;
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let projected: Vec<String> =
                    indices.iter().map(|&i| r.get(i).to_string()).collect();
                format!("({})", projected.join(", "))
            })
            .collect();
        out.sort();
        Ok(out)
    }
}

/// Report produced by [`Session::rewrite_sql`] — the output of the paper's standalone
/// rewrite tool: the rewritten SQL text plus any auxiliary aggregate definitions.
#[derive(Debug, Clone)]
pub struct RewriteReport {
    pub decorrelated: bool,
    pub rewritten_sql: String,
    pub auxiliary_functions: Vec<String>,
    pub applied_rules: Vec<String>,
    pub notes: Vec<String>,
}

/// Summary of a non-query statement execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionSummary {
    TableCreated(String),
    TableDropped(String),
    IndexCreated {
        table: String,
        column: String,
    },
    RowsInserted(usize),
    FunctionCreated(String),
    /// An `ANALYZE` ran; holds the names of the analyzed tables.
    Analyzed {
        tables: Vec<String>,
    },
    /// A SELECT executed through [`Session::execute`]; holds the number of rows.
    QueryRows(usize),
}

/// Default capacity (distinct argument tuples) of the cross-query pure-UDF memo.
const DEFAULT_UDF_MEMO_CAPACITY: usize = 8192;

/// Capacity of the per-query dedup cache attached when `ExecConfig::udf_batching` is
/// on. Generous: it only lives for one query, and batched Apply loops can touch many
/// distinct argument tuples.
const UDF_DEDUP_CAPACITY: usize = 65536;

/// Lock helpers: a poisoned lock means another session panicked mid-operation; the
/// protected state is swap-only (`Arc` replacement) or a plain config value, so it is
/// never left torn — recover the guard instead of cascading the panic into every
/// other session sharing the engine.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Maps a live schema to the persist layer's plain column definitions (unqualified:
/// `Table::restore` re-qualifies with the table name).
fn column_defs(schema: &Schema) -> Vec<ColumnDef> {
    schema
        .columns
        .iter()
        .map(|c| ColumnDef {
            name: c.name.clone(),
            data_type: c.data_type,
            nullable: c.nullable,
        })
        .collect()
}

/// Rebuilds a schema from persisted column definitions.
fn schema_of(columns: &[ColumnDef]) -> Schema {
    Schema::new(
        columns
            .iter()
            .map(|c| {
                let col = Column::new(&c.name, c.data_type);
                if c.nullable {
                    col
                } else {
                    col.not_null()
                }
            })
            .collect(),
    )
}

/// The persisted placement bit, decoded.
fn policy_of(hash_policy: bool) -> ShardPolicy {
    if hash_policy {
        ShardPolicy::Hash
    } else {
        ShardPolicy::AppendToLast
    }
}

/// Counter snapshot of a live durability handle.
fn stats_of(handle: &PersistHandle) -> PersistStats {
    PersistStats {
        active: true,
        snapshot_loaded: handle.snapshot_loaded,
        checkpoints: handle.checkpoints,
        last_checkpoint_micros: handle.last_checkpoint_micros,
        snapshot_bytes: handle.snapshot_bytes,
        wal_records_appended: handle.wal.records_appended(),
        wal_bytes_appended: handle.wal.bytes_appended(),
        wal_records_replayed: handle.replayed,
    }
}

/// The snapshot readers pin: catalog and registry swapped together so a query never
/// observes a catalog from one epoch with a registry from another.
#[derive(Debug, Clone)]
struct SharedState {
    catalog: Arc<Catalog>,
    registry: Arc<FunctionRegistry>,
}

#[derive(Debug)]
struct EngineInner {
    /// Current catalog + registry epoch. Readers clone the two `Arc`s under the read
    /// lock and run against that immutable snapshot; writers build the next epoch
    /// outside the lock and swap it in.
    state: RwLock<SharedState>,
    /// Serializes writers (DDL/DML/ANALYZE/CREATE FUNCTION) so concurrent mutations
    /// can't lose updates in the clone-mutate-swap cycle. Readers never touch it.
    writer: Mutex<()>,
    exec_config: RwLock<ExecConfig>,
    plan_cache: RwLock<Arc<PlanCache>>,
    worker_pool: RwLock<Arc<WorkerPool>>,
    feedback: RwLock<Arc<FeedbackStore>>,
    udf_memo: RwLock<Arc<UdfMemo>>,
    analyze_config: RwLock<AnalyzeConfig>,
    /// Durability handle: `Some` when the engine was opened with a `data_dir`. Held
    /// briefly by the writer path (to append WAL records) and by
    /// [`Engine::checkpoint`]; always acquired *after* `writer` when both are taken,
    /// so append order matches epoch-swap order.
    persist: Mutex<Option<PersistHandle>>,
}

/// Live durability state of an engine opened with a `data_dir`.
#[derive(Debug)]
struct PersistHandle {
    /// Directory holding `snapshot.bin` and `wal.log`.
    dir: PathBuf,
    /// Open WAL appender (the tail already recovered and truncated).
    wal: WalWriter,
    /// True when opening found (and loaded) an existing snapshot.
    snapshot_loaded: bool,
    /// WAL records replayed when the engine opened.
    replayed: u64,
    /// Checkpoints completed since open.
    checkpoints: u64,
    /// Wall-clock of the most recent checkpoint, in microseconds.
    last_checkpoint_micros: u64,
    /// Size of the most recently written snapshot, in bytes.
    snapshot_bytes: u64,
}

/// The shared, thread-safe core of the database: one per process (or per logical
/// database), serving any number of concurrent [`Session`]s.
///
/// The engine owns the process-wide state every client shares:
///
/// * the **catalog** and **function registry**, behind an epoch swap — queries pin an
///   immutable snapshot and never block writers (see [`Engine::mutate_catalog`]);
/// * the **plan cache** — its key already folds in the registry generation, the DDL
///   generation, the pipeline shape (including parallelism) and the feedback
///   generation, so one cache safely serves every session: a plan warmed by session A
///   is a hit for session B;
/// * the **feedback store** — runtime cardinality and UDF-cost measurements from all
///   sessions calibrate one shared cost model;
/// * the **cross-query UDF memo** — entries are stamped with a per-UDF epoch (see
///   [`Engine::analyze`] docs on invalidation), so sessions on different snapshots
///   coexist in one cache;
/// * the persistent **worker pool** — morsel workers are reused across operators,
///   queries *and* sessions.
///
/// `Engine` is a cheap handle (`Arc` inside): clone it to share, use
/// [`Engine::fork`] to create an independent engine with the same data but fresh
/// caches.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An empty engine with default configuration.
    pub fn new() -> Engine {
        Engine::builder().build()
    }

    /// A builder for configuring parallelism, cache capacities and the
    /// analyze/feedback configuration up front.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Opens a new session: a cheap per-client handle with its own config override
    /// and default strategy. Any number of sessions may run concurrently.
    pub fn session(&self) -> Session {
        Session::new(self.clone())
    }

    /// An independent engine with the same data and functions but **fresh, empty**
    /// caches (same capacities), its own worker pool and a fresh feedback store. The
    /// fork's catalog shares table storage copy-on-write with the original: only
    /// tables either side subsequently writes are deep-cloned.
    pub fn fork(&self) -> Engine {
        let state = read(&self.inner.state).clone();
        Engine::builder()
            .catalog((*state.catalog).clone())
            .registry((*state.registry).clone())
            .exec_config(self.exec_config())
            .plan_cache_capacity(read(&self.inner.plan_cache).capacity())
            .udf_memo_capacity(read(&self.inner.udf_memo).capacity())
            .analyze_config(self.analyze_config())
            .feedback_config(read(&self.inner.feedback).config().clone())
            .build()
    }

    // ---- snapshot reads -------------------------------------------------------

    /// The current catalog snapshot. The returned `Arc` pins this epoch: concurrent
    /// writers swap in new epochs without disturbing it.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&read(&self.inner.state).catalog)
    }

    /// The current function-registry snapshot (see [`Engine::catalog`]).
    pub fn registry(&self) -> Arc<FunctionRegistry> {
        Arc::clone(&read(&self.inner.state).registry)
    }

    /// Pins one consistent snapshot of everything a query needs: catalog + registry
    /// (one epoch), the shared caches, the worker pool and the resolved executor
    /// configuration.
    fn pin(&self, config_override: Option<&ExecConfig>) -> Pinned {
        let state = read(&self.inner.state).clone();
        let exec_config = match config_override {
            Some(config) => config.clone(),
            None => read(&self.inner.exec_config).clone(),
        }
        .normalized();
        Pinned {
            catalog: state.catalog,
            registry: state.registry,
            exec_config,
            plan_cache: Arc::clone(&read(&self.inner.plan_cache)),
            worker_pool: Arc::clone(&read(&self.inner.worker_pool)),
            feedback: Arc::clone(&read(&self.inner.feedback)),
            udf_memo: Arc::clone(&read(&self.inner.udf_memo)),
        }
    }

    // ---- writes (clone-mutate-swap) -------------------------------------------

    /// Runs a catalog mutation against a copy of the current epoch and atomically
    /// swaps the result in as the next epoch. Concurrent queries keep reading their
    /// pinned snapshots; they only contend on the brief `Arc` swap. Writers serialize
    /// on an internal mutex. The clone is copy-on-write per table: only tables `f`
    /// actually touches are deep-cloned.
    ///
    /// If `f` fails, no swap happens and the error is returned.
    ///
    /// Direct mutations through this method bypass the write-ahead log: on a durable
    /// engine (built with [`EngineBuilder::data_dir`]) they stay in memory until the
    /// next [`Engine::checkpoint`] captures them. The named write methods
    /// ([`Engine::create_table`], [`Engine::insert_rows`], [`Engine::create_index`],
    /// …) and the SQL statement surface log every write as it happens.
    pub fn mutate_catalog<R>(&self, f: impl FnOnce(&mut Catalog) -> Result<R>) -> Result<R> {
        self.mutate_catalog_wal(None, f)
    }

    /// The clone-mutate-swap writer cycle, with an optional WAL record appended
    /// between the successful mutation and the epoch swap (still inside the writer
    /// critical section, so WAL order matches publication order). A failed append
    /// abandons the swap: the write is neither visible nor durable.
    fn mutate_catalog_wal<R>(
        &self,
        record: Option<WalRecord>,
        f: impl FnOnce(&mut Catalog) -> Result<R>,
    ) -> Result<R> {
        let _writer = lock(&self.inner.writer);
        let current = read(&self.inner.state).clone();
        let mut catalog = (*current.catalog).clone();
        let out = f(&mut catalog)?;
        if let Some(record) = record {
            self.wal_append(&record)?;
        }
        *write(&self.inner.state) = SharedState {
            catalog: Arc::new(catalog),
            registry: current.registry,
        };
        Ok(out)
    }

    /// Appends one record to the WAL if this engine is durable; a no-op otherwise.
    /// Caller holds the writer lock.
    fn wal_append(&self, record: &WalRecord) -> Result<()> {
        let mut slot = lock(&self.inner.persist);
        if let Some(handle) = slot.as_mut() {
            handle.wal.append(record)?;
        }
        Ok(())
    }

    /// True when this engine was opened with a `data_dir` and is logging writes.
    fn persist_active(&self) -> bool {
        lock(&self.inner.persist).is_some()
    }

    /// Like [`Engine::mutate_catalog`], for the function registry.
    pub fn mutate_registry<R>(&self, f: impl FnOnce(&mut FunctionRegistry) -> R) -> R {
        let _writer = lock(&self.inner.writer);
        let current = read(&self.inner.state).clone();
        let mut registry = (*current.registry).clone();
        let out = f(&mut registry);
        *write(&self.inner.state) = SharedState {
            catalog: current.catalog,
            registry: Arc::new(registry),
        };
        out
    }

    /// Registers a UDF from its `CREATE FUNCTION` source. The queries inside the body
    /// are normalised (predicate pushdown etc.) so that iterative invocation executes
    /// them with reasonable plans, just like a commercial system would.
    pub fn register_function(&self, sql: &str) -> Result<()> {
        let udf = decorr_parser::parse_function(sql)?;
        self.register_udf_definition(udf)
    }

    /// Registers an already-parsed UDF definition (normalising its body queries).
    ///
    /// The body is statically analysed first: a UDF *explicitly declared*
    /// `DETERMINISTIC` whose body (transitively) calls a volatile UDF is rejected,
    /// since memoizing it would serve stale results. A UDF that merely inherited the
    /// pure-by-default contract is silently downgraded to volatile instead.
    pub fn register_udf_definition(&self, udf: decorr_udf::UdfDefinition) -> Result<()> {
        // Normalize against the current snapshot before taking the writer lock:
        // normalization is a best-effort plan cleanup, so racing with a concurrent
        // DDL at worst misses an optimization opportunity, never correctness.
        let pinned = self.pin(None);
        let mut normalized = pinned.normalize_udf(udf);
        let facts = decorr_analysis::analyze_body(&normalized, &pinned.registry);
        if facts.purity == decorr_analysis::Purity::Volatile && normalized.pure {
            if normalized.purity_declared {
                let witness = facts
                    .volatile_calls
                    .first()
                    .map(String::as_str)
                    .unwrap_or("<unknown>");
                return Err(Error::Binding(format!(
                    "function '{}' is declared DETERMINISTIC but its body calls the \
                     volatile function '{witness}'; drop the DETERMINISTIC clause or \
                     declare it VOLATILE",
                    normalized.name,
                )));
            }
            // Default contract, not a promise: infer volatility instead of rejecting.
            normalized.pure = false;
        }
        let record = if self.persist_active() {
            let source = normalized.source.clone().ok_or_else(|| {
                Error::Persist(format!(
                    "function '{}' has no source text; durable engines replay functions \
                     through the parser, so register it with CREATE FUNCTION source",
                    normalized.name,
                ))
            })?;
            Some(WalRecord::CreateFunction { source })
        } else {
            None
        };
        self.mutate_registry_wal(record, |r| r.register_udf(normalized))?;
        Ok(())
    }

    /// Like [`Engine::mutate_catalog_wal`], for the function registry.
    fn mutate_registry_wal<R>(
        &self,
        record: Option<WalRecord>,
        f: impl FnOnce(&mut FunctionRegistry) -> R,
    ) -> Result<R> {
        let _writer = lock(&self.inner.writer);
        let current = read(&self.inner.state).clone();
        let mut registry = (*current.registry).clone();
        let out = f(&mut registry);
        if let Some(record) = record {
            self.wal_append(&record)?;
        }
        *write(&self.inner.state) = SharedState {
            catalog: current.catalog,
            registry: Arc::new(registry),
        };
        Ok(out)
    }

    /// Creates a table (WAL-logged on durable engines; see
    /// [`Session::execute`] for the SQL route).
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        let record = self.persist_active().then(|| WalRecord::CreateTable {
            name: name.to_string(),
            columns: column_defs(&schema),
        });
        self.mutate_catalog_wal(record, |c| c.create_table(name, schema))
    }

    /// Drops a table (WAL-logged on durable engines).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let record = self.persist_active().then(|| WalRecord::DropTable {
            name: name.to_string(),
        });
        self.mutate_catalog_wal(record, |c| c.drop_table(name))
    }

    /// Appends already-materialized full-width rows to a table (WAL-logged on
    /// durable engines). Returns the number of rows inserted.
    pub fn insert_rows(&self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let record = self.persist_active().then(|| WalRecord::Insert {
            table: table.to_string(),
            rows: rows.clone(),
        });
        self.mutate_catalog_wal(record, |c| c.insert_rows(table, rows))
    }

    /// Switches one table's shard-placement policy, rerouting its existing rows
    /// (WAL-logged on durable engines). See `Catalog::set_table_placement`.
    pub fn set_table_placement(&self, table: &str, policy: ShardPolicy) -> Result<()> {
        let record = self.persist_active().then(|| WalRecord::SetPlacement {
            table: table.to_string(),
            hash_policy: policy == ShardPolicy::Hash,
        });
        self.mutate_catalog_wal(record, |c| c.set_table_placement(table, policy))
    }

    /// Bulk-loads rows built programmatically (used by the TPC-H style generator).
    pub fn load_rows(&self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.insert_rows(table, rows)
    }

    /// Creates a hash index on `table(column)` (WAL-logged on durable engines).
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        let record = self.persist_active().then(|| WalRecord::CreateIndex {
            table: table.to_string(),
            column: column.to_string(),
        });
        self.mutate_catalog_wal(record, |c| c.create_index(table, column))
    }

    /// Runs a sampled `ANALYZE` over every table: builds histogram/MCV statistics the
    /// cost model's range and equality selectivities consume. Bumps the catalog DDL
    /// generation, so cached plans re-optimize against the fresh statistics. Returns
    /// the analyzed table names.
    pub fn analyze(&self) -> Vec<String> {
        let config = self.analyze_config();
        let record = self.persist_active().then(|| WalRecord::Analyze {
            table: None,
            config: config.clone(),
        });
        self.mutate_catalog_wal(record, |c| Ok(c.analyze_all(&config)))
            .expect("analyze_all is infallible")
    }

    /// Runs a sampled `ANALYZE` over one table (see [`Engine::analyze`]).
    pub fn analyze_table(&self, name: &str) -> Result<()> {
        let config = self.analyze_config();
        let record = self.persist_active().then(|| WalRecord::Analyze {
            table: Some(name.to_string()),
            config: config.clone(),
        });
        self.mutate_catalog_wal(record, |c| c.analyze_table(name, &config))
    }

    // ---- durability -----------------------------------------------------------

    /// Writes a checkpoint: the full engine state (catalog DDL, every table's
    /// sharded rows and statistics, registered functions, learned feedback) as one
    /// atomic snapshot file, then truncates the WAL. Requires a durable engine
    /// (built with [`EngineBuilder::data_dir`]); returns the updated counters.
    ///
    /// Runs inside the writer critical section, so the snapshot is one consistent
    /// epoch and no write can slip between the snapshot and the WAL reset.
    pub fn checkpoint(&self) -> Result<PersistStats> {
        let _writer = lock(&self.inner.writer);
        let start = Instant::now();
        let snapshot = self.build_snapshot()?;
        let mut slot = lock(&self.inner.persist);
        let handle = slot.as_mut().ok_or_else(|| {
            Error::Persist(
                "engine has no data_dir; open it with Engine::builder().data_dir(..)".into(),
            )
        })?;
        let bytes = snapshot.save(&handle.dir)?;
        handle.wal.reset()?;
        handle.checkpoints += 1;
        handle.snapshot_bytes = bytes;
        handle.last_checkpoint_micros = start.elapsed().as_micros().max(1) as u64;
        Ok(stats_of(handle))
    }

    /// Durability counters: checkpoints completed, WAL records/bytes appended,
    /// records replayed on open. All zeros (`active == false`) on an engine without
    /// a `data_dir`.
    pub fn persist_stats(&self) -> PersistStats {
        match lock(&self.inner.persist).as_ref() {
            None => PersistStats::default(),
            Some(handle) => stats_of(handle),
        }
    }

    /// Maps the current epoch into a plain-data [`Snapshot`]. Caller holds the
    /// writer lock (or owns the only handle), so the epoch cannot move underneath.
    fn build_snapshot(&self) -> Result<Snapshot> {
        let state = read(&self.inner.state).clone();
        let catalog = state.catalog;
        let registry = state.registry;
        let mut tables = vec![];
        for name in catalog.table_names() {
            let table = catalog.table(&name)?;
            tables.push(TableSnapshot {
                name: name.clone(),
                columns: column_defs(table.schema()),
                shard_target: table.shard_target(),
                hash_policy: table.shard_policy() == ShardPolicy::Hash,
                shards: table
                    .shards()
                    .iter()
                    .map(|shard| shard.rows().to_vec())
                    .collect(),
                indexes: table.indexed_columns(),
                analyze_config: table.analyze_config().cloned(),
                // Persisting the merged statistics makes the restored table's first
                // optimize as informed as the live one's — no cold-open rescan.
                stats: Some(table.stats().inner().clone()),
                data_version: table.data_version(),
            });
        }
        let mut functions = vec![];
        for name in registry.udf_names() {
            let udf = registry.udf(&name)?;
            match &udf.source {
                Some(source) => functions.push(source.clone()),
                None => {
                    return Err(Error::Persist(format!(
                        "function '{name}' has no source text and cannot be checkpointed",
                    )))
                }
            }
        }
        Ok(Snapshot {
            ddl_generation: catalog.ddl_generation(),
            data_generation: catalog.data_generation(),
            default_shard_count: catalog.default_shard_count(),
            default_hash_placement: catalog.default_placement() == ShardPolicy::Hash,
            tables,
            functions,
            feedback: read(&self.inner.feedback).export_state(),
        })
    }

    /// Opens `dir` on a freshly built (still-private) engine: loads the snapshot if
    /// one exists, replays the WAL's valid prefix through the ordinary write path,
    /// then installs the durability handle so subsequent writes are logged. Replay
    /// itself is deliberately unlogged (the records are already on disk).
    fn open_data_dir(&self, dir: &Path) -> Result<()> {
        let mut snapshot_loaded = false;
        if let Some(snapshot) = Snapshot::load(dir)? {
            self.restore_snapshot(snapshot)?;
            snapshot_loaded = true;
        }
        let (wal, recovery) = WalWriter::open(dir)?;
        let replayed = recovery.records.len() as u64;
        for record in recovery.records {
            self.apply_wal_record(record)?;
        }
        *lock(&self.inner.persist) = Some(PersistHandle {
            dir: dir.to_path_buf(),
            wal,
            snapshot_loaded,
            replayed,
            checkpoints: 0,
            last_checkpoint_micros: 0,
            snapshot_bytes: 0,
        });
        Ok(())
    }

    /// Rebuilds live state from a decoded snapshot: tables (exact shard layout,
    /// indexes, statistics, generations), then functions (re-parsed from source, so
    /// normalization is identical by construction), then the feedback store's
    /// learned state.
    fn restore_snapshot(&self, snapshot: Snapshot) -> Result<()> {
        let Snapshot {
            ddl_generation,
            data_generation,
            default_shard_count,
            default_hash_placement,
            tables,
            functions,
            feedback,
        } = snapshot;
        self.mutate_catalog(|c| {
            c.set_default_shard_count(default_shard_count);
            c.set_default_placement(policy_of(default_hash_placement));
            for t in tables {
                let table = Table::restore(
                    &t.name,
                    schema_of(&t.columns),
                    t.shard_target,
                    policy_of(t.hash_policy),
                    t.shards,
                    &t.indexes,
                    t.analyze_config,
                    t.stats.map(TableStats::from_statistics),
                    t.data_version,
                )?;
                c.restore_table(table)?;
            }
            c.set_generations(ddl_generation, data_generation);
            Ok(())
        })?;
        for source in &functions {
            self.register_function(source)?;
        }
        read(&self.inner.feedback).import_state(feedback);
        Ok(())
    }

    /// Replays one recovered WAL record through the same (unlogged) write paths the
    /// original statement used.
    fn apply_wal_record(&self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::CreateTable { name, columns } => {
                self.mutate_catalog(|c| c.create_table(&name, schema_of(&columns)))
            }
            WalRecord::DropTable { name } => self.mutate_catalog(|c| c.drop_table(&name)),
            WalRecord::Insert { table, rows } => self
                .mutate_catalog(|c| c.insert_rows(&table, rows))
                .map(|_| ()),
            WalRecord::CreateIndex { table, column } => {
                self.mutate_catalog(|c| c.create_index(&table, &column))
            }
            WalRecord::Analyze { table, config } => match table {
                Some(name) => self.mutate_catalog(|c| c.analyze_table(&name, &config)),
                None => self
                    .mutate_catalog(|c| Ok(c.analyze_all(&config)))
                    .map(|_| ()),
            },
            WalRecord::CreateFunction { source } => self.register_function(&source),
            WalRecord::SetPlacement { table, hash_policy } => {
                self.mutate_catalog(|c| c.set_table_placement(&table, policy_of(hash_policy)))
            }
        }
    }

    // ---- shared-component accessors and configuration --------------------------

    /// The default executor configuration used by sessions without an override.
    pub fn exec_config(&self) -> ExecConfig {
        read(&self.inner.exec_config).clone()
    }

    /// Replaces the engine-wide default executor configuration and rebuilds the
    /// worker pool if the parallelism changed.
    pub fn set_exec_config(&self, config: ExecConfig) {
        let _writer = lock(&self.inner.writer);
        let normalized = config.normalized();
        let parallelism = normalized.parallelism;
        *write(&self.inner.exec_config) = normalized;
        self.resize_worker_pool(parallelism);
    }

    /// The configured executor worker-pool size.
    pub fn parallelism(&self) -> usize {
        read(&self.inner.exec_config).parallelism
    }

    /// Sets the executor worker-pool size for subsequent queries. `1` (the default)
    /// executes serially; `n > 1` fans scans, filters, projections, hash joins, hash
    /// aggregation and correlated Apply loops out to `n` persistent morsel workers.
    /// Parallel runs return byte-identical results to serial runs. The optimizer's
    /// cost model is recalibrated to the pool size, and the plan-cache key changes
    /// with it, so cached decisions never cross pool sizes.
    ///
    /// Out-of-range values are clamped (`parallelism ≥ 1`), and the persistent worker
    /// pool is rebuilt to the new size. In-flight queries keep the previous pool
    /// alive through their own pinned handle until they finish.
    pub fn set_parallelism(&self, parallelism: usize) {
        let _writer = lock(&self.inner.writer);
        {
            let mut config = write(&self.inner.exec_config);
            config.parallelism = parallelism.max(1);
            *config = config.clone().normalized();
        }
        self.resize_worker_pool(parallelism.max(1));
    }

    /// Rebuilds the worker pool to match the given parallelism (serial execution
    /// keeps an empty pool — no idle threads). Caller holds the writer lock.
    fn resize_worker_pool(&self, parallelism: usize) {
        let target = if parallelism > 1 { parallelism } else { 0 };
        let mut pool = write(&self.inner.worker_pool);
        if pool.worker_count() != target {
            *pool = Arc::new(WorkerPool::new(target));
        }
    }

    /// The persistent worker pool shared by every session's queries. Exposed for
    /// benches and diagnostics (spawn counters prove pool reuse across queries).
    pub fn worker_pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&read(&self.inner.worker_pool))
    }

    /// Lifecycle counters of the persistent worker pool (live workers, lifetime
    /// thread spawns, batches executed).
    pub fn worker_pool_stats(&self) -> WorkerPoolStats {
        read(&self.inner.worker_pool).stats()
    }

    /// The shared plan cache (for stats and explicit `clear`).
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        Arc::clone(&read(&self.inner.plan_cache))
    }

    /// Snapshot of the plan-cache counters
    /// (hits/misses/evictions/invalidations/entries).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        read(&self.inner.plan_cache).stats()
    }

    /// Replaces the plan cache with an empty one holding at most `capacity` outcomes
    /// (0 disables plan caching).
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        *write(&self.inner.plan_cache) = Arc::new(PlanCache::with_capacity(capacity));
    }

    /// The runtime feedback store (learned UDF costs, recorded q-errors).
    pub fn feedback(&self) -> Arc<FeedbackStore> {
        Arc::clone(&read(&self.inner.feedback))
    }

    /// Snapshot of the feedback counters.
    pub fn feedback_stats(&self) -> FeedbackStats {
        read(&self.inner.feedback).stats()
    }

    /// Replaces the feedback store with a fresh one using `config` (thresholds, trust
    /// floors). Learned state is discarded.
    pub fn set_feedback_config(&self, config: FeedbackConfig) {
        *write(&self.inner.feedback) = Arc::new(FeedbackStore::with_config(config));
    }

    /// Counter snapshot of the cross-query pure-UDF memo
    /// (hits/misses/insertions/evictions/invalidations/entries).
    pub fn udf_memo_stats(&self) -> UdfMemoStats {
        read(&self.inner.udf_memo).stats()
    }

    /// Replaces the cross-query pure-UDF memo with an empty one holding at most
    /// `capacity` distinct argument tuples. `0` disables memoization entirely (the
    /// per-query dedup cache controlled by `ExecConfig::udf_batching` is unaffected).
    pub fn set_udf_memo_capacity(&self, capacity: usize) {
        *write(&self.inner.udf_memo) = Arc::new(UdfMemo::with_capacity(capacity));
    }

    /// The configuration `ANALYZE` runs with.
    pub fn analyze_config(&self) -> AnalyzeConfig {
        read(&self.inner.analyze_config).clone()
    }

    /// Replaces the `ANALYZE` configuration used by subsequent analyzes.
    pub fn set_analyze_config(&self, config: AnalyzeConfig) {
        *write(&self.inner.analyze_config) = config;
    }
}

/// Configures and builds an [`Engine`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    catalog: Catalog,
    registry: FunctionRegistry,
    exec_config: ExecConfig,
    plan_cache_capacity: Option<usize>,
    udf_memo_capacity: Option<usize>,
    analyze_config: AnalyzeConfig,
    feedback_config: Option<FeedbackConfig>,
    shard_count: Option<usize>,
    default_placement: Option<ShardPolicy>,
    data_dir: Option<PathBuf>,
}

impl EngineBuilder {
    /// Seeds the engine with an existing catalog (used by [`Engine::fork`]).
    pub fn catalog(mut self, catalog: Catalog) -> EngineBuilder {
        self.catalog = catalog;
        self
    }

    /// Seeds the engine with an existing function registry.
    pub fn registry(mut self, registry: FunctionRegistry) -> EngineBuilder {
        self.registry = registry;
        self
    }

    /// The engine-wide default executor configuration.
    pub fn exec_config(mut self, config: ExecConfig) -> EngineBuilder {
        self.exec_config = config;
        self
    }

    /// Worker-pool size (clamped to ≥ 1; shorthand for setting it on the exec
    /// config).
    pub fn parallelism(mut self, parallelism: usize) -> EngineBuilder {
        self.exec_config.parallelism = parallelism.max(1);
        self
    }

    /// Plan-cache capacity in cached outcomes (0 disables plan caching).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.plan_cache_capacity = Some(capacity);
        self
    }

    /// Cross-query UDF memo capacity in distinct argument tuples (0 disables).
    pub fn udf_memo_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.udf_memo_capacity = Some(capacity);
        self
    }

    /// The configuration `ANALYZE` runs with (sample size, buckets, MCVs, seed).
    pub fn analyze_config(mut self, config: AnalyzeConfig) -> EngineBuilder {
        self.analyze_config = config;
        self
    }

    /// The runtime-feedback configuration (q-error thresholds, trust floors).
    pub fn feedback_config(mut self, config: FeedbackConfig) -> EngineBuilder {
        self.feedback_config = Some(config);
        self
    }

    /// Target shard fanout for tables created *after* the engine is built (clamped to
    /// ≥ 1; existing tables in a seeded catalog keep their layout). More shards mean
    /// finer COW inserts, finer incremental `ANALYZE`, and more min/max pruning
    /// opportunities; the scan itself parallelizes by morsel either way.
    pub fn shard_count(mut self, shard_count: usize) -> EngineBuilder {
        self.shard_count = Some(shard_count.max(1));
        self
    }

    /// Default shard-placement policy for tables created after the engine is built
    /// (`AppendToLast` when unset). `ShardPolicy::Hash` routes every row by the hash
    /// of its values, spreading inserts across all shards up front — better pruning
    /// and parallel balance, at the price of insertion-order scans.
    pub fn default_placement(mut self, policy: ShardPolicy) -> EngineBuilder {
        self.default_placement = Some(policy);
        self
    }

    /// Makes the engine durable: `dir` holds a checkpointed snapshot plus a
    /// write-ahead log. Building loads the snapshot (if any), replays the WAL's
    /// valid prefix, and logs every subsequent write; [`Engine::checkpoint`]
    /// compacts the log into a fresh snapshot. Use [`EngineBuilder::try_build`] to
    /// surface corruption as an error instead of a panic.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.data_dir = Some(dir.into());
        self
    }

    /// Builds the engine, panicking if the `data_dir` (when set) cannot be opened —
    /// the infallible path for engines without one.
    pub fn build(self) -> Engine {
        self.try_build()
            .expect("engine data_dir failed to open; use try_build() to handle corruption")
    }

    /// Builds the engine; a `data_dir` that cannot be read (I/O error, corrupt
    /// snapshot) is returned as an error. Without a `data_dir` this never fails.
    pub fn try_build(mut self) -> Result<Engine> {
        if let Some(shard_count) = self.shard_count {
            self.catalog.set_default_shard_count(shard_count);
        }
        if let Some(policy) = self.default_placement {
            self.catalog.set_default_placement(policy);
        }
        let data_dir = self.data_dir.take();
        let exec_config = self.exec_config.normalized();
        let pool_size = if exec_config.parallelism > 1 {
            exec_config.parallelism
        } else {
            0
        };
        let plan_cache = match self.plan_cache_capacity {
            Some(capacity) => PlanCache::with_capacity(capacity),
            None => PlanCache::new(),
        };
        let feedback = match self.feedback_config {
            Some(config) => FeedbackStore::with_config(config),
            None => FeedbackStore::new(),
        };
        let memo_capacity = self.udf_memo_capacity.unwrap_or(DEFAULT_UDF_MEMO_CAPACITY);
        let engine = Engine {
            inner: Arc::new(EngineInner {
                state: RwLock::new(SharedState {
                    catalog: Arc::new(self.catalog),
                    registry: Arc::new(self.registry),
                }),
                writer: Mutex::new(()),
                exec_config: RwLock::new(exec_config),
                plan_cache: RwLock::new(Arc::new(plan_cache)),
                worker_pool: RwLock::new(Arc::new(WorkerPool::new(pool_size))),
                feedback: RwLock::new(Arc::new(feedback)),
                udf_memo: RwLock::new(Arc::new(UdfMemo::with_capacity(memo_capacity))),
                analyze_config: RwLock::new(self.analyze_config),
                persist: Mutex::new(None),
            }),
        };
        if let Some(dir) = data_dir {
            engine.open_data_dir(&dir)?;
        }
        Ok(engine)
    }
}

/// One consistent snapshot of everything a single query needs. Pinning is a handful
/// of `Arc` clones; the query then runs entirely against immutable state, so
/// concurrent writers never block it (and it never blocks them).
#[derive(Debug, Clone)]
struct Pinned {
    catalog: Arc<Catalog>,
    registry: Arc<FunctionRegistry>,
    /// Resolved (per-query override → session override → engine default) and
    /// normalized executor configuration.
    exec_config: ExecConfig,
    plan_cache: Arc<PlanCache>,
    worker_pool: Arc<WorkerPool>,
    feedback: Arc<FeedbackStore>,
    udf_memo: Arc<UdfMemo>,
}

impl Pinned {
    /// Applies the cleanup/normalisation rules to a query plan through the optimizer's
    /// cleanup pipeline. Normalisation is best-effort: a (theoretically impossible)
    /// budget exhaustion in the cleanup rules keeps the plan as-is instead of failing.
    fn normalize_plan(&self, plan: &RelExpr) -> RelExpr {
        let provider = CatalogProvider::new(&self.catalog, &self.registry);
        // Validation is off here by design: these are UDF *body* fragments whose
        // local variables and formal parameters appear as free columns/params until
        // the interpreter (or the algebraizer) binds them, so the plan validator
        // would flag them. Body soundness is covered by `decorr_analysis::analyze_body`
        // at registration instead.
        PassManager::cleanup_pipeline()
            .with_validation(false)
            .optimize(plan, &self.registry, &provider, Some(self.catalog.as_ref()))
            .map(|o| o.plan)
            .unwrap_or_else(|_| plan.clone())
    }

    /// Builds the pass pipeline for the requested execution strategy.
    fn pass_manager_for(strategy: ExecutionStrategy) -> PassManager {
        match strategy {
            ExecutionStrategy::Iterative => PassManager::cleanup_pipeline(),
            ExecutionStrategy::Decorrelated => {
                PassManager::decorrelation_pipeline().with_mode(OptimizeMode::ForceDecorrelated)
            }
            ExecutionStrategy::Auto => PassManager::decorrelation_pipeline(),
        }
    }

    /// Runs the optimizer pipeline for the given strategy over an already-planned
    /// query, with the shared plan cache attached: a repeated plan under an unchanged
    /// registry/schema skips the pipeline entirely — including when a *different*
    /// session warmed the cache.
    fn optimize_plan(
        &self,
        plan: &RelExpr,
        strategy: ExecutionStrategy,
        capture_snapshots: bool,
        parallelism: usize,
        validate_plans: Option<bool>,
    ) -> Result<OptimizeOutcome> {
        let provider = CatalogProvider::new(&self.catalog, &self.registry);
        let mut manager = Pinned::pass_manager_for(strategy)
            .with_snapshots(capture_snapshots)
            .with_parallelism(parallelism)
            .with_plan_cache(Arc::clone(&self.plan_cache))
            .with_feedback(Arc::clone(&self.feedback));
        if let Some(validate) = validate_plans {
            manager = manager.with_validation(validate);
        }
        manager.optimize(plan, &self.registry, &provider, Some(self.catalog.as_ref()))
    }

    /// Normalises every query embedded in a UDF body.
    fn normalize_udf(&self, mut udf: decorr_udf::UdfDefinition) -> decorr_udf::UdfDefinition {
        fn walk(stmts: &mut [decorr_udf::Statement], normalize: &dyn Fn(&RelExpr) -> RelExpr) {
            for stmt in stmts {
                match stmt {
                    decorr_udf::Statement::SelectInto { query, .. } => *query = normalize(query),
                    decorr_udf::Statement::CursorLoop { query, body, .. } => {
                        *query = normalize(query);
                        walk(body, normalize);
                    }
                    decorr_udf::Statement::While { body, .. } => walk(body, normalize),
                    decorr_udf::Statement::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, normalize);
                        walk(else_branch, normalize);
                    }
                    decorr_udf::Statement::Return {
                        expr: Some(decorr_algebra::ScalarExpr::ScalarSubquery(q)),
                    } => **q = normalize(q),
                    decorr_udf::Statement::Assign {
                        expr: decorr_algebra::ScalarExpr::ScalarSubquery(q),
                        ..
                    } => **q = normalize(q),
                    _ => {}
                }
            }
        }
        let normalize = |plan: &RelExpr| self.normalize_plan(plan);
        walk(&mut udf.body, &normalize);
        udf
    }

    /// Builds the per-UDF memo-epoch map for this snapshot. A memoized result is
    /// served only while its epoch matches, i.e. while the registry generation, the
    /// DDL generation and the relevant *data* version are unchanged. The data
    /// component covers the UDF's full (transitive) read set as inferred by
    /// [`decorr_analysis::analyze_body`]: a body that reads no table gets a constant,
    /// a body with an exact read set gets a fingerprint of the sorted
    /// `(table, data_version)` pairs — so inserts into tables *outside* that set
    /// don't evict its results — and an opaque read set (the body calls an
    /// unregistered function) falls back to the catalog-wide data generation.
    fn memo_epochs(&self) -> Arc<BTreeMap<String, MemoEpoch>> {
        let registry_gen = self.registry.generation();
        let ddl_gen = self.catalog.ddl_generation();
        let catalog_wide = self.catalog.data_generation();
        let mut map = BTreeMap::new();
        for name in self.registry.udf_names() {
            let Ok(udf) = self.registry.udf(&name) else {
                continue;
            };
            let facts = decorr_analysis::analyze_body(udf, &self.registry);
            let data = if !facts.reads_exact {
                catalog_wide
            } else if facts.table_reads.is_empty() {
                0
            } else {
                let mut hasher = decorr_common::FnvHasher::default();
                let mut opaque = false;
                for table in &facts.table_reads {
                    match self.catalog.table(table) {
                        Ok(t) => {
                            hasher.write_bytes(table.as_bytes());
                            hasher.write_u64(t.data_version());
                        }
                        // A read of a table the catalog no longer (or doesn't yet)
                        // know: be conservative and key catalog-wide.
                        Err(_) => opaque = true,
                    }
                }
                if opaque {
                    catalog_wide
                } else {
                    hasher.finish()
                }
            };
            map.insert(name, (registry_gen, ddl_gen, data));
        }
        Arc::new(map)
    }

    /// Runs an already-planned query against this snapshot. Every strategy routes
    /// through the optimizer's [`PassManager`]: the iterative strategy runs the
    /// normalisation pipeline only, the other strategies run the full decorrelation
    /// pipeline (with the cost-based choice for [`ExecutionStrategy::Auto`]).
    fn run_plan(
        &self,
        plan: &RelExpr,
        strategy: ExecutionStrategy,
        capture_snapshots: bool,
        validate_plans: Option<bool>,
    ) -> Result<QueryResult> {
        let config = &self.exec_config;
        let outcome = self.optimize_plan(
            plan,
            strategy,
            capture_snapshots,
            config.parallelism,
            validate_plans,
        )?;
        if strategy == ExecutionStrategy::Decorrelated && !outcome.decorrelated {
            return Err(Error::Rewrite(format!(
                "query could not be decorrelated: {}",
                outcome.notes.join("; ")
            )));
        }
        // Register auxiliary aggregates in a per-query copy of the registry; plans
        // without auxiliary aggregates (the common case) share the engine's registry
        // snapshot without copying it. The memo epochs below use the *base* registry
        // generation: the clone registers aggregates without changing any scalar UDF
        // a memoized result could depend on.
        let effective_registry = if outcome.aux_aggregates.is_empty() {
            Arc::clone(&self.registry)
        } else {
            let mut registry = (*self.registry).clone();
            for agg in &outcome.aux_aggregates {
                registry.register_aggregate(agg.clone());
            }
            Arc::new(registry)
        };
        // Attach the engine's persistent pool: worker threads outlive this query.
        let mut executor = Executor::with_config(
            Arc::clone(&self.catalog),
            effective_registry,
            config.clone(),
        )
        .with_worker_pool(Arc::clone(&self.worker_pool));
        if config.udf_memoization && self.udf_memo.is_enabled() {
            executor = executor
                .with_udf_memo(Arc::clone(&self.udf_memo))
                .with_memo_epochs(self.memo_epochs());
        }
        if config.udf_batching {
            executor =
                executor.with_udf_dedup(Arc::new(UdfMemo::with_capacity(UDF_DEDUP_CAPACITY)));
        }
        if config.cost_ordered_predicates {
            let mut hints: BTreeMap<String, UdfRuntimeHint> = BTreeMap::new();
            for (name, mean_seconds) in self.feedback.udf_mean_seconds() {
                hints.insert(
                    name,
                    UdfRuntimeHint {
                        mean_seconds,
                        selectivity: 0.5,
                    },
                );
            }
            for (name, selectivity) in self.feedback.udf_selectivities() {
                hints
                    .entry(name)
                    .and_modify(|hint| hint.selectivity = selectivity)
                    .or_insert(UdfRuntimeHint {
                        mean_seconds: 1e-4,
                        selectivity,
                    });
            }
            if !hints.is_empty() {
                executor = executor.with_udf_hints(Arc::new(hints));
            }
        }
        let result_set = executor.execute(&outcome.plan)?;
        let (estimated_rows, cardinality_q_error, udf_timings) =
            self.fold_feedback(plan, &outcome, &result_set, &executor, config.parallelism);
        Ok(QueryResult {
            schema: result_set.schema,
            rows: result_set.rows,
            strategy,
            used_decorrelated_plan: outcome.used_decorrelated_plan,
            rewrite_notes: outcome.notes,
            applied_rules: outcome.applied_rules,
            exec_stats: executor.stats_snapshot(),
            rewrite_report: outcome.report,
            exec_trace: executor.trace_snapshot(),
            estimated_rows,
            cardinality_q_error,
            udf_timings,
            node_cardinalities: executor.cardinality_snapshot(),
        })
    }

    /// Folds one execution's ground truth into the shared feedback store: the
    /// estimated vs actual root cardinality and the measured per-UDF invocation
    /// wall-clocks. When the observed q-error (cardinality or UDF cost) first crosses
    /// the configured threshold for this plan fingerprint, the stale cost-based
    /// plan-cache entries are invalidated so the next optimize — from *any* session —
    /// re-decides with the calibrated numbers.
    fn fold_feedback(
        &self,
        input_plan: &RelExpr,
        outcome: &OptimizeOutcome,
        result_set: &decorr_exec::ResultSet,
        executor: &Executor,
        parallelism: usize,
    ) -> (f64, f64, Vec<decorr_exec::UdfTiming>) {
        let params = CostParams::new(parallelism);
        // The decision already carries both alternatives' estimates; recompute only
        // when the pipeline made no decision (iterative strategy, UDF-free queries).
        let estimated_rows = match &outcome.decision {
            Some(decision) if outcome.used_decorrelated_plan => decision.decorrelated.cardinality,
            Some(decision) => decision.iterative.cardinality,
            None => {
                estimate_with(&outcome.plan, &self.catalog, &self.registry, &params).cardinality
            }
        };
        let actual_rows = result_set.rows.len() as u64;
        let fingerprint = outcome
            .report
            .cache
            .as_ref()
            .map(|activity| activity.key_hash)
            .unwrap_or_else(|| plan_fingerprint(input_plan));
        let cardinality_q = self
            .feedback
            .record_query(fingerprint, estimated_rows, actual_rows);
        let mut worst_q = cardinality_q;
        let udf_timings = executor.udf_timing_snapshot();
        for timing in &udf_timings {
            let static_units =
                estimated_udf_invocation_cost(&timing.name, &self.catalog, &self.registry, &params);
            // `timing.invocations` counts *evaluated* calls only — memo/dedup hits
            // are recorded separately so learned per-call costs don't drift to zero
            // as the caches warm up.
            let cost_q = self.feedback.record_udf_timing(
                &timing.name,
                timing.invocations,
                timing.total,
                static_units,
                params.row_op_seconds,
            );
            worst_q = worst_q.max(cost_q);
            self.feedback
                .record_udf_dedup(&timing.name, timing.invocations, timing.hits);
        }
        for selectivity in executor.udf_selectivity_snapshot() {
            self.feedback.record_udf_predicate(
                &selectivity.name,
                selectivity.evaluated,
                selectivity.passed,
            );
        }
        if self.feedback.flag_for_invalidation(fingerprint, worst_q) {
            self.plan_cache.invalidate_fingerprint(fingerprint);
        }
        (estimated_rows, cardinality_q, udf_timings)
    }

    /// Materializes the value rows of an `INSERT` (constants and constant
    /// arithmetic) against this snapshot.
    fn materialize_insert_rows(
        &self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<decorr_algebra::ScalarExpr>],
    ) -> Result<Vec<Row>> {
        let schema = self.catalog.table_schema(table)?;
        let executor = Executor::with_config(
            Arc::clone(&self.catalog),
            Arc::clone(&self.registry),
            self.exec_config.clone(),
        );
        let env = Env::root();
        let mut materialized = vec![];
        for row in rows {
            let values: Result<Vec<Value>> =
                row.iter().map(|e| executor.eval_expr(e, &env)).collect();
            let values = values?;
            let full_row = match columns {
                None => Row::new(values),
                Some(cols) => {
                    if cols.len() != values.len() {
                        return Err(Error::Execution(format!(
                            "INSERT provides {} values for {} columns",
                            values.len(),
                            cols.len()
                        )));
                    }
                    let mut full = vec![Value::Null; schema.len()];
                    for (c, v) in cols.iter().zip(values) {
                        let idx = schema.index_of(None, c)?;
                        full[idx] = v;
                    }
                    Row::new(full)
                }
            };
            materialized.push(full_row);
        }
        Ok(materialized)
    }
}

/// A per-client handle onto a shared [`Engine`].
///
/// Sessions are cheap (`Clone` copies an `Arc` handle plus the per-session config)
/// and carry only per-client state: an optional executor-config override and a
/// default [`ExecutionStrategy`]. All data, functions, caches and feedback live in
/// the engine and are shared across sessions.
///
/// Every statement a session executes pins a fresh consistent snapshot, so a session
/// always sees its own earlier writes (and any writes other sessions have committed
/// by then), while long-running queries are never torn by concurrent mutations.
#[derive(Debug, Clone)]
pub struct Session {
    engine: Engine,
    exec_config: Option<ExecConfig>,
    strategy: ExecutionStrategy,
}

impl Session {
    /// Opens a session on `engine` (equivalent to [`Engine::session`]).
    pub fn new(engine: Engine) -> Session {
        Session {
            engine,
            exec_config: None,
            strategy: ExecutionStrategy::default(),
        }
    }

    /// The shared engine this session runs against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Sets this session's executor-config override (`None` uses the engine
    /// default). Only this session is affected.
    pub fn set_exec_config(&mut self, config: Option<ExecConfig>) {
        self.exec_config = config.map(|c| c.normalized());
    }

    /// Builder-style [`Session::set_exec_config`].
    pub fn with_exec_config(mut self, config: ExecConfig) -> Session {
        self.set_exec_config(Some(config));
        self
    }

    /// This session's executor-config override, if any.
    pub fn exec_config(&self) -> Option<&ExecConfig> {
        self.exec_config.as_ref()
    }

    /// Sets the default execution strategy used by [`Session::query`] (per-query
    /// [`QueryOptions`] still win).
    pub fn set_strategy(&mut self, strategy: ExecutionStrategy) {
        self.strategy = strategy;
    }

    /// Builder-style [`Session::set_strategy`].
    pub fn with_strategy(mut self, strategy: ExecutionStrategy) -> Session {
        self.set_strategy(strategy);
        self
    }

    pub fn strategy(&self) -> ExecutionStrategy {
        self.strategy
    }

    /// Pins a snapshot using this session's config override (unless the per-query
    /// options carry their own).
    fn pin(&self, options: &QueryOptions) -> Pinned {
        let config = options.exec_config.as_ref().or(self.exec_config.as_ref());
        self.engine.pin(config)
    }

    /// Runs a `SELECT` query with this session's default strategy.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_with(
            sql,
            &QueryOptions {
                strategy: self.strategy,
                ..QueryOptions::default()
            },
        )
    }

    /// Runs a `SELECT` query with explicit options.
    pub fn query_with(&self, sql: &str, options: &QueryOptions) -> Result<QueryResult> {
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        self.run_plan(&plan, options)
    }

    /// Runs an already-planned query against a freshly pinned snapshot.
    pub fn run_plan(&self, plan: &RelExpr, options: &QueryOptions) -> Result<QueryResult> {
        self.pin(options).run_plan(
            plan,
            options.strategy,
            options.capture_snapshots,
            options.validate_plans,
        )
    }

    /// Executes one or more statements (DDL, DML, `CREATE FUNCTION`, or queries) and
    /// returns a summary per statement. Statements run sequentially; each pins a
    /// fresh snapshot, so later statements see earlier ones' effects.
    pub fn execute(&self, sql: &str) -> Result<Vec<ExecutionSummary>> {
        let statements = parse_statements(sql)?;
        let mut out = vec![];
        for stmt in statements {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    fn execute_statement(&self, stmt: SqlStatement) -> Result<ExecutionSummary> {
        match stmt {
            SqlStatement::CreateTable { name, columns } => {
                self.engine.create_table(&name, Schema::new(columns))?;
                Ok(ExecutionSummary::TableCreated(name))
            }
            SqlStatement::DropTable { name } => {
                self.engine.drop_table(&name)?;
                Ok(ExecutionSummary::TableDropped(name))
            }
            SqlStatement::CreateIndex { table, column } => {
                self.engine.create_index(&table, &column)?;
                Ok(ExecutionSummary::IndexCreated { table, column })
            }
            SqlStatement::Insert {
                table,
                columns,
                rows,
            } => {
                let pinned = self.pin(&QueryOptions::default());
                let materialized =
                    pinned.materialize_insert_rows(&table, columns.as_deref(), &rows)?;
                let n = self.engine.insert_rows(&table, materialized)?;
                Ok(ExecutionSummary::RowsInserted(n))
            }
            SqlStatement::CreateFunction(udf) => {
                let name = udf.name.clone();
                self.engine.register_udf_definition(udf)?;
                Ok(ExecutionSummary::FunctionCreated(name))
            }
            SqlStatement::Analyze { table } => {
                let tables = match table {
                    Some(name) => {
                        self.engine.analyze_table(&name)?;
                        vec![name]
                    }
                    None => self.engine.analyze(),
                };
                Ok(ExecutionSummary::Analyzed { tables })
            }
            SqlStatement::Query(select) => {
                let plan = plan_select(&select)?;
                let result = self.run_plan(
                    &plan,
                    &QueryOptions {
                        strategy: self.strategy,
                        ..QueryOptions::default()
                    },
                )?;
                Ok(ExecutionSummary::QueryRows(result.rows.len()))
            }
        }
    }

    /// Registers a UDF from its `CREATE FUNCTION` source (see
    /// [`Engine::register_function`]).
    pub fn register_function(&self, sql: &str) -> Result<()> {
        self.engine.register_function(sql)
    }

    /// Returns an EXPLAIN-style report: the original plan, the rewritten plan (if
    /// any), the rules that fired, the per-pass timings and rule fire counts recorded
    /// by the PassManager, and the cost-based decision.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        let pinned = self.pin(&QueryOptions::default());
        // EXPLAIN is the diagnostic entry point: always capture plan snapshots.
        let outcome = pinned.optimize_plan(
            &plan,
            ExecutionStrategy::Auto,
            true,
            pinned.exec_config.parallelism,
            None,
        )?;
        let mut out = String::new();
        out.push_str("== original (iterative) plan ==\n");
        out.push_str(&explain(&outcome.iterative_plan));
        if let Some(rewritten) = &outcome.rewritten_plan {
            out.push_str("\n== decorrelated plan ==\n");
            out.push_str(&explain(rewritten));
            out.push_str("\n== rules applied ==\n");
            out.push_str(&outcome.applied_rules.join(", "));
            out.push('\n');
            if let Some(decision) = &outcome.decision {
                out.push_str("\n== cost-based decision ==\n");
                out.push_str(&decision.summary());
                out.push('\n');
            }
        } else {
            out.push_str("\n== decorrelation ==\nnot performed: ");
            out.push_str(&outcome.notes.join("; "));
            out.push('\n');
        }
        out.push_str("\n== optimizer passes ==\n");
        out.push_str(&outcome.report.render());
        Ok(out)
    }

    /// Like [`Session::explain`], but additionally *executes* the query and appends
    /// the runtime side of the story: the executor counters, the per-operator
    /// execution trace (morsels dispatched, per-worker row spread, rows in/out,
    /// operator wall clock), the **estimated vs actual rows per plan operator** (the
    /// statistics subsystem's accuracy, as q-errors), and the feedback the execution
    /// fed back into the cost model (measured UDF costs, recorded q-errors).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let mut out = self.explain(sql)?;
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        let pinned = self.pin(&QueryOptions::default());
        // Resolve the plan that is about to execute *before* executing it: the
        // execution's own feedback can invalidate this shape and flip the next
        // optimize's decision, and the estimates table must describe the plan the
        // actuals were recorded for. `run_plan` below re-optimizes internally, but
        // nothing executes in between, so it is served this exact cached outcome.
        let outcome = pinned.optimize_plan(
            &plan,
            ExecutionStrategy::Auto,
            false,
            pinned.exec_config.parallelism,
            None,
        )?;
        // Execute in diagnostic mode against the *same* pinned snapshot: per-node
        // actual cardinalities are recorded, keyed by structural fingerprint.
        let mut diagnostic = pinned.clone();
        diagnostic.exec_config.collect_cardinalities = true;
        let result = diagnostic.run_plan(&plan, ExecutionStrategy::Auto, false, None)?;
        out.push_str("\n== execution ==\n");
        out.push_str(&format!(
            "rows={} parallelism={} · scanned={} shards-pruned={} index-lookups={} \
             udf-invocations={} udf-memo-hits={} udf-dedup-hits={} udf-batched={} \
             subqueries={} hash-joins={} nl-joins={} morsels={} pipelined-ops={} \
             pool-spawns={}\n",
            result.rows.len(),
            pinned.exec_config.parallelism,
            result.exec_stats.rows_scanned,
            result.exec_stats.shards_pruned,
            result.exec_stats.index_lookups,
            result.exec_stats.udf_invocations,
            result.exec_stats.udf_memo_hits,
            result.exec_stats.udf_dedup_hits,
            result.exec_stats.udf_batch_evals,
            result.exec_stats.subqueries_executed,
            result.exec_stats.hash_joins,
            result.exec_stats.nested_loop_joins,
            result.exec_stats.morsels_dispatched,
            result.exec_stats.pipelined_operators,
            result.exec_stats.pool_spawns,
        ));
        // Estimated vs actual rows per operator of the executed plan.
        let params = CostParams::new(pinned.exec_config.parallelism);
        let estimates =
            estimate_per_node(&outcome.plan, &pinned.catalog, &pinned.registry, &params);
        out.push_str("\n== cardinalities (estimated vs actual) ==\n");
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>8} {:>8}\n",
            "operator", "est rows", "actual rows", "execs", "q-error"
        ));
        for estimate in &estimates {
            match result
                .node_cardinalities
                .iter()
                .find(|n| n.fingerprint == estimate.fingerprint)
            {
                Some(actual) => out.push_str(&format!(
                    "{:<24} {:>12.0} {:>12.1} {:>8} {:>8.1}\n",
                    estimate.operator,
                    estimate.cardinality,
                    actual.mean_rows(),
                    actual.executions,
                    q_error(estimate.cardinality, actual.mean_rows()),
                )),
                None => out.push_str(&format!(
                    "{:<24} {:>12.0} {:>12} {:>8} {:>8}\n",
                    estimate.operator, estimate.cardinality, "(fused)", "-", "-"
                )),
            }
        }
        out.push_str("\n== feedback ==\n");
        out.push_str(&format!(
            "root cardinality: estimated {:.0}, actual {} (q-error {:.2})\n",
            result.estimated_rows,
            result.rows.len(),
            result.cardinality_q_error,
        ));
        for timing in &result.udf_timings {
            out.push_str(&format!(
                "udf {}: {} invocation(s), {} cache hit(s), mean {:.3} ms\n",
                timing.name,
                timing.invocations,
                timing.hits,
                timing.mean().as_secs_f64() * 1e3,
            ));
        }
        let feedback = self.engine.feedback_stats();
        out.push_str(&format!(
            "feedback store: {} quer{} recorded, {} udf(s) tracked, \
             {} invalidation(s) flagged\n",
            feedback.queries_recorded,
            if feedback.queries_recorded == 1 {
                "y"
            } else {
                "ies"
            },
            feedback.udfs_tracked,
            feedback.invalidations_flagged,
        ));
        let persist = self.engine.persist_stats();
        if persist.active {
            out.push_str(&format!(
                "durability: {} checkpoint(s), {} WAL record(s) appended ({} bytes), \
                 {} record(s) replayed on open\n",
                persist.checkpoints,
                persist.wal_records_appended,
                persist.wal_bytes_appended,
                persist.wal_records_replayed,
            ));
        }
        out.push_str("\n== parallel operators ==\n");
        out.push_str(&result.exec_trace.render());
        Ok(out)
    }

    /// The standalone rewrite-tool entry point (Figure 9): returns the rewritten SQL
    /// text and the auxiliary aggregate definitions, without executing anything.
    pub fn rewrite_sql(&self, sql: &str) -> Result<RewriteReport> {
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        let pinned = self.pin(&QueryOptions::default());
        let provider = CatalogProvider::new(&pinned.catalog, &pinned.registry);
        let outcome = PassManager::rewrite_pipeline().optimize(
            &plan,
            &pinned.registry,
            &provider,
            Some(pinned.catalog.as_ref()),
        )?;
        Ok(RewriteReport {
            decorrelated: outcome.decorrelated,
            rewritten_sql: plan_to_sql(&outcome.plan),
            auxiliary_functions: outcome
                .aux_aggregates
                .iter()
                .map(|a| a.to_string())
                .collect(),
            applied_rules: outcome.applied_rules,
            notes: outcome.notes,
        })
    }
}

/// An embeddable in-memory SQL engine with UDF decorrelation: a thin single-session
/// facade over a private [`Engine`].
///
/// This is the convenience entry point for embedded, single-client use — examples,
/// tests and benches. Multi-client serving should hold one [`Engine`] and open one
/// [`Session`] per client instead; [`Database::engine`] exposes the engine behind an
/// existing `Database` so the two styles compose.
///
/// The `&mut self` receivers on mutating methods are kept for API familiarity (and
/// to make single-threaded ownership obvious); the engine underneath is fully
/// thread-safe.
#[derive(Debug)]
pub struct Database {
    engine: Engine,
    session: Session,
}

impl Clone for Database {
    /// Clones the data and functions but gives the clone a **fresh, empty** plan
    /// cache (same capacity), its own worker pool, feedback store and UDF memo — see
    /// [`Engine::fork`]. Clones mutate their catalogs independently (copy-on-write:
    /// table storage is shared until written).
    fn clone(&self) -> Database {
        Database::from_engine(self.engine.fork())
    }
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    pub fn new() -> Database {
        Database::from_engine(Engine::new())
    }

    pub fn with_exec_config(exec_config: ExecConfig) -> Database {
        Database::from_engine(Engine::builder().exec_config(exec_config).build())
    }

    /// Wraps an existing engine in a single-session facade.
    pub fn from_engine(engine: Engine) -> Database {
        let session = engine.session();
        Database { engine, session }
    }

    /// The shared engine underneath — open more sessions on it with
    /// [`Engine::session`] to serve concurrent clients against this database.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The facade's own session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Replaces the plan cache with an empty one holding at most `capacity` outcomes
    /// (0 disables plan caching).
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.engine.set_plan_cache_capacity(capacity);
    }

    /// Replaces the cross-query pure-UDF memo with an empty one holding at most
    /// `capacity` distinct argument tuples. `0` disables memoization entirely (the
    /// per-query dedup cache controlled by `ExecConfig::udf_batching` is unaffected).
    pub fn set_udf_memo_capacity(&mut self, capacity: usize) {
        self.engine.set_udf_memo_capacity(capacity);
    }

    /// Counter snapshot of the cross-query pure-UDF memo
    /// (hits/misses/insertions/evictions/invalidations/entries).
    pub fn udf_memo_stats(&self) -> UdfMemoStats {
        self.engine.udf_memo_stats()
    }

    /// Sets the executor worker-pool size for subsequent queries (see
    /// [`Engine::set_parallelism`]).
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.engine.set_parallelism(parallelism);
    }

    /// The persistent worker pool shared by every query's executor. Exposed for
    /// benches and diagnostics (spawn counters prove pool reuse across queries).
    pub fn worker_pool(&self) -> Arc<WorkerPool> {
        self.engine.worker_pool()
    }

    /// Lifecycle counters of the persistent worker pool (live workers, lifetime
    /// thread spawns, batches executed).
    pub fn worker_pool_stats(&self) -> WorkerPoolStats {
        self.engine.worker_pool_stats()
    }

    /// The configured executor worker-pool size.
    pub fn parallelism(&self) -> usize {
        self.engine.parallelism()
    }

    /// The default executor configuration used by queries without a per-query
    /// override.
    pub fn exec_config(&self) -> ExecConfig {
        self.engine.exec_config()
    }

    /// The shared plan cache (for stats and explicit `clear`).
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        self.engine.plan_cache()
    }

    /// Snapshot of the plan-cache counters
    /// (hits/misses/evictions/invalidations/entries).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.engine.plan_cache_stats()
    }

    /// The runtime feedback store (learned UDF costs, recorded q-errors).
    pub fn feedback(&self) -> Arc<FeedbackStore> {
        self.engine.feedback()
    }

    /// Snapshot of the feedback counters.
    pub fn feedback_stats(&self) -> FeedbackStats {
        self.engine.feedback_stats()
    }

    /// Replaces the feedback store with a fresh one using `config` (thresholds, trust
    /// floors). Learned state is discarded.
    pub fn set_feedback_config(&mut self, config: FeedbackConfig) {
        self.engine.set_feedback_config(config);
    }

    /// The configuration `ANALYZE` runs with.
    pub fn analyze_config(&self) -> AnalyzeConfig {
        self.engine.analyze_config()
    }

    /// Replaces the `ANALYZE` configuration used by subsequent analyzes.
    pub fn set_analyze_config(&mut self, config: AnalyzeConfig) {
        self.engine.set_analyze_config(config);
    }

    /// Runs a sampled `ANALYZE` over every table (see [`Engine::analyze`]).
    pub fn analyze(&mut self) -> Vec<String> {
        self.engine.analyze()
    }

    /// Runs a sampled `ANALYZE` over one table (see [`Engine::analyze_table`]).
    pub fn analyze_table(&mut self, name: &str) -> Result<()> {
        self.engine.analyze_table(name)
    }

    /// The current catalog snapshot (pinned: concurrent writes build new epochs).
    pub fn catalog(&self) -> Arc<Catalog> {
        self.engine.catalog()
    }

    /// The current function-registry snapshot.
    pub fn registry(&self) -> Arc<FunctionRegistry> {
        self.engine.registry()
    }

    /// Runs a catalog mutation (see [`Engine::mutate_catalog`]).
    pub fn mutate_catalog<R>(&mut self, f: impl FnOnce(&mut Catalog) -> Result<R>) -> Result<R> {
        self.engine.mutate_catalog(f)
    }

    /// Runs a registry mutation (see [`Engine::mutate_registry`]).
    pub fn mutate_registry<R>(&mut self, f: impl FnOnce(&mut FunctionRegistry) -> R) -> R {
        self.engine.mutate_registry(f)
    }

    /// Creates a hash index on `table(column)`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        self.engine.create_index(table, column)
    }

    /// Executes one or more statements (DDL, DML, `CREATE FUNCTION`, or queries) and
    /// returns a summary per statement.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<ExecutionSummary>> {
        self.session.execute(sql)
    }

    /// Registers a UDF from its `CREATE FUNCTION` source (see
    /// [`Engine::register_function`]).
    pub fn register_function(&mut self, sql: &str) -> Result<()> {
        self.engine.register_function(sql)
    }

    /// Runs a `SELECT` query with the default (cost-based) strategy.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.session.query(sql)
    }

    /// Runs a `SELECT` query with explicit options.
    pub fn query_with(&self, sql: &str, options: &QueryOptions) -> Result<QueryResult> {
        self.session.query_with(sql, options)
    }

    /// Runs an already-planned query (see [`Session::run_plan`]).
    pub fn run_plan(&self, plan: &RelExpr, options: &QueryOptions) -> Result<QueryResult> {
        self.session.run_plan(plan, options)
    }

    /// Returns an EXPLAIN-style report (see [`Session::explain`]).
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.session.explain(sql)
    }

    /// EXPLAIN plus execution diagnostics (see [`Session::explain_analyze`]).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        self.session.explain_analyze(sql)
    }

    /// The standalone rewrite-tool entry point (see [`Session::rewrite_sql`]).
    pub fn rewrite_sql(&self, sql: &str) -> Result<RewriteReport> {
        self.session.rewrite_sql(sql)
    }

    /// Bulk-loads rows built programmatically (used by the TPC-H style generator).
    pub fn load_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.engine.load_rows(table, rows)
    }

    /// Opens a durable database at `dir` (see [`EngineBuilder::data_dir`]): loads
    /// the snapshot if one exists, replays the WAL, and logs subsequent writes.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Database> {
        Ok(Database::from_engine(
            Engine::builder().data_dir(dir).try_build()?,
        ))
    }

    /// Writes a checkpoint and truncates the WAL (see [`Engine::checkpoint`]).
    pub fn checkpoint(&mut self) -> Result<PersistStats> {
        self.engine.checkpoint()
    }

    /// Durability counters (see [`Engine::persist_stats`]).
    pub fn persist_stats(&self) -> PersistStats {
        self.engine.persist_stats()
    }

    /// Switches one table's shard-placement policy, rerouting its existing rows
    /// (see [`Engine::set_table_placement`]).
    pub fn set_table_placement(&mut self, table: &str, policy: ShardPolicy) -> Result<()> {
        self.engine.set_table_placement(table, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.execute(
            "create table customer(custkey int not null, name varchar(25)); \
             create table orders(orderkey int not null, custkey int, totalprice float); \
             create index on orders(custkey);",
        )
        .unwrap();
        let customers: Vec<Row> = (1..=20i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("Customer#{i}"))]))
            .collect();
        db.load_rows("customer", customers).unwrap();
        let mut orders = vec![];
        let mut ok = 0i64;
        for i in 1..=20i64 {
            for _ in 0..i {
                ok += 1;
                orders.push(Row::new(vec![
                    Value::Int(ok),
                    Value::Int(i),
                    Value::Float(1000.0 * i as f64),
                ]));
            }
        }
        db.load_rows("orders", orders).unwrap();
        db.register_function(
            "create function service_level(int ckey) returns varchar(10) as \
             begin \
               float totalbusiness; string level; \
               select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
               if (totalbusiness > 200000) level = 'Platinum'; \
               else if (totalbusiness > 50000) level = 'Gold'; \
               else level = 'Regular'; \
               return level; \
             end",
        )
        .unwrap();
        db
    }

    #[test]
    fn ddl_dml_and_simple_query() {
        let mut db = Database::new();
        let summaries = db
            .execute("create table t(x int, y varchar(5)); insert into t values (1, 'a'), (2, 'b')")
            .unwrap();
        assert_eq!(summaries[1], ExecutionSummary::RowsInserted(2));
        let result = db.query("select x from t where y = 'b'").unwrap();
        assert_eq!(result.column("x").unwrap(), vec![Value::Int(2)]);
    }

    #[test]
    fn iterative_and_decorrelated_strategies_agree() {
        let db = sample_db();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let iterative = db.query_with(sql, &QueryOptions::iterative()).unwrap();
        let decorrelated = db.query_with(sql, &QueryOptions::decorrelated()).unwrap();
        assert!(!iterative.used_decorrelated_plan);
        assert!(decorrelated.used_decorrelated_plan);
        assert!(iterative.exec_stats.udf_invocations >= 20);
        assert_eq!(decorrelated.exec_stats.udf_invocations, 0);
        assert_eq!(
            iterative
                .canonical_projection(&["custkey", "level"])
                .unwrap(),
            decorrelated
                .canonical_projection(&["custkey", "level"])
                .unwrap()
        );
    }

    #[test]
    fn auto_strategy_runs_and_matches_iterative() {
        let db = sample_db();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let auto = db.query(sql).unwrap();
        let iterative = db.query_with(sql, &QueryOptions::iterative()).unwrap();
        assert_eq!(
            auto.canonical_projection(&["custkey", "level"]).unwrap(),
            iterative
                .canonical_projection(&["custkey", "level"])
                .unwrap()
        );
    }

    #[test]
    fn explain_reports_both_plans_and_decision() {
        let db = sample_db();
        let text = db
            .explain("select custkey, service_level(custkey) as level from customer")
            .unwrap();
        assert!(text.contains("original (iterative) plan"));
        assert!(text.contains("decorrelated plan"));
        assert!(text.contains("Join(left outer)"));
        assert!(text.contains("cost-based decision"));
    }

    #[test]
    fn rewrite_sql_produces_flat_query_text() {
        let db = sample_db();
        let report = db
            .rewrite_sql("select custkey, service_level(custkey) as level from customer")
            .unwrap();
        assert!(report.decorrelated);
        let sql = report.rewritten_sql.to_lowercase();
        assert!(sql.contains("left outer join"), "sql: {sql}");
        assert!(sql.contains("group by"), "sql: {sql}");
        assert!(sql.contains("case when"), "sql: {sql}");
    }

    #[test]
    fn decorrelated_strategy_fails_for_non_decorrelatable_udf() {
        let mut db = sample_db();
        db.register_function(
            "create function spin(int n) returns int as \
             begin int i = 0; while (i < n) begin i = i + 1; end return i; end",
        )
        .unwrap();
        let err = db
            .query_with(
                "select spin(custkey) from customer",
                &QueryOptions::decorrelated(),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "rewrite");
        // But the Auto and Iterative strategies still execute it.
        let auto = db
            .query("select custkey, spin(custkey) as s from customer where custkey = 3")
            .unwrap();
        assert_eq!(auto.column("s").unwrap(), vec![Value::Int(3)]);
    }

    #[test]
    fn parallelism_knob_preserves_results_and_reports_a_trace() {
        let mut db = sample_db();
        // Bulk both tables up past the morsel floor so operators fan out whichever
        // strategy the cost model picks.
        let mut extra_customers = vec![];
        let mut extra_orders = vec![];
        for i in 0..2_000i64 {
            extra_customers.push(Row::new(vec![
                Value::Int(100 + i),
                Value::str(format!("Extra#{i}")),
            ]));
            extra_orders.push(Row::new(vec![
                Value::Int(10_000 + i),
                Value::Int(100 + i),
                Value::Float(500.0 * (i % 7) as f64),
            ]));
        }
        db.load_rows("customer", extra_customers).unwrap();
        db.load_rows("orders", extra_orders).unwrap();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let serial = db.query(sql).unwrap();
        assert_eq!(db.parallelism(), 1);
        db.set_parallelism(4);
        assert_eq!(db.parallelism(), 4);
        assert_eq!(db.exec_config().parallelism, 4);
        let parallel = db.query(sql).unwrap();
        assert_eq!(serial.rows, parallel.rows);
        assert!(parallel.exec_stats.morsels_dispatched > 0);
        assert!(!parallel.exec_trace.is_empty());
        let analyzed = db.explain_analyze(sql).unwrap();
        assert!(analyzed.contains("== execution =="), "{analyzed}");
        assert!(analyzed.contains("parallelism=4"), "{analyzed}");
        assert!(analyzed.contains("== parallel operators =="), "{analyzed}");
        assert!(analyzed.contains("morsels"), "{analyzed}");
    }

    #[test]
    fn errors_surface_cleanly() {
        let mut db = Database::new();
        assert_eq!(
            db.execute("create tabel t(x int)").unwrap_err().kind(),
            "parse"
        );
        assert_eq!(
            db.query("select * from missing").unwrap_err().kind(),
            "catalog"
        );
    }

    #[test]
    fn sessions_share_data_and_plan_cache() {
        let db = sample_db();
        let engine = db.engine().clone();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let a = engine.session();
        let b = engine.session();
        // Warm the shape twice: the very first execution's runtime feedback can
        // invalidate its own entry (cold statistics → q-error over threshold); the
        // re-optimized entry is the stable one every session then shares.
        let first = a.query(sql).unwrap();
        a.query(sql).unwrap();
        let before = engine.plan_cache_stats();
        // Session B reuses the plan session A optimized: same cache, same key.
        let second = b.query(sql).unwrap();
        let after = engine.plan_cache_stats();
        assert!(after.hits > before.hits, "{before:?} vs {after:?}");
        assert_eq!(
            first.canonical_projection(&["custkey", "level"]).unwrap(),
            second.canonical_projection(&["custkey", "level"]).unwrap()
        );
    }

    #[test]
    fn sessions_see_committed_writes_and_pinned_queries_do_not_tear() {
        let engine = Engine::new();
        let writer = engine.session();
        writer
            .execute("create table t(x int); insert into t values (1)")
            .unwrap();
        let reader = engine.session();
        assert_eq!(reader.query("select x from t").unwrap().len(), 1);
        // A pinned snapshot taken before a write keeps reading the old epoch.
        let snapshot = engine.catalog();
        writer.execute("insert into t values (2)").unwrap();
        assert_eq!(snapshot.table("t").unwrap().row_count(), 1);
        assert_eq!(reader.query("select x from t").unwrap().len(), 2);
    }

    #[test]
    fn session_exec_config_override_only_affects_that_session() {
        let db = sample_db();
        let engine = db.engine().clone();
        let mut config = engine.exec_config();
        config.parallelism = 3;
        let tuned = engine.session().with_exec_config(config);
        let plain = engine.session();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let tuned_result = tuned.query(sql).unwrap();
        let plain_result = plain.query(sql).unwrap();
        assert_eq!(tuned_result.rows, plain_result.rows);
        assert_eq!(engine.parallelism(), 1);
    }

    #[test]
    fn session_strategy_is_the_default_for_query() {
        let db = sample_db();
        let session = db
            .engine()
            .session()
            .with_strategy(ExecutionStrategy::Iterative);
        let sql = "select custkey, service_level(custkey) as level from customer";
        let result = session.query(sql).unwrap();
        assert!(!result.used_decorrelated_plan);
        assert!(result.exec_stats.udf_invocations >= 20);
    }

    #[test]
    fn builder_configures_capacities_and_parallelism() {
        let engine = Engine::builder()
            .parallelism(2)
            .plan_cache_capacity(7)
            .udf_memo_capacity(0)
            .build();
        assert_eq!(engine.parallelism(), 2);
        assert_eq!(engine.plan_cache().capacity(), 7);
        assert_eq!(engine.worker_pool_stats().workers, 2);
        // Memo capacity 0 disables memoization.
        assert_eq!(engine.udf_memo_stats().entries, 0);
    }

    #[test]
    fn fork_is_independent_copy_on_write() {
        let db = sample_db();
        let fork = db.engine().fork();
        fork.load_rows(
            "customer",
            vec![Row::new(vec![Value::Int(999), Value::str("Forked")])],
        )
        .unwrap();
        assert_eq!(
            fork.catalog().table("customer").unwrap().row_count(),
            db.catalog().table("customer").unwrap().row_count() + 1
        );
        // The fork starts with cold caches.
        assert_eq!(fork.plan_cache_stats().entries, 0);
    }

    #[test]
    fn database_facade_matches_direct_session() {
        let db = sample_db();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let via_facade = db.query(sql).unwrap();
        let via_session = db.engine().session().query(sql).unwrap();
        assert_eq!(
            via_facade
                .canonical_projection(&["custkey", "level"])
                .unwrap(),
            via_session
                .canonical_projection(&["custkey", "level"])
                .unwrap()
        );
    }

    /// A unique throwaway data directory, removed when dropped.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "decorr_engine_{}_{tag}_{:?}",
                std::process::id(),
                std::thread::current().id(),
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn writes_survive_reopen_via_wal_alone() {
        let dir = TempDir::new("wal_only");
        {
            let engine = Engine::builder().data_dir(dir.path()).build();
            let session = engine.session();
            session
                .execute(
                    "create table t(x int, y varchar(5)); \
                     insert into t values (1, 'a'), (2, 'b'); \
                     create index on t(x)",
                )
                .unwrap();
            let stats = engine.persist_stats();
            assert!(stats.active && !stats.snapshot_loaded);
            assert_eq!(stats.wal_records_appended, 3);
            assert_eq!(stats.checkpoints, 0);
            // No checkpoint: the reopened engine must rebuild from the WAL alone.
        }
        let engine = Engine::builder().data_dir(dir.path()).build();
        let stats = engine.persist_stats();
        assert!(!stats.snapshot_loaded);
        assert_eq!(stats.wal_records_replayed, 3);
        let result = engine
            .session()
            .query("select y from t where x = 2")
            .unwrap();
        assert_eq!(result.column("y").unwrap(), vec![Value::str("b")]);
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopen_restores_functions_and_stats() {
        let dir = TempDir::new("checkpoint");
        {
            let engine = Engine::builder().data_dir(dir.path()).build();
            let session = engine.session();
            session
                .execute(
                    "create table orders(orderkey int not null, custkey int, totalprice float); \
                     insert into orders values (1, 1, 100.0), (2, 1, 250.0), (3, 2, 50.0); \
                     create table customer(custkey int not null, name varchar(10)); \
                     insert into customer values (1, 'Ann'), (2, 'Bob')",
                )
                .unwrap();
            session
                .register_function(
                    "create function spend(int ckey) returns float as \
                     begin \
                       float total; \
                       select sum(totalprice) into :total from orders where custkey = :ckey; \
                       return total; \
                     end",
                )
                .unwrap();
            session.execute("analyze").unwrap();
            let stats = engine.checkpoint().unwrap();
            assert_eq!(stats.checkpoints, 1);
            assert!(stats.snapshot_bytes > 0);
            // Post-checkpoint writes land in the (fresh) WAL.
            session
                .execute("insert into orders values (4, 2, 75.0)")
                .unwrap();
        }
        let engine = Engine::builder().data_dir(dir.path()).build();
        let stats = engine.persist_stats();
        assert!(stats.snapshot_loaded);
        assert_eq!(stats.wal_records_replayed, 1);
        let catalog = engine.catalog();
        // `customer` was untouched after the checkpoint: its statistics traveled in
        // the snapshot, so reading them is not a recompute. (`orders` took a
        // WAL-replayed insert, which legitimately dirties its cache.)
        let untouched = catalog.table("customer").unwrap();
        assert!(untouched.stats().inner().analyzed);
        assert_eq!(untouched.stats_recomputes(), 0);
        assert!(catalog.table("orders").unwrap().stats().inner().analyzed);
        let result = engine
            .session()
            .query("select spend(custkey) as s from orders where orderkey = 4")
            .unwrap();
        assert_eq!(result.column("s").unwrap(), vec![Value::Float(125.0)]);
    }

    #[test]
    fn checkpoint_without_data_dir_is_a_named_error() {
        let engine = Engine::new();
        let err = engine.checkpoint().unwrap_err();
        assert_eq!(err.kind(), "persist");
        assert!(!engine.persist_stats().active);
    }

    #[test]
    fn hash_placement_is_durable() {
        let dir = TempDir::new("hash_placement");
        {
            let engine = Engine::builder()
                .data_dir(dir.path())
                .default_placement(ShardPolicy::Hash)
                .shard_count(4)
                .build();
            let session = engine.session();
            session.execute("create table t(x int)").unwrap();
            let rows: Vec<Row> = (0..64).map(|i| Row::new(vec![Value::Int(i)])).collect();
            engine.load_rows("t", rows).unwrap();
            assert_eq!(
                engine.catalog().table("t").unwrap().shard_policy(),
                ShardPolicy::Hash
            );
            engine.checkpoint().unwrap();
        }
        let engine = Engine::builder().data_dir(dir.path()).build();
        let table_arc = engine.catalog().table_arc("t").unwrap();
        assert_eq!(table_arc.shard_policy(), ShardPolicy::Hash);
        assert_eq!(table_arc.row_count(), 64);
        // Hash routing spreads 64 rows across all four shards.
        assert!(table_arc.shards().iter().all(|s| !s.is_empty()));
    }
}
