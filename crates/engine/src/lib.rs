//! The engine facade: an embeddable in-memory SQL database with UDF decorrelation.
//!
//! [`Database`] wires every subsystem together: the parser front end, the storage
//! catalog, the function registry, the decorrelation rewriter, the cost-based strategy
//! choice and the executor. A query submitted through [`Database::query`] goes through
//! exactly the paper's pipeline: parse → algebraize & merge UDFs → remove Apply
//! operators → (cost-based) choice between the iterative and the decorrelated plan →
//! execute.

use std::collections::BTreeMap;
use std::sync::Arc;

use decorr_algebra::display::explain;
use decorr_algebra::RelExpr;
use decorr_common::{Error, Result, Row, Schema, Value};
use decorr_exec::{
    CatalogProvider, Env, ExecConfig, Executor, UdfMemo, UdfMemoStats, UdfRuntimeHint, WorkerPool,
    WorkerPoolStats,
};
use decorr_optimizer::{
    estimate_per_node, estimate_with, estimated_udf_invocation_cost, plan_fingerprint, CostParams,
    FeedbackConfig, FeedbackStats, FeedbackStore, OptimizeMode, OptimizeOutcome, PassManager,
    PipelineReport, PlanCache, PlanCacheStats,
};
use decorr_parser::{parse_statements, plan_select, SqlStatement};
use decorr_rewrite::plan_to_sql;
use decorr_stats::q_error;
use decorr_storage::{AnalyzeConfig, Catalog};
use decorr_udf::FunctionRegistry;

/// How the engine should execute a query that invokes UDFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionStrategy {
    /// Decorrelate when possible and let the cost model pick between the iterative and
    /// the rewritten plan (the paper's intended deployment).
    #[default]
    Auto,
    /// Always execute the original plan, invoking UDFs tuple-at-a-time (the baseline of
    /// every experiment in the paper).
    Iterative,
    /// Always execute the decorrelated plan; fails if decorrelation is not possible.
    Decorrelated,
}

/// Per-query options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    pub strategy: ExecutionStrategy,
    /// Override the executor configuration (hash-join threshold etc.).
    pub exec_config: Option<ExecConfig>,
    /// Capture before/after plan snapshots in the per-pass `rewrite_report` (off by
    /// default: snapshot rendering costs string work per optimizer pass; `EXPLAIN`
    /// always captures them).
    pub capture_snapshots: bool,
}

impl QueryOptions {
    pub fn iterative() -> QueryOptions {
        QueryOptions {
            strategy: ExecutionStrategy::Iterative,
            ..QueryOptions::default()
        }
    }

    pub fn decorrelated() -> QueryOptions {
        QueryOptions {
            strategy: ExecutionStrategy::Decorrelated,
            ..QueryOptions::default()
        }
    }
}

/// The result of a query, together with how it was obtained.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
    /// The strategy that was requested.
    pub strategy: ExecutionStrategy,
    /// True if the executed plan was the decorrelated one.
    pub used_decorrelated_plan: bool,
    /// Notes from the rewriter (skipped UDFs, reasons decorrelation was abandoned).
    pub rewrite_notes: Vec<String>,
    /// Rules that fired during rewriting.
    pub applied_rules: Vec<String>,
    /// Executor counters (UDF invocations performed, index lookups, joins, …).
    pub exec_stats: decorr_exec::executor::ExecStats,
    /// The optimizer's per-pass trace: pass timings, per-rule fire counts, fixpoint
    /// iteration counts and before/after plan snapshots.
    pub rewrite_report: PipelineReport,
    /// The executor's per-operator trace (morsels dispatched, per-worker row spread,
    /// rows in/out, operator wall clock) — empty for fully serial executions.
    pub exec_trace: decorr_exec::ExecTrace,
    /// Estimated root cardinality of the executed plan (the cost model's number the
    /// feedback loop compares against `rows.len()`).
    pub estimated_rows: f64,
    /// q-error of the root cardinality estimate for this execution.
    pub cardinality_q_error: f64,
    /// Measured wall-clock per invoked UDF (empty for set-oriented executions).
    pub udf_timings: Vec<decorr_exec::UdfTiming>,
    /// Actual output cardinality per executed plan node, keyed by structural
    /// fingerprint. Only populated when the query ran with
    /// `ExecConfig::collect_cardinalities` (e.g. under `EXPLAIN ANALYZE`).
    pub node_cardinalities: Vec<decorr_exec::NodeCardinality>,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of a named output column.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(None, name)?;
        Ok(self.rows.iter().map(|r| r.get(idx).clone()).collect())
    }

    /// Order-insensitive canonical form restricted to the given columns (for comparing
    /// the iterative and decorrelated executions in tests).
    pub fn canonical_projection(&self, columns: &[&str]) -> Result<Vec<String>> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.index_of(None, c))
            .collect::<Result<Vec<_>>>()?;
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let projected: Vec<String> =
                    indices.iter().map(|&i| r.get(i).to_string()).collect();
                format!("({})", projected.join(", "))
            })
            .collect();
        out.sort();
        Ok(out)
    }
}

/// Report produced by [`Database::rewrite_sql`] — the output of the paper's standalone
/// rewrite tool: the rewritten SQL text plus any auxiliary aggregate definitions.
#[derive(Debug, Clone)]
pub struct RewriteReport {
    pub decorrelated: bool,
    pub rewritten_sql: String,
    pub auxiliary_functions: Vec<String>,
    pub applied_rules: Vec<String>,
    pub notes: Vec<String>,
}

/// Summary of a non-query statement execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionSummary {
    TableCreated(String),
    TableDropped(String),
    IndexCreated {
        table: String,
        column: String,
    },
    RowsInserted(usize),
    FunctionCreated(String),
    /// An `ANALYZE` ran; holds the names of the analyzed tables.
    Analyzed {
        tables: Vec<String>,
    },
    /// A SELECT executed through [`Database::execute`]; holds the number of rows.
    QueryRows(usize),
}

/// An embeddable in-memory SQL engine with UDF decorrelation.
///
/// Every query routes through the optimizer's [`PassManager`] with a shared
/// [`PlanCache`] attached: repeated query shapes skip the rewrite pipeline entirely.
/// The cache key folds in the registry generation (bumped by `CREATE FUNCTION`) and
/// the catalog DDL generation, so UDF redefinition and schema changes invalidate
/// stale entries automatically.
///
/// The database also owns one persistent [`WorkerPool`]: every query's executor
/// dispatches its morsel batches to it, so worker threads are reused across operators
/// *and* across queries (thread spawns are a pool-lifecycle event, not a per-query
/// cost). The catalog and registry are held behind `Arc`s so executors can hand
/// `'static` jobs to those long-lived workers; mutation goes through
/// [`Arc::make_mut`] (copy-on-write only if an in-flight query still holds the
/// previous snapshot).
#[derive(Debug)]
pub struct Database {
    catalog: Arc<Catalog>,
    registry: Arc<FunctionRegistry>,
    exec_config: ExecConfig,
    plan_cache: Arc<PlanCache>,
    worker_pool: Arc<WorkerPool>,
    /// Runtime feedback: learned UDF invocation costs and recorded estimate-vs-actual
    /// cardinalities, folded in after every query (see [`Database::run_plan`]).
    feedback: Arc<FeedbackStore>,
    /// Cross-query memo of pure-UDF results, shared by every query's executor and
    /// invalidated whenever the registry or the catalog (schema *or* data) changes.
    udf_memo: Arc<UdfMemo>,
    /// Configuration `ANALYZE` runs with (sample size, bucket/MCV counts, seed).
    analyze_config: AnalyzeConfig,
}

/// Default capacity (distinct argument tuples) of the cross-query pure-UDF memo.
const DEFAULT_UDF_MEMO_CAPACITY: usize = 8192;

/// Capacity of the per-query dedup cache attached when `ExecConfig::udf_batching` is
/// on. Generous: it only lives for one query, and batched Apply loops can touch many
/// distinct argument tuples.
const UDF_DEDUP_CAPACITY: usize = 65536;

impl Clone for Database {
    /// Clones the data and functions but gives the clone a **fresh, empty** plan cache
    /// (same capacity) and its own worker pool (same size). Clones mutate their
    /// registries and catalogs independently, so their generation counters diverge;
    /// sharing one cache could cross-serve a plan optimized against the other clone's
    /// definitions.
    fn clone(&self) -> Database {
        Database {
            catalog: Arc::new((*self.catalog).clone()),
            registry: Arc::new((*self.registry).clone()),
            exec_config: self.exec_config.clone(),
            plan_cache: Arc::new(PlanCache::with_capacity(self.plan_cache.capacity())),
            worker_pool: Arc::new(WorkerPool::new(self.worker_pool.worker_count())),
            // A fresh feedback store, like the fresh plan cache: the clone's workload
            // diverges, so its measurements must not mix with the original's.
            feedback: Arc::new(FeedbackStore::with_config(self.feedback.config().clone())),
            // A fresh memo too: the clone's registry/catalog generations diverge from
            // the original's, so shared entries could serve results across epochs.
            udf_memo: Arc::new(UdfMemo::with_capacity(self.udf_memo.capacity())),
            analyze_config: self.analyze_config.clone(),
        }
    }
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    pub fn new() -> Database {
        Database {
            catalog: Arc::new(Catalog::new()),
            registry: Arc::new(FunctionRegistry::new()),
            exec_config: ExecConfig::default(),
            plan_cache: Arc::new(PlanCache::new()),
            worker_pool: Arc::new(WorkerPool::new(0)),
            feedback: Arc::new(FeedbackStore::new()),
            udf_memo: Arc::new(UdfMemo::with_capacity(DEFAULT_UDF_MEMO_CAPACITY)),
            analyze_config: AnalyzeConfig::default(),
        }
    }

    pub fn with_exec_config(exec_config: ExecConfig) -> Database {
        let mut db = Database {
            exec_config: exec_config.normalized(),
            ..Database::new()
        };
        db.rebuild_worker_pool();
        db
    }

    /// Replaces the plan cache with an empty one holding at most `capacity` outcomes
    /// (0 disables plan caching).
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.plan_cache = Arc::new(PlanCache::with_capacity(capacity));
    }

    /// Replaces the cross-query pure-UDF memo with an empty one holding at most
    /// `capacity` distinct argument tuples. `0` disables memoization entirely (the
    /// per-query dedup cache controlled by `ExecConfig::udf_batching` is unaffected).
    pub fn set_udf_memo_capacity(&mut self, capacity: usize) {
        self.udf_memo = Arc::new(UdfMemo::with_capacity(capacity));
    }

    /// Counter snapshot of the cross-query pure-UDF memo
    /// (hits/misses/insertions/evictions/invalidations/entries).
    pub fn udf_memo_stats(&self) -> UdfMemoStats {
        self.udf_memo.stats()
    }

    /// Sets the executor worker-pool size for subsequent queries. `1` (the default)
    /// executes serially; `n > 1` fans scans, filters, projections, hash joins, hash
    /// aggregation and correlated Apply loops out to `n` persistent morsel workers.
    /// Parallel runs return byte-identical results to serial runs. The optimizer's
    /// cost model is recalibrated to the pool size, and the plan-cache key changes
    /// with it, so cached decisions never cross pool sizes.
    ///
    /// Out-of-range values are clamped (`parallelism ≥ 1`), and the persistent worker
    /// pool is rebuilt to the new size: growing spawns (and warms) the new workers up
    /// front, shrinking retires the surplus threads. In-flight queries keep the
    /// previous pool alive through their own handle until they finish.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.exec_config.parallelism = parallelism.max(1);
        self.exec_config = self.exec_config.clone().normalized();
        self.rebuild_worker_pool();
    }

    /// Rebuilds the worker pool to match `exec_config.parallelism` (serial execution
    /// keeps an empty pool — no idle threads).
    fn rebuild_worker_pool(&mut self) {
        let target = if self.exec_config.parallelism > 1 {
            self.exec_config.parallelism
        } else {
            0
        };
        if self.worker_pool.worker_count() != target {
            self.worker_pool = Arc::new(WorkerPool::new(target));
        }
    }

    /// The persistent worker pool shared by every query's executor. Exposed for
    /// benches and diagnostics (spawn counters prove pool reuse across queries).
    ///
    /// A per-query `exec_config` override with a parallelism larger than the
    /// configured pool grows the shared pool on demand, and the extra workers stay
    /// parked (still reusable) until the next [`Database::set_parallelism`] rebuilds
    /// the pool at its configured size — so `worker_pool_stats().workers` can exceed
    /// [`Database::parallelism`] after such overrides.
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        &self.worker_pool
    }

    /// Lifecycle counters of the persistent worker pool (live workers, lifetime thread
    /// spawns, batches executed).
    pub fn worker_pool_stats(&self) -> WorkerPoolStats {
        self.worker_pool.stats()
    }

    /// The configured executor worker-pool size.
    pub fn parallelism(&self) -> usize {
        self.exec_config.parallelism
    }

    /// The default executor configuration used by queries without a per-query override.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec_config
    }

    /// The shared plan cache (for stats and explicit `clear`).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Snapshot of the plan-cache counters
    /// (hits/misses/evictions/invalidations/entries).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// The runtime feedback store (learned UDF costs, recorded q-errors).
    pub fn feedback(&self) -> &FeedbackStore {
        &self.feedback
    }

    /// Snapshot of the feedback counters.
    pub fn feedback_stats(&self) -> FeedbackStats {
        self.feedback.stats()
    }

    /// Replaces the feedback store with a fresh one using `config` (thresholds, trust
    /// floors). Learned state is discarded.
    pub fn set_feedback_config(&mut self, config: FeedbackConfig) {
        self.feedback = Arc::new(FeedbackStore::with_config(config));
    }

    /// The configuration `ANALYZE` runs with.
    pub fn analyze_config(&self) -> &AnalyzeConfig {
        &self.analyze_config
    }

    /// Replaces the `ANALYZE` configuration used by subsequent analyzes.
    pub fn set_analyze_config(&mut self, config: AnalyzeConfig) {
        self.analyze_config = config;
    }

    /// Runs a sampled `ANALYZE` over every table: builds histogram/MCV statistics the
    /// cost model's range and equality selectivities consume. Bumps the catalog DDL
    /// generation, so cached plans re-optimize against the fresh statistics. Returns
    /// the analyzed table names.
    pub fn analyze(&mut self) -> Vec<String> {
        let config = self.analyze_config.clone();
        self.catalog_mut().analyze_all(&config)
    }

    /// Runs a sampled `ANALYZE` over one table (see [`Database::analyze`]).
    pub fn analyze_table(&mut self, name: &str) -> Result<()> {
        let config = self.analyze_config.clone();
        self.catalog_mut().analyze_table(name, &config)
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog. Copy-on-write: if an in-flight query on another
    /// thread still holds the current snapshot, the catalog is cloned so that query
    /// keeps reading its consistent state.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        Arc::make_mut(&mut self.catalog)
    }

    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Mutable access to the function registry (copy-on-write like
    /// [`Database::catalog_mut`]).
    pub fn registry_mut(&mut self) -> &mut FunctionRegistry {
        Arc::make_mut(&mut self.registry)
    }

    /// Executes one or more statements (DDL, DML, `CREATE FUNCTION`, or queries) and
    /// returns a summary per statement.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<ExecutionSummary>> {
        let statements = parse_statements(sql)?;
        let mut out = vec![];
        for stmt in statements {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    fn execute_statement(&mut self, stmt: SqlStatement) -> Result<ExecutionSummary> {
        match stmt {
            SqlStatement::CreateTable { name, columns } => {
                self.catalog_mut()
                    .create_table(&name, Schema::new(columns))?;
                Ok(ExecutionSummary::TableCreated(name))
            }
            SqlStatement::DropTable { name } => {
                self.catalog_mut().drop_table(&name)?;
                Ok(ExecutionSummary::TableDropped(name))
            }
            SqlStatement::CreateIndex { table, column } => {
                self.catalog_mut().create_index(&table, &column)?;
                Ok(ExecutionSummary::IndexCreated { table, column })
            }
            SqlStatement::Insert {
                table,
                columns,
                rows,
            } => {
                let n = self.insert_parsed_rows(&table, columns.as_deref(), &rows)?;
                Ok(ExecutionSummary::RowsInserted(n))
            }
            SqlStatement::CreateFunction(udf) => {
                let name = udf.name.clone();
                let normalized = self.normalize_udf(udf);
                self.registry_mut().register_udf(normalized);
                Ok(ExecutionSummary::FunctionCreated(name))
            }
            SqlStatement::Analyze { table } => {
                let tables = match table {
                    Some(name) => {
                        self.analyze_table(&name)?;
                        vec![name]
                    }
                    None => self.analyze(),
                };
                Ok(ExecutionSummary::Analyzed { tables })
            }
            SqlStatement::Query(select) => {
                let plan = plan_select(&select)?;
                let result = self.run_plan(&plan, &QueryOptions::default())?;
                Ok(ExecutionSummary::QueryRows(result.rows.len()))
            }
        }
    }

    fn insert_parsed_rows(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<decorr_algebra::ScalarExpr>],
    ) -> Result<usize> {
        let schema = self.catalog.table_schema(table)?;
        let mut materialized = vec![];
        {
            // Evaluate the value expressions (constants and constant arithmetic).
            let executor = Executor::with_config(
                Arc::clone(&self.catalog),
                Arc::clone(&self.registry),
                self.exec_config.clone(),
            );
            let env = Env::root();
            for row in rows {
                let values: Result<Vec<Value>> =
                    row.iter().map(|e| executor.eval_expr(e, &env)).collect();
                let values = values?;
                let full_row = match columns {
                    None => Row::new(values),
                    Some(cols) => {
                        if cols.len() != values.len() {
                            return Err(Error::Execution(format!(
                                "INSERT provides {} values for {} columns",
                                values.len(),
                                cols.len()
                            )));
                        }
                        let mut full = vec![Value::Null; schema.len()];
                        for (c, v) in cols.iter().zip(values) {
                            let idx = schema.index_of(None, c)?;
                            full[idx] = v;
                        }
                        Row::new(full)
                    }
                };
                materialized.push(full_row);
            }
        }
        self.catalog_mut().insert_rows(table, materialized)
    }

    /// Registers a UDF from its `CREATE FUNCTION` source. The queries inside the body
    /// are normalised (predicate pushdown etc.) so that iterative invocation executes
    /// them with reasonable plans, just like a commercial system would.
    pub fn register_function(&mut self, sql: &str) -> Result<()> {
        let udf = decorr_parser::parse_function(sql)?;
        let normalized = self.normalize_udf(udf);
        self.registry_mut().register_udf(normalized);
        Ok(())
    }

    /// Applies the cleanup/normalisation rules to a query plan through the optimizer's
    /// cleanup pipeline. Normalisation is best-effort: a (theoretically impossible)
    /// budget exhaustion in the cleanup rules keeps the plan as-is instead of failing.
    fn normalize_plan(&self, plan: &RelExpr) -> RelExpr {
        let provider = CatalogProvider::new(&self.catalog, &self.registry);
        PassManager::cleanup_pipeline()
            .optimize(plan, &self.registry, &provider, Some(self.catalog.as_ref()))
            .map(|o| o.plan)
            .unwrap_or_else(|_| plan.clone())
    }

    /// Builds the pass pipeline for the requested execution strategy.
    fn pass_manager_for(strategy: ExecutionStrategy) -> PassManager {
        match strategy {
            ExecutionStrategy::Iterative => PassManager::cleanup_pipeline(),
            ExecutionStrategy::Decorrelated => {
                PassManager::decorrelation_pipeline().with_mode(OptimizeMode::ForceDecorrelated)
            }
            ExecutionStrategy::Auto => PassManager::decorrelation_pipeline(),
        }
    }

    /// Runs the optimizer pipeline for the given strategy over an already-planned
    /// query, with the shared plan cache attached: a repeated plan under an unchanged
    /// registry/schema skips the pipeline entirely.
    fn optimize_plan(
        &self,
        plan: &RelExpr,
        strategy: ExecutionStrategy,
        capture_snapshots: bool,
        parallelism: usize,
    ) -> Result<OptimizeOutcome> {
        let provider = CatalogProvider::new(&self.catalog, &self.registry);
        Database::pass_manager_for(strategy)
            .with_snapshots(capture_snapshots)
            .with_parallelism(parallelism)
            .with_plan_cache(Arc::clone(&self.plan_cache))
            .with_feedback(Arc::clone(&self.feedback))
            .optimize(plan, &self.registry, &provider, Some(self.catalog.as_ref()))
    }

    /// Normalises every query embedded in a UDF body.
    fn normalize_udf(&self, mut udf: decorr_udf::UdfDefinition) -> decorr_udf::UdfDefinition {
        fn walk(stmts: &mut [decorr_udf::Statement], normalize: &dyn Fn(&RelExpr) -> RelExpr) {
            for stmt in stmts {
                match stmt {
                    decorr_udf::Statement::SelectInto { query, .. } => *query = normalize(query),
                    decorr_udf::Statement::CursorLoop { query, body, .. } => {
                        *query = normalize(query);
                        walk(body, normalize);
                    }
                    decorr_udf::Statement::While { body, .. } => walk(body, normalize),
                    decorr_udf::Statement::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, normalize);
                        walk(else_branch, normalize);
                    }
                    decorr_udf::Statement::Return {
                        expr: Some(decorr_algebra::ScalarExpr::ScalarSubquery(q)),
                    } => **q = normalize(q),
                    decorr_udf::Statement::Assign {
                        expr: decorr_algebra::ScalarExpr::ScalarSubquery(q),
                        ..
                    } => **q = normalize(q),
                    _ => {}
                }
            }
        }
        let normalize = |plan: &RelExpr| self.normalize_plan(plan);
        walk(&mut udf.body, &normalize);
        udf
    }

    /// Runs a `SELECT` query with the default (cost-based) strategy.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_with(sql, &QueryOptions::default())
    }

    /// Runs a `SELECT` query with explicit options.
    pub fn query_with(&self, sql: &str, options: &QueryOptions) -> Result<QueryResult> {
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        self.run_plan(&plan, options)
    }

    /// Runs an already-planned query. Every strategy routes through the optimizer's
    /// [`PassManager`]: the iterative strategy runs the normalisation pipeline only, the
    /// other strategies run the full decorrelation pipeline (with the cost-based choice
    /// for [`ExecutionStrategy::Auto`]).
    pub fn run_plan(&self, plan: &RelExpr, options: &QueryOptions) -> Result<QueryResult> {
        let config = options
            .exec_config
            .clone()
            .unwrap_or_else(|| self.exec_config.clone())
            .normalized();
        let outcome = self.optimize_plan(
            plan,
            options.strategy,
            options.capture_snapshots,
            config.parallelism,
        )?;
        if options.strategy == ExecutionStrategy::Decorrelated && !outcome.decorrelated {
            return Err(Error::Rewrite(format!(
                "query could not be decorrelated: {}",
                outcome.notes.join("; ")
            )));
        }
        // The memo epoch uses the *base* registry generation: the per-query aux
        // aggregate clone below registers aggregates (bumping the clone's generation)
        // without changing any scalar UDF a memoized result could depend on.
        let memo_epoch = (
            self.registry.generation(),
            self.catalog.ddl_generation(),
            self.catalog.data_generation(),
        );
        // Register auxiliary aggregates in a per-query copy of the registry; plans
        // without auxiliary aggregates (the common case) share the engine's registry
        // snapshot without copying it.
        let effective_registry = if outcome.aux_aggregates.is_empty() {
            Arc::clone(&self.registry)
        } else {
            let mut registry = (*self.registry).clone();
            for agg in &outcome.aux_aggregates {
                registry.register_aggregate(agg.clone());
            }
            Arc::new(registry)
        };
        // Attach the database's persistent pool: worker threads outlive this query.
        let mut executor = Executor::with_config(
            Arc::clone(&self.catalog),
            effective_registry,
            config.clone(),
        )
        .with_worker_pool(Arc::clone(&self.worker_pool));
        if config.udf_memoization && self.udf_memo.is_enabled() {
            self.udf_memo.ensure_epoch(memo_epoch);
            executor = executor.with_udf_memo(Arc::clone(&self.udf_memo));
        }
        if config.udf_batching {
            executor =
                executor.with_udf_dedup(Arc::new(UdfMemo::with_capacity(UDF_DEDUP_CAPACITY)));
        }
        if config.cost_ordered_predicates {
            let mut hints: BTreeMap<String, UdfRuntimeHint> = BTreeMap::new();
            for (name, mean_seconds) in self.feedback.udf_mean_seconds() {
                hints.insert(
                    name,
                    UdfRuntimeHint {
                        mean_seconds,
                        selectivity: 0.5,
                    },
                );
            }
            for (name, selectivity) in self.feedback.udf_selectivities() {
                hints
                    .entry(name)
                    .and_modify(|hint| hint.selectivity = selectivity)
                    .or_insert(UdfRuntimeHint {
                        mean_seconds: 1e-4,
                        selectivity,
                    });
            }
            if !hints.is_empty() {
                executor = executor.with_udf_hints(Arc::new(hints));
            }
        }
        let result_set = executor.execute(&outcome.plan)?;
        let (estimated_rows, cardinality_q_error, udf_timings) =
            self.fold_feedback(plan, &outcome, &result_set, &executor, config.parallelism);
        Ok(QueryResult {
            schema: result_set.schema,
            rows: result_set.rows,
            strategy: options.strategy,
            used_decorrelated_plan: outcome.used_decorrelated_plan,
            rewrite_notes: outcome.notes,
            applied_rules: outcome.applied_rules,
            exec_stats: executor.stats_snapshot(),
            rewrite_report: outcome.report,
            exec_trace: executor.trace_snapshot(),
            estimated_rows,
            cardinality_q_error,
            udf_timings,
            node_cardinalities: executor.cardinality_snapshot(),
        })
    }

    /// Folds one execution's ground truth into the feedback store: the estimated vs
    /// actual root cardinality and the measured per-UDF invocation wall-clocks. When
    /// the observed q-error (cardinality or UDF cost) first crosses the configured
    /// threshold for this plan fingerprint, the stale cost-based plan-cache entries
    /// are invalidated so the next optimize re-decides with the calibrated numbers.
    fn fold_feedback(
        &self,
        input_plan: &RelExpr,
        outcome: &OptimizeOutcome,
        result_set: &decorr_exec::ResultSet,
        executor: &Executor,
        parallelism: usize,
    ) -> (f64, f64, Vec<decorr_exec::UdfTiming>) {
        let params = CostParams::new(parallelism);
        // The decision already carries both alternatives' estimates; recompute only
        // when the pipeline made no decision (iterative strategy, UDF-free queries).
        let estimated_rows = match &outcome.decision {
            Some(decision) if outcome.used_decorrelated_plan => decision.decorrelated.cardinality,
            Some(decision) => decision.iterative.cardinality,
            None => {
                estimate_with(&outcome.plan, &self.catalog, &self.registry, &params).cardinality
            }
        };
        let actual_rows = result_set.rows.len() as u64;
        let fingerprint = outcome
            .report
            .cache
            .as_ref()
            .map(|activity| activity.key_hash)
            .unwrap_or_else(|| plan_fingerprint(input_plan));
        let cardinality_q = self
            .feedback
            .record_query(fingerprint, estimated_rows, actual_rows);
        let mut worst_q = cardinality_q;
        let udf_timings = executor.udf_timing_snapshot();
        for timing in &udf_timings {
            let static_units =
                estimated_udf_invocation_cost(&timing.name, &self.catalog, &self.registry, &params);
            // `timing.invocations` counts *evaluated* calls only — memo/dedup hits
            // are recorded separately so learned per-call costs don't drift to zero
            // as the caches warm up.
            let cost_q = self.feedback.record_udf_timing(
                &timing.name,
                timing.invocations,
                timing.total,
                static_units,
                params.row_op_seconds,
            );
            worst_q = worst_q.max(cost_q);
            self.feedback
                .record_udf_dedup(&timing.name, timing.invocations, timing.hits);
        }
        for selectivity in executor.udf_selectivity_snapshot() {
            self.feedback.record_udf_predicate(
                &selectivity.name,
                selectivity.evaluated,
                selectivity.passed,
            );
        }
        if self.feedback.flag_for_invalidation(fingerprint, worst_q) {
            self.plan_cache.invalidate_fingerprint(fingerprint);
        }
        (estimated_rows, cardinality_q, udf_timings)
    }

    /// Returns an EXPLAIN-style report: the original plan, the rewritten plan (if any),
    /// the rules that fired, the per-pass timings and rule fire counts recorded by the
    /// PassManager, and the cost-based decision.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        // EXPLAIN is the diagnostic entry point: always capture plan snapshots.
        let outcome = self.optimize_plan(
            &plan,
            ExecutionStrategy::Auto,
            true,
            self.exec_config.parallelism,
        )?;
        let mut out = String::new();
        out.push_str("== original (iterative) plan ==\n");
        out.push_str(&explain(&outcome.iterative_plan));
        if let Some(rewritten) = &outcome.rewritten_plan {
            out.push_str("\n== decorrelated plan ==\n");
            out.push_str(&explain(rewritten));
            out.push_str("\n== rules applied ==\n");
            out.push_str(&outcome.applied_rules.join(", "));
            out.push('\n');
            if let Some(decision) = &outcome.decision {
                out.push_str("\n== cost-based decision ==\n");
                out.push_str(&decision.summary());
                out.push('\n');
            }
        } else {
            out.push_str("\n== decorrelation ==\nnot performed: ");
            out.push_str(&outcome.notes.join("; "));
            out.push('\n');
        }
        out.push_str("\n== optimizer passes ==\n");
        out.push_str(&outcome.report.render());
        Ok(out)
    }

    /// Like [`Database::explain`], but additionally *executes* the query and appends
    /// the runtime side of the story: the executor counters, the per-operator
    /// execution trace (morsels dispatched, per-worker row spread, rows in/out,
    /// operator wall clock), the **estimated vs actual rows per plan operator** (the
    /// statistics subsystem's accuracy, as q-errors), and the feedback the execution
    /// fed back into the cost model (measured UDF costs, recorded q-errors).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let mut out = self.explain(sql)?;
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        // Resolve the plan that is about to execute *before* executing it: the
        // execution's own feedback can invalidate this shape and flip the next
        // optimize's decision, and the estimates table must describe the plan the
        // actuals were recorded for. `run_plan` below re-optimizes internally, but
        // nothing executes in between, so it is served this exact cached outcome.
        let outcome = self.optimize_plan(
            &plan,
            ExecutionStrategy::Auto,
            false,
            self.exec_config.parallelism,
        )?;
        // Execute in diagnostic mode: per-node actual cardinalities are recorded,
        // keyed by each node's structural fingerprint.
        let mut config = self.exec_config.clone();
        config.collect_cardinalities = true;
        let options = QueryOptions {
            exec_config: Some(config),
            ..QueryOptions::default()
        };
        let result = self.run_plan(&plan, &options)?;
        out.push_str("\n== execution ==\n");
        out.push_str(&format!(
            "rows={} parallelism={} · scanned={} index-lookups={} udf-invocations={} \
             udf-memo-hits={} udf-dedup-hits={} udf-batched={} \
             subqueries={} hash-joins={} nl-joins={} morsels={} pipelined-ops={} \
             pool-spawns={}\n",
            result.rows.len(),
            self.exec_config.parallelism,
            result.exec_stats.rows_scanned,
            result.exec_stats.index_lookups,
            result.exec_stats.udf_invocations,
            result.exec_stats.udf_memo_hits,
            result.exec_stats.udf_dedup_hits,
            result.exec_stats.udf_batch_evals,
            result.exec_stats.subqueries_executed,
            result.exec_stats.hash_joins,
            result.exec_stats.nested_loop_joins,
            result.exec_stats.morsels_dispatched,
            result.exec_stats.pipelined_operators,
            result.exec_stats.pool_spawns,
        ));
        // Estimated vs actual rows per operator of the executed plan.
        let params = CostParams::new(self.exec_config.parallelism);
        let estimates = estimate_per_node(&outcome.plan, &self.catalog, &self.registry, &params);
        out.push_str("\n== cardinalities (estimated vs actual) ==\n");
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>8} {:>8}\n",
            "operator", "est rows", "actual rows", "execs", "q-error"
        ));
        for estimate in &estimates {
            match result
                .node_cardinalities
                .iter()
                .find(|n| n.fingerprint == estimate.fingerprint)
            {
                Some(actual) => out.push_str(&format!(
                    "{:<24} {:>12.0} {:>12.1} {:>8} {:>8.1}\n",
                    estimate.operator,
                    estimate.cardinality,
                    actual.mean_rows(),
                    actual.executions,
                    q_error(estimate.cardinality, actual.mean_rows()),
                )),
                None => out.push_str(&format!(
                    "{:<24} {:>12.0} {:>12} {:>8} {:>8}\n",
                    estimate.operator, estimate.cardinality, "(fused)", "-", "-"
                )),
            }
        }
        out.push_str("\n== feedback ==\n");
        out.push_str(&format!(
            "root cardinality: estimated {:.0}, actual {} (q-error {:.2})\n",
            result.estimated_rows,
            result.rows.len(),
            result.cardinality_q_error,
        ));
        for timing in &result.udf_timings {
            out.push_str(&format!(
                "udf {}: {} invocation(s), {} cache hit(s), mean {:.3} ms\n",
                timing.name,
                timing.invocations,
                timing.hits,
                timing.mean().as_secs_f64() * 1e3,
            ));
        }
        let feedback = self.feedback_stats();
        out.push_str(&format!(
            "feedback store: {} quer{} recorded, {} udf(s) tracked, \
             {} invalidation(s) flagged\n",
            feedback.queries_recorded,
            if feedback.queries_recorded == 1 {
                "y"
            } else {
                "ies"
            },
            feedback.udfs_tracked,
            feedback.invalidations_flagged,
        ));
        out.push_str("\n== parallel operators ==\n");
        out.push_str(&result.exec_trace.render());
        Ok(out)
    }

    /// The standalone rewrite-tool entry point (Figure 9): returns the rewritten SQL text
    /// and the auxiliary aggregate definitions, without executing anything.
    pub fn rewrite_sql(&self, sql: &str) -> Result<RewriteReport> {
        let select = decorr_parser::parse_query(sql)?;
        let plan = plan_select(&select)?;
        let provider = CatalogProvider::new(&self.catalog, &self.registry);
        let outcome = PassManager::rewrite_pipeline().optimize(
            &plan,
            &self.registry,
            &provider,
            Some(&self.catalog),
        )?;
        Ok(RewriteReport {
            decorrelated: outcome.decorrelated,
            rewritten_sql: plan_to_sql(&outcome.plan),
            auxiliary_functions: outcome
                .aux_aggregates
                .iter()
                .map(|a| a.to_string())
                .collect(),
            applied_rules: outcome.applied_rules,
            notes: outcome.notes,
        })
    }

    /// Bulk-loads rows built programmatically (used by the TPC-H style generator).
    pub fn load_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.catalog_mut().insert_rows(table, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.execute(
            "create table customer(custkey int not null, name varchar(25)); \
             create table orders(orderkey int not null, custkey int, totalprice float); \
             create index on orders(custkey);",
        )
        .unwrap();
        let customers: Vec<Row> = (1..=20i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("Customer#{i}"))]))
            .collect();
        db.load_rows("customer", customers).unwrap();
        let mut orders = vec![];
        let mut ok = 0i64;
        for i in 1..=20i64 {
            for _ in 0..i {
                ok += 1;
                orders.push(Row::new(vec![
                    Value::Int(ok),
                    Value::Int(i),
                    Value::Float(1000.0 * i as f64),
                ]));
            }
        }
        db.load_rows("orders", orders).unwrap();
        db.register_function(
            "create function service_level(int ckey) returns varchar(10) as \
             begin \
               float totalbusiness; string level; \
               select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
               if (totalbusiness > 200000) level = 'Platinum'; \
               else if (totalbusiness > 50000) level = 'Gold'; \
               else level = 'Regular'; \
               return level; \
             end",
        )
        .unwrap();
        db
    }

    #[test]
    fn ddl_dml_and_simple_query() {
        let mut db = Database::new();
        let summaries = db
            .execute("create table t(x int, y varchar(5)); insert into t values (1, 'a'), (2, 'b')")
            .unwrap();
        assert_eq!(summaries[1], ExecutionSummary::RowsInserted(2));
        let result = db.query("select x from t where y = 'b'").unwrap();
        assert_eq!(result.column("x").unwrap(), vec![Value::Int(2)]);
    }

    #[test]
    fn iterative_and_decorrelated_strategies_agree() {
        let db = sample_db();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let iterative = db.query_with(sql, &QueryOptions::iterative()).unwrap();
        let decorrelated = db.query_with(sql, &QueryOptions::decorrelated()).unwrap();
        assert!(!iterative.used_decorrelated_plan);
        assert!(decorrelated.used_decorrelated_plan);
        assert!(iterative.exec_stats.udf_invocations >= 20);
        assert_eq!(decorrelated.exec_stats.udf_invocations, 0);
        assert_eq!(
            iterative
                .canonical_projection(&["custkey", "level"])
                .unwrap(),
            decorrelated
                .canonical_projection(&["custkey", "level"])
                .unwrap()
        );
    }

    #[test]
    fn auto_strategy_runs_and_matches_iterative() {
        let db = sample_db();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let auto = db.query(sql).unwrap();
        let iterative = db.query_with(sql, &QueryOptions::iterative()).unwrap();
        assert_eq!(
            auto.canonical_projection(&["custkey", "level"]).unwrap(),
            iterative
                .canonical_projection(&["custkey", "level"])
                .unwrap()
        );
    }

    #[test]
    fn explain_reports_both_plans_and_decision() {
        let db = sample_db();
        let text = db
            .explain("select custkey, service_level(custkey) as level from customer")
            .unwrap();
        assert!(text.contains("original (iterative) plan"));
        assert!(text.contains("decorrelated plan"));
        assert!(text.contains("Join(left outer)"));
        assert!(text.contains("cost-based decision"));
    }

    #[test]
    fn rewrite_sql_produces_flat_query_text() {
        let db = sample_db();
        let report = db
            .rewrite_sql("select custkey, service_level(custkey) as level from customer")
            .unwrap();
        assert!(report.decorrelated);
        let sql = report.rewritten_sql.to_lowercase();
        assert!(sql.contains("left outer join"), "sql: {sql}");
        assert!(sql.contains("group by"), "sql: {sql}");
        assert!(sql.contains("case when"), "sql: {sql}");
    }

    #[test]
    fn decorrelated_strategy_fails_for_non_decorrelatable_udf() {
        let mut db = sample_db();
        db.register_function(
            "create function spin(int n) returns int as \
             begin int i = 0; while (i < n) begin i = i + 1; end return i; end",
        )
        .unwrap();
        let err = db
            .query_with(
                "select spin(custkey) from customer",
                &QueryOptions::decorrelated(),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "rewrite");
        // But the Auto and Iterative strategies still execute it.
        let auto = db
            .query("select custkey, spin(custkey) as s from customer where custkey = 3")
            .unwrap();
        assert_eq!(auto.column("s").unwrap(), vec![Value::Int(3)]);
    }

    #[test]
    fn parallelism_knob_preserves_results_and_reports_a_trace() {
        let mut db = sample_db();
        // Bulk both tables up past the morsel floor so operators fan out whichever
        // strategy the cost model picks.
        let mut extra_customers = vec![];
        let mut extra_orders = vec![];
        for i in 0..2_000i64 {
            extra_customers.push(Row::new(vec![
                Value::Int(100 + i),
                Value::str(format!("Extra#{i}")),
            ]));
            extra_orders.push(Row::new(vec![
                Value::Int(10_000 + i),
                Value::Int(100 + i),
                Value::Float(500.0 * (i % 7) as f64),
            ]));
        }
        db.load_rows("customer", extra_customers).unwrap();
        db.load_rows("orders", extra_orders).unwrap();
        let sql = "select custkey, service_level(custkey) as level from customer";
        let serial = db.query(sql).unwrap();
        assert_eq!(db.parallelism(), 1);
        db.set_parallelism(4);
        assert_eq!(db.parallelism(), 4);
        assert_eq!(db.exec_config().parallelism, 4);
        let parallel = db.query(sql).unwrap();
        assert_eq!(serial.rows, parallel.rows);
        assert!(parallel.exec_stats.morsels_dispatched > 0);
        assert!(!parallel.exec_trace.is_empty());
        let analyzed = db.explain_analyze(sql).unwrap();
        assert!(analyzed.contains("== execution =="), "{analyzed}");
        assert!(analyzed.contains("parallelism=4"), "{analyzed}");
        assert!(analyzed.contains("== parallel operators =="), "{analyzed}");
        assert!(analyzed.contains("morsels"), "{analyzed}");
    }

    #[test]
    fn errors_surface_cleanly() {
        let mut db = Database::new();
        assert_eq!(
            db.execute("create tabel t(x int)").unwrap_err().kind(),
            "parse"
        );
        assert_eq!(
            db.query("select * from missing").unwrap_err().kind(),
            "catalog"
        );
    }
}
