//! Decorrelation of UDF invocations — the paper's primary contribution.
//!
//! The pipeline mirrors Figure 9 of the paper:
//!
//! 1. [`algebraize`] — build a *parameterized algebraic expression* for each UDF used by
//!    the query (Section IV), handling assignments, scalar queries, conditional
//!    branching, and cursor loops via auxiliary aggregates (Section VII).
//! 2. [`merge`] — merge the UDF expression with the calling query block using the Apply
//!    operator with the *bind* extension (Section V, rule K6).
//! 3. [`rules`] — remove the Apply operators using the known rules K1–K6 of
//!    Galindo-Legaria & Joshi and the paper's new rules R1–R9, plus the standard
//!    correlated-scalar-aggregate decorrelation and cleanup rules
//!    (predicate pushdown, projection merging). The [`rules::FixpointEngine`] drives a
//!    [`rules::RuleSet`] to fixpoint with per-rule fire counts, iteration counts and a
//!    firing budget that turns a cyclic rule set into an error instead of a hang.
//! 4. [`sql_gen`] — renders the rewritten plan back to SQL text, for use as an external
//!    preprocessor in front of a database system.
//!
//! The *orchestration* of these steps — which pass runs when, with which budget, and the
//! decision to keep the iterative plan when an Apply survives — lives in the
//! `decorr-optimizer` crate's `PassManager`, exactly like the paper's placement of the
//! rules inside a cost-based optimizer. This crate only provides the mechanics.

pub mod algebraize;
pub mod merge;
pub mod rules;
pub mod sql_gen;

pub use algebraize::{algebraize_udf, AlgebraizedUdf};
pub use merge::{merge_udf_calls, MergeOutcome};
pub use rules::{FixpointEngine, FixpointOutcome, RuleSet};
pub use sql_gen::plan_to_sql;
