//! Decorrelation of UDF invocations — the paper's primary contribution.
//!
//! The pipeline mirrors Figure 9 of the paper:
//!
//! 1. [`algebraize`] — build a *parameterized algebraic expression* for each UDF used by
//!    the query (Section IV), handling assignments, scalar queries, conditional
//!    branching, and cursor loops via auxiliary aggregates (Section VII).
//! 2. [`merge`] — merge the UDF expression with the calling query block using the Apply
//!    operator with the *bind* extension (Section V, rule K6).
//! 3. [`rules`] — remove the Apply operators using the known rules K1–K6 of
//!    Galindo-Legaria & Joshi and the paper's new rules R1–R9, plus the standard
//!    correlated-scalar-aggregate decorrelation and cleanup rules
//!    (predicate pushdown, projection merging).
//! 4. [`rewriter`] — the driver: orchestrates the above, reports which rules fired, and —
//!    exactly like the paper's tool — refuses to transform the query if some Apply
//!    operator cannot be removed (the iterative plan then remains the executed
//!    alternative).
//! 5. [`sql_gen`] — renders the rewritten plan back to SQL text, for use as an external
//!    preprocessor in front of a database system.

pub mod algebraize;
pub mod merge;
pub mod rewriter;
pub mod rules;
pub mod sql_gen;

pub use algebraize::{algebraize_udf, AlgebraizedUdf};
pub use merge::merge_udf_calls;
pub use rewriter::{rewrite_query, RewriteOptions, RewriteOutcome};
pub use rules::{apply_rules_to_fixpoint, RuleSet};
pub use sql_gen::plan_to_sql;
