//! SQL text generation for rewritten plans.
//!
//! The paper's tool is a preprocessor: it emits a rewritten SQL query (plus auxiliary
//! function definitions) that is then submitted to the database system. This module
//! renders a logical plan back into SQL. Plans produced by the decorrelation pipeline
//! (projections, selections, joins, group-by, sort, limit over base tables) render into
//! idiomatic SQL with derived tables where necessary; operators that have no SQL
//! equivalent (the Apply family) are rendered as comments so partially rewritten plans
//! remain inspectable.

use decorr_algebra::{AggFunc, JoinKind, RelExpr, ScalarExpr};

/// Renders a plan as a SQL query string.
pub fn plan_to_sql(plan: &RelExpr) -> String {
    render(plan, &mut 0)
}

fn fresh_alias(counter: &mut usize) -> String {
    *counter += 1;
    format!("d{counter}")
}

fn render(plan: &RelExpr, counter: &mut usize) -> String {
    match plan {
        RelExpr::Project {
            input,
            items,
            distinct,
        } => {
            let list: Vec<String> = items
                .iter()
                .enumerate()
                .map(|(i, item)| match &item.alias {
                    Some(a) => format!("{} as {a}", render_expr(&item.expr)),
                    None => {
                        let rendered = render_expr(&item.expr);
                        if matches!(item.expr, ScalarExpr::Column(_)) {
                            rendered
                        } else {
                            format!("{rendered} as {}", item.output_name(i))
                        }
                    }
                })
                .collect();
            let distinct_kw = if *distinct { "distinct " } else { "" };
            format!(
                "select {distinct_kw}{} from {}",
                list.join(", "),
                render_from(input, counter)
            )
        }
        RelExpr::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut list: Vec<String> = group_by.iter().map(render_expr).collect();
            for a in aggregates {
                let args = if matches!(a.func, AggFunc::CountStar) {
                    "*".to_string()
                } else {
                    a.args
                        .iter()
                        .map(render_expr)
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                list.push(format!("{}({args}) as {}", a.func.name(), a.alias));
            }
            let group_clause = if group_by.is_empty() {
                String::new()
            } else {
                format!(
                    " group by {}",
                    group_by
                        .iter()
                        .map(render_expr)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            format!(
                "select {} from {}{}",
                list.join(", "),
                render_from(input, counter),
                group_clause
            )
        }
        RelExpr::Select { input, predicate } => match input.as_ref() {
            // σ over something that renders as FROM-able: emit WHERE.
            RelExpr::Scan { .. } | RelExpr::Join { .. } | RelExpr::Rename { .. } => format!(
                "select * from {} where {}",
                render_from(input, counter),
                render_expr(predicate)
            ),
            _ => format!(
                "select * from ({}) {} where {}",
                render(input, counter),
                fresh_alias(counter),
                render_expr(predicate)
            ),
        },
        RelExpr::Sort { input, keys } => {
            let keys_s: Vec<String> = keys
                .iter()
                .map(|k| {
                    format!(
                        "{}{}",
                        render_expr(&k.expr),
                        if k.ascending { "" } else { " desc" }
                    )
                })
                .collect();
            format!("{} order by {}", render(input, counter), keys_s.join(", "))
        }
        RelExpr::Limit { input, limit } => format!("{} limit {limit}", render(input, counter)),
        RelExpr::Union { left, right, all } => format!(
            "({}) union{} ({})",
            render(left, counter),
            if *all { " all" } else { "" },
            render(right, counter)
        ),
        RelExpr::Single => "select 1".to_string(),
        RelExpr::Values { rows, .. } => format!("/* VALUES ({} rows) */ select 1", rows.len()),
        other => format!("select * from {}", render_from(other, counter)),
    }
}

/// Renders a plan as something that can appear in a FROM clause.
fn render_from(plan: &RelExpr, counter: &mut usize) -> String {
    match plan {
        RelExpr::Scan { table, alias } => match alias {
            Some(a) if a != table => format!("{table} {a}"),
            _ => table.clone(),
        },
        RelExpr::Rename { input, alias } => {
            format!("({}) {alias}", render(input, counter))
        }
        RelExpr::Join {
            left,
            right,
            kind,
            condition,
        } => {
            let join_kw = match kind {
                JoinKind::Inner => "join",
                JoinKind::LeftOuter => "left outer join",
                JoinKind::LeftSemi => "/* semi */ join",
                JoinKind::LeftAnti => "/* anti */ join",
                JoinKind::Cross => "cross join",
            };
            let on = condition
                .as_ref()
                .map(|c| format!(" on {}", render_expr(c)))
                .unwrap_or_default();
            format!(
                "{} {join_kw} {}{on}",
                render_from(left, counter),
                render_from(right, counter)
            )
        }
        RelExpr::Select { input, predicate } => {
            // A filtered base table inside a FROM clause becomes a derived table.
            let alias = fresh_alias(counter);
            format!(
                "(select * from {} where {}) {alias}",
                render_from(input, counter),
                render_expr(predicate)
            )
        }
        RelExpr::Single => "(select 1) single_row".to_string(),
        RelExpr::Apply { .. }
        | RelExpr::ApplyMerge { .. }
        | RelExpr::ConditionalApplyMerge { .. } => {
            format!(
                "(/* correlated apply operator — not expressible in SQL */ {}) {}",
                plan.name(),
                fresh_alias(counter)
            )
        }
        other => {
            let alias = fresh_alias(counter);
            format!("({}) {alias}", render(other, counter))
        }
    }
}

fn render_expr(expr: &ScalarExpr) -> String {
    // The Display implementation of ScalarExpr is already SQL-flavoured; subqueries are
    // the only construct that needs recursion into plans.
    match expr {
        ScalarExpr::ScalarSubquery(q) => format!("({})", plan_to_sql(q)),
        ScalarExpr::Exists(q) => format!("exists ({})", plan_to_sql(q)),
        ScalarExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => format!(
            "{} {}in ({})",
            render_expr(expr),
            if *negated { "not " } else { "" },
            plan_to_sql(subquery)
        ),
        ScalarExpr::Binary { op, left, right } => {
            format!(
                "({} {} {})",
                render_expr(left),
                op.sql(),
                render_expr(right)
            )
        }
        ScalarExpr::Case {
            branches,
            else_expr,
        } => {
            let mut s = String::from("case");
            for (p, e) in branches {
                s.push_str(&format!(" when {} then {}", render_expr(p), render_expr(e)));
            }
            if let Some(e) = else_expr {
                s.push_str(&format!(" else {}", render_expr(e)));
            }
            s.push_str(" end");
            s
        }
        ScalarExpr::Coalesce(args) => format!(
            "coalesce({})",
            args.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::{AggCall, PlanBuilder, ScalarExpr as E};

    #[test]
    fn renders_flat_select() {
        let plan = PlanBuilder::scan("orders")
            .select(E::gt(E::column("totalprice"), E::literal(100)))
            .project(vec![(E::column("orderkey"), None)])
            .build();
        let sql = plan_to_sql(&plan);
        assert!(sql.starts_with("select orderkey from"));
        assert!(sql.contains("where (totalprice > 100)"));
    }

    #[test]
    fn renders_example2_shape() {
        // customer ⟕ (custkey G sum(totalprice)) with a CASE projection — the paper's
        // Example 2.
        let grouped = PlanBuilder::scan("orders").aggregate(
            vec![E::column("custkey")],
            vec![AggCall::new(
                decorr_algebra::AggFunc::Sum,
                vec![E::column("totalprice")],
                "totalbusiness",
            )],
        );
        let plan = PlanBuilder::scan_as("customer", "c")
            .join(
                grouped,
                decorr_algebra::JoinKind::LeftOuter,
                Some(E::eq(
                    E::qualified_column("c", "custkey"),
                    E::column("custkey"),
                )),
            )
            .project(vec![
                (E::qualified_column("c", "custkey"), None),
                (
                    E::Case {
                        branches: vec![(
                            E::gt(E::column("totalbusiness"), E::literal(1_000_000)),
                            E::literal("Platinum"),
                        )],
                        else_expr: Some(Box::new(E::literal("Regular"))),
                    },
                    Some("level"),
                ),
            ])
            .build();
        let sql = plan_to_sql(&plan);
        assert!(sql.contains("left outer join"));
        assert!(sql.contains("group by custkey"));
        assert!(sql.contains("case when (totalbusiness > 1000000) then 'Platinum'"));
    }

    #[test]
    fn renders_apply_as_comment() {
        let plan = PlanBuilder::scan("customer")
            .apply(
                PlanBuilder::scan("orders"),
                decorr_algebra::ApplyKind::Cross,
                vec![],
            )
            .project(vec![(E::column("custkey"), None)])
            .build();
        let sql = plan_to_sql(&plan);
        assert!(sql.contains("correlated apply operator"));
    }

    #[test]
    fn renders_limit_and_order_by() {
        let plan = PlanBuilder::scan("orders")
            .project(vec![(E::column("orderkey"), None)])
            .sort(vec![(E::column("orderkey"), false)])
            .limit(10)
            .build();
        let sql = plan_to_sql(&plan);
        assert!(sql.contains("order by orderkey desc"));
        assert!(sql.ends_with("limit 10"));
    }
}
