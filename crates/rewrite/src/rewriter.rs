//! The rewrite driver (the paper's Figure 9 pipeline).

use decorr_algebra::{RelExpr, SchemaProvider};
use decorr_common::Result;
use decorr_udf::{AggregateDefinition, FunctionRegistry};

use crate::merge::merge_udf_calls;
use crate::rules::{apply_rules_to_fixpoint, RuleSet};

/// Options controlling the rewrite.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Maximum number of full rule passes over the tree.
    pub max_iterations: usize,
    /// If true (the default, matching the paper's tool), the query is returned
    /// *untransformed* when some Apply operator cannot be removed; if false, the
    /// partially rewritten plan is returned and remaining Apply operators are executed
    /// as correlated evaluation.
    pub require_full_decorrelation: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            max_iterations: 50,
            require_full_decorrelation: true,
        }
    }
}

/// The result of attempting to decorrelate a query.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The plan to execute (rewritten if decorrelation succeeded, otherwise the
    /// original).
    pub plan: RelExpr,
    /// True if every merged UDF invocation was decorrelated (no Apply operators remain).
    pub decorrelated: bool,
    /// Number of UDF invocations replaced by algebraic forms.
    pub merged_calls: usize,
    /// Auxiliary aggregates that must be registered before executing the rewritten plan.
    pub aux_aggregates: Vec<AggregateDefinition>,
    /// Names of the transformation rules that fired, in order.
    pub applied_rules: Vec<String>,
    /// Human-readable notes: UDFs that could not be algebraized, why decorrelation was
    /// abandoned, etc.
    pub notes: Vec<String>,
}

/// Runs the full rewrite pipeline on a query plan:
/// algebraize + merge UDF invocations (Sections IV, V, VII), then remove Apply operators
/// with the transformation rules (Section VI).
pub fn rewrite_query(
    plan: &RelExpr,
    registry: &FunctionRegistry,
    provider: &dyn SchemaProvider,
    options: &RewriteOptions,
) -> Result<RewriteOutcome> {
    let mut notes = vec![];
    if !plan.contains_udf_call() {
        return Ok(RewriteOutcome {
            plan: plan.clone(),
            decorrelated: false,
            merged_calls: 0,
            aux_aggregates: vec![],
            applied_rules: vec![],
            notes: vec!["query invokes no user-defined functions".into()],
        });
    }
    let merged = merge_udf_calls(plan, registry, provider)?;
    for (name, reason) in &merged.skipped {
        notes.push(format!(
            "UDF '{name}' kept as an iterative invocation: {reason}"
        ));
    }
    if merged.merged_calls == 0 {
        return Ok(RewriteOutcome {
            plan: plan.clone(),
            decorrelated: false,
            merged_calls: 0,
            aux_aggregates: vec![],
            applied_rules: vec![],
            notes,
        });
    }
    let rules = RuleSet::default_pipeline();
    // The rules must also see the auxiliary aggregates synthesised during merging (their
    // return types and empty-input values), even though they are only registered with the
    // engine when the rewritten plan is executed.
    let provider_with_aux = AuxAggregateProvider {
        inner: provider,
        aggregates: &merged.aux_aggregates,
    };
    let (rewritten, applied_rules) = apply_rules_to_fixpoint(
        &merged.plan,
        &rules,
        &provider_with_aux,
        options.max_iterations,
    );
    let decorrelated = !rewritten.contains_apply();
    if !decorrelated && options.require_full_decorrelation {
        notes.push(
            "some Apply operators could not be removed; the query was left untransformed \
             (iterative invocation remains the execution strategy)"
                .into(),
        );
        return Ok(RewriteOutcome {
            plan: plan.clone(),
            decorrelated: false,
            merged_calls: merged.merged_calls,
            aux_aggregates: vec![],
            applied_rules,
            notes,
        });
    }
    Ok(RewriteOutcome {
        plan: rewritten,
        decorrelated,
        merged_calls: merged.merged_calls,
        aux_aggregates: merged.aux_aggregates,
        applied_rules,
        notes,
    })
}

/// A [`SchemaProvider`] that layers the auxiliary aggregates synthesised by the current
/// rewrite on top of the engine-provided catalog view.
struct AuxAggregateProvider<'a> {
    inner: &'a dyn SchemaProvider,
    aggregates: &'a [AggregateDefinition],
}

impl SchemaProvider for AuxAggregateProvider<'_> {
    fn table_schema(&self, table: &str) -> Result<decorr_common::Schema> {
        self.inner.table_schema(table)
    }

    fn udf_return_type(&self, name: &str) -> Option<decorr_common::DataType> {
        self.aggregates
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
            .map(|a| a.return_type)
            .or_else(|| self.inner.udf_return_type(name))
    }

    fn aggregate_empty_value(&self, name: &str) -> Option<decorr_common::Value> {
        if let Some(agg) = self
            .aggregates
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
        {
            return match &agg.terminate {
                decorr_algebra::ScalarExpr::Param(p) => agg
                    .state
                    .iter()
                    .find(|(var, _, _)| var == p)
                    .map(|(_, _, init)| init.clone()),
                decorr_algebra::ScalarExpr::Literal(v) => Some(v.clone()),
                _ => None,
            };
        }
        self.inner.aggregate_empty_value(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::display::explain;
    use decorr_algebra::schema::MapProvider;
    use decorr_common::{Column, DataType, Schema};
    use decorr_parser::{parse_and_plan, parse_function};

    fn provider() -> MapProvider {
        MapProvider::new()
            .with_table(
                "customer",
                Schema::new(vec![
                    Column::new("custkey", DataType::Int),
                    Column::new("name", DataType::Str),
                ]),
            )
            .with_table(
                "orders",
                Schema::new(vec![
                    Column::new("orderkey", DataType::Int),
                    Column::new("custkey", DataType::Int),
                    Column::new("totalprice", DataType::Float),
                ]),
            )
    }

    #[test]
    fn decorrelates_example3_discount() {
        // Example 3: after rewriting, no Apply and no UDF call remain and the arithmetic
        // is inlined into the projection (Π_{orderkey, totalprice*0.15}(orders)).
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function discount(float amount) returns float as \
                 begin return amount * 0.15; end",
            )
            .unwrap(),
        );
        let plan =
            parse_and_plan("select orderkey, discount(totalprice) as d from orders").unwrap();
        let outcome =
            rewrite_query(&plan, &registry, &provider(), &RewriteOptions::default()).unwrap();
        assert!(outcome.decorrelated);
        assert!(!outcome.plan.contains_apply());
        assert!(!outcome.plan.contains_udf_call());
        let text = explain(&outcome.plan);
        assert!(text.contains("totalprice * 0.15) as d"), "plan:\n{text}");
        assert!(text.contains("Scan orders"));
        // The whole plan collapses to a single projection over the scan.
        assert!(outcome.plan.node_count() <= 3, "plan:\n{text}");
    }

    #[test]
    fn decorrelates_example1_service_level_into_outer_join() {
        // Example 1 → Example 2: the rewritten form is a left outer join between
        // customer and a grouped aggregation over orders, with a CASE projection.
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function service_level(int ckey) returns char(10) as \
                 begin \
                   float totalbusiness; string level; \
                   select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
                   if (totalbusiness > 1000000) level = 'Platinum'; \
                   else if (totalbusiness > 500000) level = 'Gold'; \
                   else level = 'Regular'; \
                   return level; \
                 end",
            )
            .unwrap(),
        );
        let plan =
            parse_and_plan("select custkey, service_level(custkey) as level from customer")
                .unwrap();
        let outcome =
            rewrite_query(&plan, &registry, &provider(), &RewriteOptions::default()).unwrap();
        let text = explain(&outcome.plan);
        assert!(outcome.decorrelated, "rules: {:?}\nnotes: {:?}\nplan:\n{text}",
            outcome.applied_rules, outcome.notes);
        assert!(text.contains("Join(left outer)"), "plan:\n{text}");
        assert!(text.contains("Aggregate group_by=[orders.custkey]"), "plan:\n{text}");
        assert!(text.contains("'Platinum'"), "plan:\n{text}");
        assert!(!outcome.plan.contains_udf_call());
        // R9, R2, R8, R4 and the scalar-aggregate decorrelation must all have fired.
        for expected in [
            "R9-apply-bind-removal",
            "R8-conditional-merge-to-case",
            "decorrelate-scalar-aggregate",
        ] {
            assert!(
                outcome.applied_rules.iter().any(|r| r == expected),
                "expected rule {expected} to fire; fired: {:?}",
                outcome.applied_rules
            );
        }
    }

    #[test]
    fn query_without_udfs_is_untouched() {
        let registry = FunctionRegistry::new();
        let plan = parse_and_plan("select custkey from customer").unwrap();
        let outcome =
            rewrite_query(&plan, &registry, &provider(), &RewriteOptions::default()).unwrap();
        assert!(!outcome.decorrelated);
        assert_eq!(outcome.plan, plan);
    }

    #[test]
    fn non_decorrelatable_udf_keeps_original_plan() {
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function spin(int n) returns int as \
                 begin int i = 0; while (i < n) begin i = i + 1; end return i; end",
            )
            .unwrap(),
        );
        let plan = parse_and_plan("select spin(custkey) from customer").unwrap();
        let outcome =
            rewrite_query(&plan, &registry, &provider(), &RewriteOptions::default()).unwrap();
        assert!(!outcome.decorrelated);
        assert_eq!(outcome.plan, plan);
        assert!(outcome.notes.iter().any(|n| n.contains("WHILE")));
    }
}
