//! Algebraic representation of UDFs (Sections IV and VII).
//!
//! The algebraizer turns the procedural body of a UDF into a *parameterized* relational
//! expression whose only free parameters are the UDF's formal arguments and whose single
//! output column is `retval`:
//!
//! * the running context (the paper's `Eudf` built left-to-right over logical nodes) is a
//!   single-tuple expression whose attributes are the UDF's local variables;
//! * variable declarations use Apply-cross over a projection on `Single`;
//! * assignments and `SELECT … INTO` use Apply-Merge;
//! * if-then-else blocks use Conditional Apply-Merge, recursively;
//! * the `RETURN` expression is attached with Apply-cross and projected as `retval`;
//! * cursor loops whose bodies carry cyclic data dependences are converted into a
//!   user-defined *auxiliary aggregate* (Section VII-A, Example 6) applied over the
//!   cursor query.

use std::collections::{HashMap, HashSet};

use decorr_algebra::visit::{map_own_exprs, map_plan_exprs};
use decorr_algebra::{
    AggCall, AggFunc, ApplyKind, ProjectItem, RelExpr, ScalarExpr, SchemaProvider,
};
use decorr_common::{DataType, Error, Result, Value};
use decorr_udf::analysis::DataDependenceGraph;
use decorr_udf::{
    synthesize_aux_aggregate, AggregateDefinition, FunctionRegistry, Statement, UdfDefinition,
};

/// The result of algebraizing a UDF.
#[derive(Debug, Clone)]
pub struct AlgebraizedUdf {
    /// The parameterized expression tree. Its free parameters are exactly the UDF's
    /// formal parameter names; its output schema is a single column named `retval`.
    pub plan: RelExpr,
    /// Auxiliary aggregates synthesised from cursor loops; the caller must register them
    /// before executing the rewritten plan.
    pub aux_aggregates: Vec<AggregateDefinition>,
}

struct Algebraizer<'a> {
    udf: &'a UdfDefinition,
    registry: &'a FunctionRegistry,
    provider: &'a dyn SchemaProvider,
    /// Formal parameter names.
    params: HashSet<String>,
    /// Local variables currently in scope (declaration order preserved separately).
    locals: HashSet<String>,
    var_types: Vec<(String, DataType)>,
    /// Statically known initial values (literal declarations/assignments) for Section
    /// VII's "initial values statically determinable" condition.
    literal_values: HashMap<String, Value>,
    aux_aggregates: Vec<AggregateDefinition>,
    aux_counter: usize,
}

/// Algebraizes a scalar UDF (Section IV; loops per Section VII-A).
///
/// Fails with [`Error::Unsupported`] / [`Error::Rewrite`] when the UDF falls outside the
/// decorrelatable class (arbitrary `WHILE` loops, loops whose cyclic part still executes
/// queries, multiple live-out loop variables, table-valued results in a scalar context).
/// Callers treat such failures as "keep the iterative plan".
pub fn algebraize_udf(
    udf: &UdfDefinition,
    registry: &FunctionRegistry,
    provider: &dyn SchemaProvider,
) -> Result<AlgebraizedUdf> {
    if udf.is_table_valued() {
        return algebraize_table_udf(udf, registry, provider);
    }
    let mut alg = Algebraizer::new(udf, registry, provider);
    let mut ctx = RelExpr::Single;
    let mut return_plan: Option<RelExpr> = None;
    for stmt in &udf.body {
        if return_plan.is_some() {
            break; // statements after an unconditional RETURN are dead code
        }
        match stmt {
            Statement::Return { expr } => {
                let expr = expr.clone().ok_or_else(|| {
                    Error::Unsupported("scalar UDF with a bare RETURN".to_string())
                })?;
                return_plan = Some(alg.attach_return(ctx.clone(), &expr)?);
            }
            other => {
                ctx = alg.algebraize_statement(ctx, other)?;
            }
        }
    }
    let plan = return_plan.ok_or_else(|| {
        Error::Unsupported(format!(
            "UDF '{}' has no top-level RETURN statement; conditional returns are not \
             decorrelatable",
            udf.name
        ))
    })?;
    Ok(AlgebraizedUdf {
        plan,
        aux_aggregates: alg.aux_aggregates,
    })
}

/// Algebraizes a table-valued UDF per Section VII-B:
/// `((S A× Ec) AM Eb) A× Π_{v1 as a1, …}(S)`, restricted to insert-only cursor loops
/// without cyclic data dependences.
pub fn algebraize_table_udf(
    udf: &UdfDefinition,
    registry: &FunctionRegistry,
    provider: &dyn SchemaProvider,
) -> Result<AlgebraizedUdf> {
    let schema = udf
        .returns_table
        .clone()
        .ok_or_else(|| Error::Internal("algebraize_table_udf on a scalar UDF".into()))?;
    let mut alg = Algebraizer::new(udf, registry, provider);
    // Find the single cursor loop; everything before it must be simple declarations.
    let mut ctx = RelExpr::Single;
    let mut result: Option<RelExpr> = None;
    for stmt in &udf.body {
        match stmt {
            Statement::Declare { .. } | Statement::Assign { .. } => {
                ctx = alg.algebraize_statement(ctx, stmt)?;
            }
            Statement::CursorLoop {
                query,
                fetch_vars,
                body,
            } => {
                if result.is_some() {
                    return Err(Error::Unsupported(
                        "table-valued UDF with more than one cursor loop".into(),
                    ));
                }
                // Condition (i) of Section VII-B: no cyclic data dependences.
                let mut known = alg.known_vars();
                known.extend(fetch_vars.iter().cloned());
                let ddg = DataDependenceGraph::build(body, &known);
                if ddg.first_cyclic_node().is_some() {
                    return Err(Error::Unsupported(
                        "table-valued UDF whose loop has cyclic data dependences".into(),
                    ));
                }
                // Conditions (ii)/(iii): inserts only; collect exactly the insert values.
                let mut inserts = vec![];
                let mut loop_ctx = alg.cursor_context(query, fetch_vars)?;
                for s in body {
                    match s {
                        Statement::InsertIntoResult { values } => inserts.push(values.clone()),
                        Statement::Declare { .. } | Statement::Assign { .. } => {
                            loop_ctx = alg.algebraize_statement(loop_ctx, s)?;
                        }
                        Statement::If { .. } => {
                            return Err(Error::Unsupported(
                                "conditional inserts in table-valued UDFs are not supported".into(),
                            ))
                        }
                        other => {
                            return Err(Error::Unsupported(format!(
                                "statement '{}' inside a table-valued UDF loop",
                                other.kind()
                            )))
                        }
                    }
                }
                if inserts.len() != 1 {
                    return Err(Error::Unsupported(format!(
                        "table-valued UDF must insert exactly once per iteration (found {})",
                        inserts.len()
                    )));
                }
                // Π_{v1 as a1, v2 as a2, …} over the per-iteration context.
                let values = &inserts[0];
                if values.len() != schema.len() {
                    return Err(Error::TypeError(format!(
                        "insert provides {} values for {} result columns",
                        values.len(),
                        schema.len()
                    )));
                }
                let items = values
                    .iter()
                    .zip(schema.columns.iter())
                    .map(|(v, c)| ProjectItem::aliased(alg.normalize_expr(v), c.name.clone()))
                    .collect();
                result = Some(RelExpr::Project {
                    input: Box::new(loop_ctx),
                    items,
                    distinct: false,
                });
            }
            Statement::Return { .. } => break,
            other => {
                return Err(Error::Unsupported(format!(
                    "statement '{}' in a table-valued UDF body",
                    other.kind()
                )))
            }
        }
    }
    let plan = result
        .ok_or_else(|| Error::Unsupported("table-valued UDF without a cursor loop".to_string()))?;
    Ok(AlgebraizedUdf {
        plan,
        aux_aggregates: alg.aux_aggregates,
    })
}

impl<'a> Algebraizer<'a> {
    fn new(
        udf: &'a UdfDefinition,
        registry: &'a FunctionRegistry,
        provider: &'a dyn SchemaProvider,
    ) -> Algebraizer<'a> {
        let params: HashSet<String> = udf.param_names().into_iter().collect();
        let mut var_types: Vec<(String, DataType)> = udf
            .params
            .iter()
            .map(|p| (p.name.clone(), p.data_type))
            .collect();
        var_types.extend(udf.declared_variables());
        Algebraizer {
            udf,
            registry,
            provider,
            params,
            locals: HashSet::new(),
            var_types,
            literal_values: HashMap::new(),
            aux_aggregates: vec![],
            aux_counter: 0,
        }
    }

    fn known_vars(&self) -> HashSet<String> {
        self.params.union(&self.locals).cloned().collect()
    }

    /// Normalises identifier references inside statement expressions: local variables
    /// become (correlated) column references against the running context, formal
    /// parameters become `Param`s, and everything else is left alone.
    fn normalize_expr(&self, expr: &ScalarExpr) -> ScalarExpr {
        let locals = self.locals.clone();
        let params = self.params.clone();
        decorr_algebra::visit::transform_expr_up(expr, &mut |e| normalize_ref(e, &locals, &params))
    }

    /// Same normalisation applied to every expression of a query plan (e.g. the plan of a
    /// `SELECT … INTO` or cursor query, where `:custcat` refers to a local variable).
    ///
    /// Column references that resolve against the query's *own* tables are additionally
    /// qualified with their table alias (`custkey` → `customer.custkey`), so that they do
    /// not become ambiguous once the query is hoisted into the calling block's scope by
    /// the Apply-removal rules.
    fn normalize_plan(&self, plan: &RelExpr) -> RelExpr {
        let locals = self.locals.clone();
        let params = self.params.clone();
        let normalized = map_plan_exprs(plan, &mut |e| normalize_ref(e, &locals, &params));
        qualify_plan(&normalized, self.provider)
    }

    /// Algebraizes one non-return statement, extending the running context.
    fn algebraize_statement(&mut self, ctx: RelExpr, stmt: &Statement) -> Result<RelExpr> {
        match stmt {
            Statement::Declare {
                name,
                data_type,
                init,
            } => {
                let init_expr = match init {
                    Some(e) => self.normalize_expr(e),
                    None => ScalarExpr::Literal(data_type.uninitialized()),
                };
                // Track statically-known initial values for Section VII's condition 1.
                match &init_expr {
                    ScalarExpr::Literal(v) => {
                        self.literal_values.insert(name.clone(), v.clone());
                    }
                    _ => {
                        self.literal_values.remove(name);
                    }
                }
                self.locals.insert(name.clone());
                if !self.var_types.iter().any(|(n, _)| n == name) {
                    self.var_types.push((name.clone(), *data_type));
                }
                // ctx A× Π_{init as name}(S)
                Ok(RelExpr::Apply {
                    left: Box::new(ctx),
                    right: Box::new(project_on_single(vec![(init_expr, name.clone())])),
                    kind: ApplyKind::Cross,
                    bindings: vec![],
                })
            }
            Statement::Assign { name, expr } => {
                if !self.locals.contains(name) {
                    // Assignment to an undeclared variable: treat as implicit declaration
                    // (some dialects allow this for @variables).
                    self.locals.insert(name.clone());
                    if !self.var_types.iter().any(|(n, _)| n == name) {
                        self.var_types.push((name.clone(), DataType::Null));
                    }
                    let declared = self.algebraize_statement(
                        ctx,
                        &Statement::Declare {
                            name: name.clone(),
                            data_type: DataType::Null,
                            init: None,
                        },
                    )?;
                    return self.algebraize_statement(
                        declared,
                        &Statement::Assign {
                            name: name.clone(),
                            expr: expr.clone(),
                        },
                    );
                }
                match expr {
                    ScalarExpr::Literal(v) => {
                        self.literal_values.insert(name.clone(), v.clone());
                    }
                    _ => {
                        self.literal_values.remove(name);
                    }
                }
                // Assignment from a scalar query uses the query plan directly as the
                // inner expression; any other expression is a projection on Single.
                let right = match expr {
                    ScalarExpr::ScalarSubquery(q) => single_column_as(self.normalize_plan(q), name),
                    other => project_on_single(vec![(self.normalize_expr(other), name.clone())]),
                };
                Ok(RelExpr::ApplyMerge {
                    left: Box::new(ctx),
                    right: Box::new(right),
                    assignments: vec![],
                })
            }
            Statement::SelectInto { query, targets } => {
                for t in targets {
                    if !self.locals.contains(t) && !self.params.contains(t) {
                        self.locals.insert(t.clone());
                        if !self.var_types.iter().any(|(n, _)| n == t) {
                            self.var_types.push((t.clone(), DataType::Null));
                        }
                    }
                    self.literal_values.remove(t);
                }
                let normalized = self.normalize_plan(query);
                let right = columns_as(normalized, targets)?;
                Ok(RelExpr::ApplyMerge {
                    left: Box::new(ctx),
                    right: Box::new(right),
                    assignments: vec![],
                })
            }
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                let predicate = self.normalize_expr(condition);
                let then_plan = self.algebraize_branch(then_branch)?;
                let else_plan = self.algebraize_branch(else_branch)?;
                // Variables assigned inside branches no longer have statically known
                // values.
                for s in then_branch.iter().chain(else_branch) {
                    for w in decorr_udf::analysis::statement_writes(s) {
                        self.literal_values.remove(&w);
                    }
                }
                Ok(RelExpr::ConditionalApplyMerge {
                    left: Box::new(ctx),
                    predicate,
                    then_branch: Box::new(then_plan),
                    else_branch: Box::new(else_plan),
                    assignments: vec![],
                })
            }
            Statement::CursorLoop {
                query,
                fetch_vars,
                body,
            } => self.algebraize_cursor_loop(ctx, query, fetch_vars, body),
            Statement::While { .. } => Err(Error::Unsupported(format!(
                "UDF '{}' contains an arbitrary WHILE loop (dynamic iteration space); \
                 it can be executed iteratively but not decorrelated",
                self.udf.name
            ))),
            Statement::InsertIntoResult { .. } => Err(Error::Unsupported(
                "INSERT into a result table outside a table-valued UDF".into(),
            )),
            Statement::Return { .. } => Err(Error::Internal("RETURN handled by the caller".into())),
        }
    }

    /// Algebraizes the statements of an if/else arm into a single-tuple expression over
    /// `Single` (the paper's e_t / e_f).
    fn algebraize_branch(&mut self, stmts: &[Statement]) -> Result<RelExpr> {
        let mut plan = RelExpr::Single;
        for stmt in stmts {
            match stmt {
                Statement::Return { .. } => {
                    return Err(Error::Unsupported(
                        "RETURN inside a conditional branch is not decorrelatable".into(),
                    ))
                }
                other => {
                    plan = self.algebraize_statement(plan, other)?;
                }
            }
        }
        Ok(plan)
    }

    /// Builds the per-iteration context of a cursor loop: the cursor query with its
    /// output columns renamed to the fetch variables (the `fetch next … into` is modelled
    /// as an assignment, Section VII-A).
    fn cursor_context(&mut self, query: &RelExpr, fetch_vars: &[String]) -> Result<RelExpr> {
        let normalized = self.normalize_plan(query);
        for v in fetch_vars {
            self.locals.insert(v.clone());
        }
        columns_as(normalized, fetch_vars)
    }

    fn algebraize_cursor_loop(
        &mut self,
        ctx: RelExpr,
        query: &RelExpr,
        fetch_vars: &[String],
        body: &[Statement],
    ) -> Result<RelExpr> {
        let mut known = self.known_vars();
        known.extend(fetch_vars.iter().cloned());
        for s in body {
            known.extend(decorr_udf::analysis::statement_writes(s));
        }
        let ddg = DataDependenceGraph::build(body, &known);
        let Some(cycle_start) = ddg.first_cyclic_node() else {
            return Err(Error::Unsupported(format!(
                "cursor loop in UDF '{}' has no cyclic data dependences; its result does \
                 not feed an aggregate and cannot be decorrelated",
                self.udf.name
            )));
        };
        // E_in: the cursor query (fetch modelled as assignment) followed by the
        // statements that precede the first cyclic node.
        let mut loop_ctx = self.cursor_context(query, fetch_vars)?;
        for stmt in &body[..cycle_start] {
            match stmt {
                Statement::Declare { .. } | Statement::Assign { .. } => {
                    loop_ctx = self.algebraize_statement(loop_ctx, stmt)?;
                }
                other => {
                    return Err(Error::Unsupported(format!(
                        "statement '{}' before the cyclic part of a cursor loop",
                        other.kind()
                    )))
                }
            }
        }
        // L_c: the cyclic suffix becomes an auxiliary user-defined aggregate.
        let cyclic = &body[cycle_start..];
        let live_out = self.single_live_out(cyclic)?;
        let initial_values: Vec<(String, Value)> = self
            .literal_values
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        self.aux_counter += 1;
        let base_name = self.registry.fresh_aggregate_name(&self.udf.name);
        let name = if self.aux_counter == 1 {
            base_name
        } else {
            format!("{base_name}_{}", self.aux_counter)
        };
        let synthesized = synthesize_aux_aggregate(
            &name,
            cyclic,
            &known,
            &initial_values,
            &self.var_types,
            &live_out,
        )?;
        // E_b = G_{aux(args) as live_out}(E_in)
        let agg_args: Vec<ScalarExpr> = synthesized
            .arg_names
            .iter()
            .map(|a| ScalarExpr::column(a.clone()))
            .collect();
        // The aggregate's output gets a fresh name so it never collides with the context
        // variable it is assigned to.
        let agg_alias = format!("__loop_{live_out}");
        let aggregate = RelExpr::Aggregate {
            input: Box::new(loop_ctx),
            group_by: vec![],
            aggregates: vec![AggCall::new(
                AggFunc::UserDefined(synthesized.definition.name.clone()),
                agg_args,
                agg_alias.clone(),
            )],
        };
        self.aux_aggregates.push(synthesized.definition);
        // The loop's contribution merges the aggregate result into the context variable.
        if !self.locals.contains(&live_out) {
            return Err(Error::Rewrite(format!(
                "loop result variable '{live_out}' is not declared before the loop"
            )));
        }
        self.literal_values.remove(&live_out);
        Ok(RelExpr::ApplyMerge {
            left: Box::new(ctx),
            right: Box::new(aggregate),
            assignments: vec![decorr_algebra::plan::MergeAssignment::new(
                live_out.clone(),
                agg_alias,
            )],
        })
    }

    /// Determines the single variable that carries the loop's result (written in the
    /// cyclic part and live afterwards). The executor supports multi-variable aggregate
    /// state, but the algebraic form needs exactly one result column.
    fn single_live_out(&self, cyclic: &[Statement]) -> Result<String> {
        let mut written: Vec<String> = vec![];
        for s in cyclic {
            for w in decorr_udf::analysis::statement_writes(s) {
                if !written.contains(&w) {
                    written.push(w);
                }
            }
        }
        // Live afterwards = read by any later statement in the UDF body (including the
        // RETURN). We conservatively check the whole body text after the loop by
        // re-scanning all statements for reads of the written variables outside the loop.
        let known = self.known_vars();
        let mut live: Vec<String> = vec![];
        for stmt in &self.udf.body {
            if matches!(stmt, Statement::CursorLoop { .. }) {
                continue;
            }
            let reads = decorr_udf::analysis::statement_reads(stmt, &known);
            for w in &written {
                if reads.contains(w) && !live.contains(w) {
                    live.push(w.clone());
                }
            }
        }
        match live.len() {
            1 => Ok(live.remove(0)),
            0 => Err(Error::Unsupported(
                "cursor loop writes no variable that is used after the loop".into(),
            )),
            n => Err(Error::Unsupported(format!(
                "cursor loop has {n} live-out variables; only one is supported"
            ))),
        }
    }

    /// Attaches the RETURN expression: `Π_retval(ctx A× right)` (Section IV).
    fn attach_return(&mut self, ctx: RelExpr, expr: &ScalarExpr) -> Result<RelExpr> {
        let right = match expr {
            ScalarExpr::ScalarSubquery(q) => single_column_as(self.normalize_plan(q), "retval"),
            other => project_on_single(vec![(self.normalize_expr(other), "retval".into())]),
        };
        let applied = RelExpr::Apply {
            left: Box::new(ctx),
            right: Box::new(right),
            kind: ApplyKind::Cross,
            bindings: vec![],
        };
        Ok(RelExpr::Project {
            input: Box::new(applied),
            items: vec![ProjectItem::new(ScalarExpr::column("retval"))],
            distinct: false,
        })
    }
}

/// `Π_{expr as name, …}(S)`.
fn project_on_single(items: Vec<(ScalarExpr, String)>) -> RelExpr {
    RelExpr::Project {
        input: Box::new(RelExpr::Single),
        items: items
            .into_iter()
            .map(|(e, n)| ProjectItem::aliased(e, n))
            .collect(),
        distinct: false,
    }
}

/// Renames the first output column of `plan` to `name` (keeping only that column).
fn single_column_as(plan: RelExpr, name: &str) -> RelExpr {
    columns_as(plan, std::slice::from_ref(&name.to_string())).expect("one target")
}

/// Projects the first `targets.len()` output columns of `plan`, renamed to `targets`.
/// The projection references columns positionally through whatever projection `plan`
/// already has on top (queries produced by the planner always end in a projection).
fn columns_as(plan: RelExpr, targets: &[String]) -> Result<RelExpr> {
    match plan {
        RelExpr::Project {
            input,
            items,
            distinct,
        } => {
            if items.len() < targets.len() {
                return Err(Error::Rewrite(format!(
                    "query provides {} columns for {} assignment targets",
                    items.len(),
                    targets.len()
                )));
            }
            let renamed = items
                .into_iter()
                .take(targets.len())
                .zip(targets.iter())
                .map(|(item, t)| ProjectItem::aliased(item.expr, t.clone()))
                .collect();
            Ok(RelExpr::Project {
                input,
                items: renamed,
                distinct,
            })
        }
        // Aggregates and other shapes: wrap in a positional projection by output name.
        other => {
            let provider = decorr_algebra::EmptyProvider;
            let schema = decorr_algebra::schema::infer_schema(&other, &provider)
                .unwrap_or_else(|_| decorr_common::Schema::empty());
            if !schema.is_empty() && schema.len() >= targets.len() {
                let items = targets
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        ProjectItem::aliased(
                            ScalarExpr::column(schema.column(i).name.clone()),
                            t.clone(),
                        )
                    })
                    .collect();
                Ok(RelExpr::Project {
                    input: Box::new(other),
                    items,
                    distinct: false,
                })
            } else {
                Err(Error::Rewrite(
                    "cannot determine the output columns of an assignment query".into(),
                ))
            }
        }
    }
}

/// Qualifies unqualified column references in every operator of `plan` against the
/// schemas of that operator's own inputs.
fn qualify_plan(plan: &RelExpr, provider: &dyn SchemaProvider) -> RelExpr {
    let children: Vec<RelExpr> = plan
        .children()
        .into_iter()
        .map(|c| qualify_plan(c, provider))
        .collect();
    let node = if children.is_empty() {
        plan.clone()
    } else {
        plan.with_new_children(children)
    };
    let visible = node
        .children()
        .iter()
        .map(|c| {
            decorr_algebra::schema::infer_schema(c, provider)
                .unwrap_or_else(|_| decorr_common::Schema::empty())
        })
        .fold(decorr_common::Schema::empty(), |acc, s| acc.join(&s));
    map_own_exprs(&node, &mut |e| {
        decorr_algebra::visit::transform_expr_up(e, &mut |inner| match &inner {
            ScalarExpr::Column(c) if c.qualifier.is_none() => match visible.find(None, &c.name) {
                Some(idx) => match &visible.column(idx).qualifier {
                    Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
                    None => inner,
                },
                None => inner,
            },
            _ => inner,
        })
    })
}

fn normalize_ref(
    expr: ScalarExpr,
    locals: &HashSet<String>,
    params: &HashSet<String>,
) -> ScalarExpr {
    match &expr {
        ScalarExpr::Param(p) => {
            if locals.contains(p) {
                ScalarExpr::column(p.clone())
            } else {
                // Formal parameters and unknown names both stay as parameters; an
                // unknown name surfaces later as an unbound-parameter execution error.
                expr
            }
        }
        ScalarExpr::Column(c) if c.qualifier.is_none() => {
            if params.contains(&c.name) && !locals.contains(&c.name) {
                ScalarExpr::param(c.name.clone())
            } else {
                expr
            }
        }
        _ => expr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::display::explain;
    use decorr_parser::parse_function;

    fn registry() -> FunctionRegistry {
        FunctionRegistry::new()
    }

    fn algebraize(udf: &UdfDefinition) -> Result<AlgebraizedUdf> {
        algebraize_udf(udf, &registry(), &decorr_algebra::EmptyProvider)
    }

    #[test]
    fn algebraizes_single_expression_udf() {
        // Example 3 of the paper.
        let udf = parse_function(
            "create function discount(float amount) returns float as \
             begin return amount * 0.15; end",
        )
        .unwrap();
        let out = algebraize(&udf).unwrap();
        let text = explain(&out.plan);
        assert!(text.contains("Project [retval]"));
        assert!(text.contains("Apply(cross)"));
        assert!(text.contains("(:amount * 0.15) as retval"));
        assert!(out.aux_aggregates.is_empty());
        // Free parameters are exactly the formals.
        assert_eq!(
            decorr_algebra::visit::free_params(&out.plan),
            vec!["amount".to_string()]
        );
    }

    #[test]
    fn algebraizes_single_query_udf() {
        // Example 4 of the paper.
        let udf = parse_function(
            "create function totalbusiness(int ckey) returns int as \
             begin return select sum(totalprice) from orders where custkey = :ckey; end",
        )
        .unwrap();
        let out = algebraize(&udf).unwrap();
        let text = explain(&out.plan);
        assert!(text.contains("Aggregate group_by=[] aggs=[sum(totalprice)"));
        assert!(text.contains("Scan orders"));
        assert!(text.contains("(custkey = :ckey)"));
        assert_eq!(
            decorr_algebra::visit::free_params(&out.plan),
            vec!["ckey".to_string()]
        );
    }

    #[test]
    fn algebraizes_example1_with_branching() {
        let udf = parse_function(
            "create function service_level(int ckey) returns char(10) as \
             begin \
               float totalbusiness; string level; \
               select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
               if (totalbusiness > 1000000) level = 'Platinum'; \
               else if (totalbusiness > 500000) level = 'Gold'; \
               else level = 'Regular'; \
               return level; \
             end",
        )
        .unwrap();
        let out = algebraize(&udf).unwrap();
        let text = explain(&out.plan);
        // The structure of Figure 5: ConditionalApplyMerge over an ApplyMerge over the
        // declarations, with the scalar aggregate as the AM's inner expression.
        assert!(text.contains("ConditionalApplyMerge if (totalbusiness > 1000000)"));
        assert!(text.contains("ApplyMerge"));
        assert!(text.contains("Aggregate group_by=[] aggs=[sum(totalprice)"));
        // Local variable references became columns; the formal stays a parameter.
        assert_eq!(
            decorr_algebra::visit::free_params(&out.plan),
            vec!["ckey".to_string()]
        );
    }

    #[test]
    fn algebraizes_cursor_loop_into_aux_aggregate() {
        // Example 5 of the paper (getcost replaced by a plain arithmetic expression so
        // the pre-loop part stays statically analysable).
        let udf = parse_function(
            "create function totalloss(int pkey, float cost) returns float as \
             begin \
               float total_loss = 0; \
               declare c cursor for \
                 select price, qty, disc from lineitem where partkey = :pkey; \
               open c; \
               fetch next from c into @price, @qty, @disc; \
               while @@fetch_status = 0 \
                 float profit = (@price - @disc) - (cost * @qty); \
                 if (profit < 0) total_loss = total_loss - profit; \
                 fetch next from c into @price, @qty, @disc; \
               close c; deallocate c; \
               return total_loss; \
             end",
        )
        .unwrap();
        let out = algebraize(&udf).unwrap();
        assert_eq!(out.aux_aggregates.len(), 1);
        let agg = &out.aux_aggregates[0];
        assert_eq!(agg.name, "aux_agg_totalloss");
        assert_eq!(agg.state.len(), 1);
        assert_eq!(agg.state[0].0, "total_loss");
        assert_eq!(
            agg.state[0].2,
            Value::Float(0.0).cast(DataType::Float).unwrap()
        );
        assert_eq!(agg.params.len(), 1);
        assert_eq!(agg.params[0].name, "profit");
        let text = explain(&out.plan);
        assert!(text.contains("aux_agg_totalloss(profit) as __loop_total_loss"));
        assert!(text.contains("Scan lineitem"));
    }

    #[test]
    fn while_loops_are_rejected() {
        let udf = parse_function(
            "create function f(int n) returns int as \
             begin \
               int total = 0; int i = 0; \
               while (i < n) begin total = total + i; i = i + 1; end \
               return total; \
             end",
        )
        .unwrap();
        let err = algebraize(&udf).unwrap_err();
        assert_eq!(err.kind(), "unsupported");
        assert!(err.to_string().contains("WHILE"));
    }

    #[test]
    fn algebraizes_table_valued_udf() {
        let udf = parse_function(
            "create function big_orders(float threshold) returns tt table(orderkey int, boosted float) as \
             begin \
               declare c cursor for select orderkey, totalprice from orders where totalprice > :threshold; \
               open c; \
               fetch next from c into @ok, @tp; \
               while @@fetch_status = 0 \
               begin \
                 insert into tt values (@ok, @tp * 1.1); \
                 fetch next from c into @ok, @tp; \
               end \
               close c; deallocate c; \
               return tt; \
             end",
        )
        .unwrap();
        let out = algebraize(&udf).unwrap();
        let text = explain(&out.plan);
        assert!(text.contains("Project [@ok as orderkey, (@tp * 1.1) as boosted]"));
        assert!(text.contains("Scan orders"));
    }

    #[test]
    fn conditional_return_is_rejected() {
        let udf = parse_function(
            "create function f(int x) returns int as \
             begin if (x > 0) return 1; else return 0; end",
        )
        .unwrap();
        assert_eq!(algebraize(&udf).unwrap_err().kind(), "unsupported");
    }
}
