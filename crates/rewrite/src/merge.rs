//! Expression tree merging (Section V).
//!
//! For every UDF invocation in a SELECT list or WHERE clause, the invocation is replaced
//! by a reference to the `retval` column of the UDF's algebraic form, and the calling
//! block's input is wrapped in an Apply operator with the *bind* extension that maps the
//! formal parameters to the actual-argument expressions (rule K6 + the bind extension of
//! Section III).

use std::collections::HashMap;

use decorr_algebra::plan::ParamBinding;
use decorr_algebra::visit::transform_plan_deep;
use decorr_algebra::{ApplyKind, ProjectItem, RelExpr, ScalarExpr, SchemaProvider};
use decorr_common::{Error, Result};
use decorr_udf::{AggregateDefinition, FunctionRegistry};

use crate::algebraize::algebraize_udf;

/// The result of merging UDF invocations into a query plan.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    pub plan: RelExpr,
    /// Number of UDF invocations that were replaced by algebraic forms.
    pub merged_calls: usize,
    /// UDF invocations that could not be algebraized (name and reason); they remain as
    /// iterative calls in the plan.
    pub skipped: Vec<(String, String)>,
    /// Auxiliary aggregates synthesised while algebraizing cursor loops.
    pub aux_aggregates: Vec<AggregateDefinition>,
}

/// Merges every algebraizable UDF invocation found in SELECT lists (projections) and
/// WHERE clauses (selections) of the plan.
pub fn merge_udf_calls(
    plan: &RelExpr,
    registry: &FunctionRegistry,
    provider: &dyn SchemaProvider,
) -> Result<MergeOutcome> {
    let mut state = MergeState {
        registry,
        provider,
        counter: 0,
        merged_calls: 0,
        skipped: vec![],
        aux_aggregates: vec![],
    };
    let plan = merge_in_plan(plan, &mut state)?;
    Ok(MergeOutcome {
        plan,
        merged_calls: state.merged_calls,
        skipped: state.skipped,
        aux_aggregates: state.aux_aggregates,
    })
}

struct MergeState<'a> {
    registry: &'a FunctionRegistry,
    provider: &'a dyn SchemaProvider,
    counter: usize,
    merged_calls: usize,
    skipped: Vec<(String, String)>,
    aux_aggregates: Vec<AggregateDefinition>,
}

fn merge_in_plan(plan: &RelExpr, state: &mut MergeState) -> Result<RelExpr> {
    // Recurse into children first.
    let children: Vec<RelExpr> = plan
        .children()
        .into_iter()
        .map(|c| merge_in_plan(c, state))
        .collect::<Result<Vec<_>>>()?;
    let node = if children.is_empty() {
        plan.clone()
    } else {
        plan.with_new_children(children)
    };
    match node {
        RelExpr::Project {
            input,
            items,
            distinct,
        } => {
            let mut new_input = *input;
            let new_items = items
                .iter()
                .map(|item| {
                    let expr = replace_udf_calls(&item.expr, &mut new_input, state)?;
                    Ok(ProjectItem {
                        expr,
                        alias: item.alias.clone(),
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(RelExpr::Project {
                input: Box::new(new_input),
                items: new_items,
                distinct,
            })
        }
        RelExpr::Select { input, predicate } => {
            let mut new_input = *input;
            let new_predicate = replace_udf_calls(&predicate, &mut new_input, state)?;
            Ok(RelExpr::Select {
                input: Box::new(new_input),
                predicate: new_predicate,
            })
        }
        other => Ok(other),
    }
}

/// Replaces UDF invocations inside `expr`, wrapping `input` with one Apply (bind) per
/// replaced call. Nested calls are replaced innermost-first, so an outer call's argument
/// list can reference the inner call's output column.
fn replace_udf_calls(
    expr: &ScalarExpr,
    input: &mut RelExpr,
    state: &mut MergeState,
) -> Result<ScalarExpr> {
    let rewritten = match expr {
        ScalarExpr::UdfCall { name, args } => {
            // Arguments first (innermost calls first).
            let new_args: Vec<ScalarExpr> = args
                .iter()
                .map(|a| replace_udf_calls(a, input, state))
                .collect::<Result<Vec<_>>>()?;
            if !state.registry.has_udf(name) {
                return Ok(ScalarExpr::UdfCall {
                    name: name.clone(),
                    args: new_args,
                });
            }
            let udf = state.registry.udf(name)?;
            if udf.is_table_valued() {
                state.skipped.push((
                    name.clone(),
                    "table-valued function used in a scalar context".into(),
                ));
                return Ok(ScalarExpr::UdfCall {
                    name: name.clone(),
                    args: new_args,
                });
            }
            if udf.params.len() != new_args.len() {
                return Err(Error::Binding(format!(
                    "function '{name}' expects {} arguments, got {}",
                    udf.params.len(),
                    new_args.len()
                )));
            }
            match algebraize_udf(udf, state.registry, state.provider) {
                Ok(algebraized) => {
                    state.merged_calls += 1;
                    state.aux_aggregates.extend(algebraized.aux_aggregates);
                    let alias = format!("__udf{}", state.counter);
                    let body = uniquify_body_qualifiers(&algebraized.plan, state.counter);
                    state.counter += 1;
                    // Π_{retval as __udfN}(E_udf): keeps each invocation's output name
                    // unique when a query invokes several UDFs.
                    let right = RelExpr::Project {
                        input: Box::new(body),
                        items: vec![ProjectItem::aliased(
                            ScalarExpr::column("retval"),
                            alias.clone(),
                        )],
                        distinct: false,
                    };
                    let bindings = udf
                        .params
                        .iter()
                        .zip(new_args.iter())
                        .map(|(p, a)| ParamBinding::new(p.name.clone(), a.clone()))
                        .collect();
                    let previous = std::mem::replace(input, RelExpr::Single);
                    *input = RelExpr::Apply {
                        left: Box::new(previous),
                        right: Box::new(right),
                        kind: ApplyKind::Cross,
                        bindings,
                    };
                    ScalarExpr::column(alias)
                }
                Err(e) => {
                    state.skipped.push((name.clone(), e.to_string()));
                    ScalarExpr::UdfCall {
                        name: name.clone(),
                        args: new_args,
                    }
                }
            }
        }
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(replace_udf_calls(left, input, state)?),
            right: Box::new(replace_udf_calls(right, input, state)?),
        },
        ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(replace_udf_calls(expr, input, state)?),
        },
        ScalarExpr::Case {
            branches,
            else_expr,
        } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(p, e)| {
                    Ok((
                        replace_udf_calls(p, input, state)?,
                        replace_udf_calls(e, input, state)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(replace_udf_calls(e, input, state)?)),
                None => None,
            },
        },
        ScalarExpr::Coalesce(args) => ScalarExpr::Coalesce(
            args.iter()
                .map(|a| replace_udf_calls(a, input, state))
                .collect::<Result<Vec<_>>>()?,
        ),
        ScalarExpr::Cast { expr, data_type } => ScalarExpr::Cast {
            expr: Box::new(replace_udf_calls(expr, input, state)?),
            data_type: *data_type,
        },
        other => other.clone(),
    };
    Ok(rewritten)
}

/// Re-qualifies every relation introduced inside an inlined UDF body (base-table scans
/// and ρ renames) with a fresh, invocation-unique alias, rewriting the body's own column
/// references to match. Without this, a UDF body that reads the same table as the
/// calling query emits colliding qualifiers: after Apply-bind removal substitutes the
/// outer argument, the correlation predicate `t.k = :k` degenerates into the tautology
/// `t.k = t.k` and the correlation is silently lost.
fn uniquify_body_qualifiers(body: &RelExpr, invocation: usize) -> RelExpr {
    let mut renames: HashMap<String, String> = HashMap::new();
    transform_plan_deep(
        body,
        &mut |node| {
            let qualifier = match &node {
                RelExpr::Scan { table, alias } => {
                    Some(alias.clone().unwrap_or_else(|| table.clone()))
                }
                RelExpr::Rename { alias, .. } => Some(alias.clone()),
                _ => None,
            };
            if let Some(q) = qualifier {
                renames
                    .entry(q.clone())
                    .or_insert_with(|| format!("__udf{invocation}_{q}"));
            }
            node
        },
        &mut |e| e,
    );
    if renames.is_empty() {
        return body.clone();
    }
    transform_plan_deep(
        body,
        &mut |node| match node {
            RelExpr::Scan { table, alias } => {
                let q = alias.as_deref().unwrap_or(&table);
                let fresh = renames.get(q).cloned().or(alias);
                RelExpr::Scan {
                    table,
                    alias: fresh,
                }
            }
            RelExpr::Rename { input, alias } => {
                let fresh = renames.get(&alias).cloned().unwrap_or(alias);
                RelExpr::Rename {
                    input,
                    alias: fresh,
                }
            }
            other => other,
        },
        &mut |e| match e {
            ScalarExpr::Column(c) => match c.qualifier.as_ref().and_then(|q| renames.get(q)) {
                Some(fresh) => ScalarExpr::qualified_column(fresh.clone(), c.name.clone()),
                None => ScalarExpr::Column(c),
            },
            other => other,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::display::explain;
    use decorr_parser::{parse_and_plan, parse_function};

    fn registry_with_discount() -> FunctionRegistry {
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function discount(float amount) returns float as \
                 begin return amount * 0.15; end",
            )
            .unwrap(),
        );
        registry
    }

    #[test]
    fn merges_select_list_invocation() {
        let registry = registry_with_discount();
        let plan =
            parse_and_plan("select orderkey, discount(totalprice) as d from orders").unwrap();
        let outcome = merge_udf_calls(&plan, &registry, &decorr_algebra::EmptyProvider).unwrap();
        assert_eq!(outcome.merged_calls, 1);
        assert!(outcome.skipped.is_empty());
        let text = explain(&outcome.plan);
        assert!(text.contains("Apply(cross) bind:amount=totalprice"));
        assert!(text.contains("Project [retval as __udf0]"));
        assert!(!outcome.plan.contains_udf_call());
    }

    #[test]
    fn merges_where_clause_invocation() {
        let registry = registry_with_discount();
        let plan =
            parse_and_plan("select orderkey from orders where discount(totalprice) > 100").unwrap();
        let outcome = merge_udf_calls(&plan, &registry, &decorr_algebra::EmptyProvider).unwrap();
        assert_eq!(outcome.merged_calls, 1);
        let text = explain(&outcome.plan);
        assert!(text.contains("Select [(__udf0 > 100)]"));
        assert!(text.contains("Apply(cross) bind:amount=totalprice"));
    }

    #[test]
    fn unknown_functions_are_left_alone() {
        let registry = FunctionRegistry::new();
        let plan = parse_and_plan("select mystery(totalprice) from orders").unwrap();
        let outcome = merge_udf_calls(&plan, &registry, &decorr_algebra::EmptyProvider).unwrap();
        assert_eq!(outcome.merged_calls, 0);
        assert!(outcome.plan.contains_udf_call());
    }

    #[test]
    fn non_algebraizable_udf_is_skipped_with_reason() {
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function spin(int n) returns int as \
                 begin int i = 0; while (i < n) begin i = i + 1; end return i; end",
            )
            .unwrap(),
        );
        let plan = parse_and_plan("select spin(custkey) from customer").unwrap();
        let outcome = merge_udf_calls(&plan, &registry, &decorr_algebra::EmptyProvider).unwrap();
        assert_eq!(outcome.merged_calls, 0);
        assert_eq!(outcome.skipped.len(), 1);
        assert!(outcome.skipped[0].1.contains("WHILE"));
        assert!(outcome.plan.contains_udf_call());
    }

    #[test]
    fn multiple_invocations_get_distinct_aliases() {
        let registry = registry_with_discount();
        let plan = parse_and_plan(
            "select discount(totalprice) as d1, discount(totalprice * 2) as d2 from orders",
        )
        .unwrap();
        let outcome = merge_udf_calls(&plan, &registry, &decorr_algebra::EmptyProvider).unwrap();
        assert_eq!(outcome.merged_calls, 2);
        let text = explain(&outcome.plan);
        assert!(text.contains("retval as __udf0"));
        assert!(text.contains("retval as __udf1"));
    }

    #[test]
    fn body_scans_of_the_calling_table_get_fresh_aliases() {
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function grp_total(int k) returns float as \
                 begin return select sum(totalprice) from orders where custkey = :k; end",
            )
            .unwrap(),
        );
        let plan = parse_and_plan("select custkey, grp_total(custkey) from orders").unwrap();
        let outcome = merge_udf_calls(&plan, &registry, &decorr_algebra::EmptyProvider).unwrap();
        assert_eq!(outcome.merged_calls, 1);
        let text = explain(&outcome.plan);
        // The inlined body must scan `orders` under a fresh alias so its columns cannot
        // collide with the outer query's `orders` columns once :k is substituted.
        assert!(
            text.contains("Scan orders as __udf0_orders"),
            "body scan not re-aliased:\n{text}"
        );
    }
}
