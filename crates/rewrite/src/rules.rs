//! Transformation rules for Apply removal (Section VI).
//!
//! Implements the known rules K1–K6 of Galindo-Legaria & Joshi (Table I), the paper's
//! new rules R1–R9 (Table II), the standard decorrelation of correlated scalar
//! aggregates (outer join + group-by), an Apply-through-join pushdown, and the cleanup
//! rules (predicate pushdown, adjacent-projection merging) that bring the rewritten
//! query into the flat form of the paper's Example 2.
//!
//! Every rule is a pure function `RelExpr → Option<RelExpr>`; the [`FixpointEngine`]
//! applies a [`RuleSet`] bottom-up until no rule fires, with instrumentation and a
//! firing budget.

use std::collections::{BTreeMap, HashMap};

use decorr_algebra::schema::infer_schema;
use decorr_algebra::visit::{free_params, is_uncorrelated, substitute_params_in_plan};
use decorr_algebra::{
    AggFunc, ApplyKind, BinaryOp, ColumnRef, JoinKind, ProjectItem, RelExpr, ScalarExpr,
    SchemaProvider,
};
use decorr_common::{Error, Result, Schema, Value};

/// A named transformation rule.
pub struct Rule {
    pub name: &'static str,
    pub apply: fn(&RelExpr, &dyn SchemaProvider) -> Option<RelExpr>,
}

/// An ordered collection of rules. Earlier rules take priority at each node.
pub struct RuleSet {
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// The default pipeline used by the rewriter: R-rules to reduce the extended Apply
    /// operators, K-rules and decorrelation rules to remove Apply, and cleanup rules to
    /// flatten the result.
    pub fn default_pipeline() -> RuleSet {
        RuleSet {
            rules: vec![
                Rule {
                    name: "R9-apply-bind-removal",
                    apply: rule_r9_bind_removal,
                },
                Rule {
                    name: "R1-apply-single",
                    apply: rule_r1_apply_single,
                },
                Rule {
                    name: "R2-merge-projection-on-single",
                    apply: rule_r2_merge_projection,
                },
                Rule {
                    name: "R8-conditional-merge-to-case",
                    apply: rule_r8_conditional_to_case,
                },
                Rule {
                    name: "R4-apply-merge-removal",
                    apply: rule_r4_apply_merge_removal,
                },
                Rule {
                    name: "K3-pull-select-above-apply",
                    apply: rule_k3_pull_select,
                },
                Rule {
                    name: "K4-pull-project-above-apply",
                    apply: rule_k4_pull_project,
                },
                Rule {
                    name: "R5-pull-left-project-above-apply",
                    apply: rule_r5_pull_left_project,
                },
                Rule {
                    name: "push-apply-below-join",
                    apply: rule_push_apply_below_join,
                },
                Rule {
                    name: "decorrelate-scalar-aggregate",
                    apply: rule_scalar_aggregate,
                },
                Rule {
                    name: "K2-apply-select-to-join",
                    apply: rule_k2_apply_select_to_join,
                },
                Rule {
                    name: "K1-apply-to-join",
                    apply: rule_k1_apply_to_join,
                },
                Rule {
                    name: "merge-selects",
                    apply: rule_merge_selects,
                },
                Rule {
                    name: "push-select-into-join",
                    apply: rule_push_select_into_join,
                },
                Rule {
                    name: "push-select-below-project",
                    apply: rule_push_select_below_project,
                },
                Rule {
                    name: "merge-projections",
                    apply: rule_r3_merge_projections,
                },
                Rule {
                    name: "remove-trivial-select",
                    apply: rule_remove_trivial_select,
                },
            ],
        }
    }

    /// Only the plan-normalisation cleanup rules (predicate pushdown into joins and
    /// below projections, selection/projection merging). The engine applies these to
    /// every query plan — including the queries inside UDF bodies — before execution, so
    /// that the *iterative* baseline also runs reasonable plans (comma-syntax joins
    /// become hash-joinable inner joins), exactly like the commercial systems the paper
    /// measures.
    pub fn cleanup_only() -> RuleSet {
        RuleSet {
            rules: vec![
                Rule {
                    name: "merge-selects",
                    apply: rule_merge_selects,
                },
                Rule {
                    name: "push-select-into-join",
                    apply: rule_push_select_into_join,
                },
                Rule {
                    name: "push-select-below-project",
                    apply: rule_push_select_below_project,
                },
                Rule {
                    name: "remove-trivial-select",
                    apply: rule_remove_trivial_select,
                },
            ],
        }
    }

    /// Only the rules from Table I / Table II, without the cleanup and aggregate
    /// decorrelation helpers — used by the rule-equivalence property tests.
    pub fn paper_rules_only() -> RuleSet {
        RuleSet {
            rules: vec![
                Rule {
                    name: "R9-apply-bind-removal",
                    apply: rule_r9_bind_removal,
                },
                Rule {
                    name: "R1-apply-single",
                    apply: rule_r1_apply_single,
                },
                Rule {
                    name: "R2-merge-projection-on-single",
                    apply: rule_r2_merge_projection,
                },
                Rule {
                    name: "R8-conditional-merge-to-case",
                    apply: rule_r8_conditional_to_case,
                },
                Rule {
                    name: "R4-apply-merge-removal",
                    apply: rule_r4_apply_merge_removal,
                },
                Rule {
                    name: "K3-pull-select-above-apply",
                    apply: rule_k3_pull_select,
                },
                Rule {
                    name: "K4-pull-project-above-apply",
                    apply: rule_k4_pull_project,
                },
                Rule {
                    name: "K2-apply-select-to-join",
                    apply: rule_k2_apply_select_to_join,
                },
                Rule {
                    name: "K1-apply-to-join",
                    apply: rule_k1_apply_to_join,
                },
            ],
        }
    }
}

/// The result of driving a [`RuleSet`] to fixpoint with a [`FixpointEngine`]: the
/// rewritten plan plus the instrumentation the optimizer's PassManager reports.
#[derive(Debug, Clone)]
pub struct FixpointOutcome {
    /// The rewritten plan.
    pub plan: RelExpr,
    /// Names of the rules that fired, in application order.
    pub fired: Vec<String>,
    /// Fire count per rule name (sorted, for stable reporting).
    pub fire_counts: BTreeMap<String, u64>,
    /// Number of full bottom-up passes performed.
    pub iterations: usize,
    /// True if the last pass changed nothing (a genuine fixpoint, as opposed to the
    /// iteration limit stopping a still-changing plan).
    pub reached_fixpoint: bool,
}

impl FixpointOutcome {
    /// How often the named rule fired.
    pub fn fire_count(&self, rule: &str) -> u64 {
        self.fire_counts.get(rule).copied().unwrap_or(0)
    }

    /// Total number of rule firings.
    pub fn total_fires(&self) -> u64 {
        self.fire_counts.values().sum()
    }
}

/// Applies a [`RuleSet`] bottom-up until a fixpoint, with instrumentation and a budget
/// guard.
///
/// Two limits bound the work:
///
/// * `max_iterations` — full bottom-up passes over the tree; hitting it stops rewriting
///   and reports `reached_fixpoint == false` (matching the behaviour of the paper's
///   tool, which simply gives up and keeps the iterative plan);
/// * `max_rule_firings` — the *budget guard*: total rule firings across all passes;
///   exceeding it is an **error**, because it means the rule set is cyclic (two rules
///   undoing each other fire forever without the per-pass `changed` flag ever settling).
#[derive(Debug, Clone)]
pub struct FixpointEngine {
    pub max_iterations: usize,
    pub max_rule_firings: u64,
}

impl Default for FixpointEngine {
    fn default() -> Self {
        FixpointEngine {
            max_iterations: 50,
            max_rule_firings: 100_000,
        }
    }
}

impl FixpointEngine {
    pub fn new() -> FixpointEngine {
        FixpointEngine::default()
    }

    /// An engine with the given iteration limit and the default firing budget.
    pub fn with_max_iterations(max_iterations: usize) -> FixpointEngine {
        FixpointEngine {
            max_iterations,
            ..FixpointEngine::default()
        }
    }

    /// Replaces the total-rule-firing budget.
    pub fn with_rule_budget(mut self, max_rule_firings: u64) -> FixpointEngine {
        self.max_rule_firings = max_rule_firings;
        self
    }

    /// Drives `rules` to fixpoint over `plan`. Errors when the firing budget is
    /// exhausted (a cyclic rule set); otherwise terminates after at most
    /// `max_iterations` passes.
    pub fn run(
        &self,
        plan: &RelExpr,
        rules: &RuleSet,
        provider: &dyn SchemaProvider,
    ) -> Result<FixpointOutcome> {
        let mut current = plan.clone();
        let mut fired: Vec<String> = vec![];
        let mut fire_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut iterations = 0;
        let mut reached_fixpoint = false;
        let mut budget_exhausted = false;
        while iterations < self.max_iterations {
            iterations += 1;
            let mut changed = false;
            let next = decorr_algebra::visit::transform_plan_up(&current, &mut |node| {
                if budget_exhausted {
                    return node;
                }
                for rule in &rules.rules {
                    if let Some(rewritten) = (rule.apply)(&node, provider) {
                        if rewritten != node {
                            fired.push(rule.name.to_string());
                            *fire_counts.entry(rule.name.to_string()).or_insert(0) += 1;
                            if fired.len() as u64 > self.max_rule_firings {
                                budget_exhausted = true;
                                return node;
                            }
                            changed = true;
                            return rewritten;
                        }
                    }
                }
                node
            });
            if budget_exhausted {
                return Err(Error::Rewrite(format!(
                    "rewrite budget exhausted: more than {} rule firings without reaching \
                     a fixpoint (iteration {iterations}); the rule set is cyclic. \
                     Last rules fired: {:?}",
                    self.max_rule_firings,
                    &fired[fired.len().saturating_sub(6)..],
                )));
            }
            current = next;
            if !changed {
                reached_fixpoint = true;
                break;
            }
        }
        Ok(FixpointOutcome {
            plan: current,
            fired,
            fire_counts,
            iterations,
            reached_fixpoint,
        })
    }
}

fn schema_of(plan: &RelExpr, provider: &dyn SchemaProvider) -> Schema {
    infer_schema(plan, provider).unwrap_or_else(|_| Schema::empty())
}

fn columns_of(schema: &Schema) -> Vec<ProjectItem> {
    schema
        .columns
        .iter()
        .map(|c| {
            let expr = match &c.qualifier {
                Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
                None => ScalarExpr::column(c.name.clone()),
            };
            ProjectItem::new(expr)
        })
        .collect()
}

// --------------------------------------------------------------------------- R rules

/// R9: Apply-bind removal — replace formal parameters in the inner expression by the
/// actual arguments and drop the binding list.
///
/// Actual-argument expressions are first *qualified* against the outer input's schema
/// (`custkey` → `customer.custkey`), so that once substituted into the inner expression
/// they remain references to the outer relation rather than being captured by
/// identically-named inner columns.
pub fn rule_r9_bind_removal(plan: &RelExpr, provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind,
        bindings,
    } = plan
    else {
        return None;
    };
    if bindings.is_empty() {
        return None;
    }
    let left_schema = schema_of(left, provider);
    let qualify = |expr: &ScalarExpr| -> ScalarExpr {
        decorr_algebra::visit::transform_expr_up(expr, &mut |e| match &e {
            ScalarExpr::Column(c) if c.qualifier.is_none() => {
                match left_schema.find(None, &c.name) {
                    Some(idx) => match &left_schema.column(idx).qualifier {
                        Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
                        None => e,
                    },
                    None => e,
                }
            }
            _ => e,
        })
    };
    let map: HashMap<String, ScalarExpr> = bindings
        .iter()
        .map(|b| (b.param.clone(), qualify(&b.value)))
        .collect();
    let new_right = substitute_params_in_plan(right, &map);
    Some(RelExpr::Apply {
        left: left.clone(),
        right: Box::new(new_right),
        kind: *kind,
        bindings: vec![],
    })
}

/// R1: `r A× S = S A× r = r`.
pub fn rule_r1_apply_single(plan: &RelExpr, _provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind: ApplyKind::Cross,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    if matches!(right.as_ref(), RelExpr::Single) {
        return Some(left.as_ref().clone());
    }
    if matches!(left.as_ref(), RelExpr::Single) {
        return Some(right.as_ref().clone());
    }
    None
}

/// R2: `r AM (Π_{e1 as a1,…}(S)) = Πd_{…}(r)` — an Apply-Merge whose inner expression is
/// a projection on Single is an in-place generalized projection on `r`.
pub fn rule_r2_merge_projection(plan: &RelExpr, provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::ApplyMerge {
        left,
        right,
        assignments,
    } = plan
    else {
        return None;
    };
    let RelExpr::Project {
        input,
        items,
        distinct: false,
    } = right.as_ref()
    else {
        return None;
    };
    if !matches!(input.as_ref(), RelExpr::Single) {
        return None;
    }
    let left_schema = schema_of(left, provider);
    if left_schema.is_empty() && !matches!(left.as_ref(), RelExpr::Single) {
        return None;
    }
    // Map assigned attribute name → assigned expression.
    let mut assigned: HashMap<String, ScalarExpr> = HashMap::new();
    if assignments.is_empty() {
        for (i, item) in items.iter().enumerate() {
            let name = item.output_name(i);
            if left_schema.find(None, &name).is_some() || matches!(left.as_ref(), RelExpr::Single) {
                assigned.insert(name, item.expr.clone());
            }
        }
    } else {
        for a in assignments {
            let idx = items
                .iter()
                .position(|it| it.alias.as_deref() == Some(a.source.as_str()))?;
            assigned.insert(a.target.clone(), items[idx].expr.clone());
        }
    }
    // Rebuild the projection: each left column, with assigned ones replaced in place;
    // attributes assigned but not present in the left schema (e.g. when the left input
    // is Single inside an if/else branch) are appended.
    let mut new_items: Vec<ProjectItem> = left_schema
        .columns
        .iter()
        .map(|c| match assigned.remove(&c.name) {
            Some(expr) => ProjectItem::aliased(expr, c.name.clone()),
            None => {
                let expr = match &c.qualifier {
                    Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
                    None => ScalarExpr::column(c.name.clone()),
                };
                ProjectItem::aliased(expr, c.name.clone())
            }
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        let name = item.output_name(i);
        if let Some(expr) = assigned.remove(&name) {
            new_items.push(ProjectItem::aliased(expr, name));
        }
    }
    Some(RelExpr::Project {
        input: left.clone(),
        items: new_items,
        distinct: false,
    })
}

/// R8 (generalised): `r AMC(p, et, ef) = Π_{r.* with merged attributes replaced by
/// conditional expressions}(r)` whenever both branches are projections on Single. A
/// variable assigned in only one branch keeps its previous value on the other branch.
pub fn rule_r8_conditional_to_case(
    plan: &RelExpr,
    provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::ConditionalApplyMerge {
        left,
        predicate,
        then_branch,
        else_branch,
        assignments,
    } = plan
    else {
        return None;
    };
    if !assignments.is_empty() {
        return None;
    }
    let then_items = scalar_branch_items(then_branch)?;
    let else_items = scalar_branch_items(else_branch)?;
    let left_schema = schema_of(left, provider);
    if left_schema.is_empty() && !matches!(left.as_ref(), RelExpr::Single) {
        return None;
    }
    let mut new_items: Vec<ProjectItem> = left_schema
        .columns
        .iter()
        .map(|c| {
            let current = match &c.qualifier {
                Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
                None => ScalarExpr::column(c.name.clone()),
            };
            let then_expr = then_items.get(&c.name).cloned();
            let else_expr = else_items.get(&c.name).cloned();
            let expr = match (then_expr, else_expr) {
                (None, None) => current,
                (t, e) => ScalarExpr::Case {
                    branches: vec![(predicate.clone(), t.unwrap_or_else(|| current.clone()))],
                    else_expr: Some(Box::new(e.unwrap_or(current))),
                },
            };
            ProjectItem::aliased(expr, c.name.clone())
        })
        .collect();
    // Attributes assigned only inside the branches (not present in the left schema):
    // a branch that does not assign them leaves them at their previous value, which on a
    // Single left input is NULL (`⊥`).
    let mut extra_names: Vec<String> = vec![];
    for name in then_items.keys().chain(else_items.keys()) {
        if left_schema.find(None, name).is_none() && !extra_names.contains(name) {
            extra_names.push(name.clone());
        }
    }
    for name in extra_names {
        let then_expr = then_items
            .get(&name)
            .cloned()
            .unwrap_or_else(ScalarExpr::null);
        let else_expr = else_items
            .get(&name)
            .cloned()
            .unwrap_or_else(ScalarExpr::null);
        new_items.push(ProjectItem::aliased(
            ScalarExpr::Case {
                branches: vec![(predicate.clone(), then_expr)],
                else_expr: Some(Box::new(else_expr)),
            },
            name,
        ));
    }
    Some(RelExpr::Project {
        input: left.clone(),
        items: new_items,
        distinct: false,
    })
}

/// Extracts `name → expression` from a branch that is a (chain of) projection(s) on
/// `Single` — i.e. a scalar-valued single-tuple expression (the side condition of R8).
fn scalar_branch_items(branch: &RelExpr) -> Option<HashMap<String, ScalarExpr>> {
    match branch {
        RelExpr::Single => Some(HashMap::new()),
        RelExpr::Project {
            input,
            items,
            distinct: false,
        } => {
            let inner = scalar_branch_items(input)?;
            let mut out = inner.clone();
            for (i, item) in items.iter().enumerate() {
                // Substitute references to inner names so the expression is closed over
                // the outer context only.
                let substituted =
                    decorr_algebra::visit::transform_expr_up(&item.expr, &mut |e| match &e {
                        ScalarExpr::Column(c) if c.qualifier.is_none() => {
                            inner.get(&c.name).cloned().unwrap_or(e)
                        }
                        _ => e,
                    });
                out.insert(item.output_name(i), substituted);
            }
            Some(out)
        }
        _ => None,
    }
}

/// R4: general Apply-Merge removal — `r AM(L) e = Π_X(r A× e)`. The inner expression's
/// output columns are renamed to fresh names first so the outer projection can reference
/// both sides unambiguously.
pub fn rule_r4_apply_merge_removal(
    plan: &RelExpr,
    provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::ApplyMerge {
        left,
        right,
        assignments,
    } = plan
    else {
        return None;
    };
    // R2 handles the projection-on-Single case; this rule covers the rest.
    if let RelExpr::Project {
        input,
        distinct: false,
        ..
    } = right.as_ref()
    {
        if matches!(input.as_ref(), RelExpr::Single) {
            return None;
        }
    }
    let left_schema = schema_of(left, provider);
    let right_schema = schema_of(right, provider);
    if left_schema.is_empty() || right_schema.is_empty() {
        return None;
    }
    // Determine the assignment pairs (target-in-left, source-in-right).
    let pairs: Vec<(String, String)> = if assignments.is_empty() {
        right_schema
            .columns
            .iter()
            .filter(|rc| left_schema.find(None, &rc.name).is_some())
            .map(|rc| (rc.name.clone(), rc.name.clone()))
            .collect()
    } else {
        assignments
            .iter()
            .map(|a| (a.target.clone(), a.source.clone()))
            .collect()
    };
    if pairs.is_empty() {
        return None;
    }
    // Rename the inner outputs to fresh names.
    let fresh_items: Vec<ProjectItem> = right_schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let expr = match &c.qualifier {
                Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
                None => ScalarExpr::column(c.name.clone()),
            };
            ProjectItem::aliased(expr, format!("__rhs{i}"))
        })
        .collect();
    let renamed_right = RelExpr::Project {
        input: right.clone(),
        items: fresh_items,
        distinct: false,
    };
    let source_to_fresh: HashMap<String, String> = right_schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.clone(), format!("__rhs{i}")))
        .collect();
    // Outer projection: left columns, with assigned ones replaced by the fresh inner
    // column.
    let items: Vec<ProjectItem> = left_schema
        .columns
        .iter()
        .map(|c| {
            if let Some((_, source)) = pairs.iter().find(|(t, _)| t == &c.name) {
                let fresh = source_to_fresh
                    .get(source)
                    .cloned()
                    .unwrap_or_else(|| source.clone());
                ProjectItem::aliased(ScalarExpr::column(fresh), c.name.clone())
            } else {
                let expr = match &c.qualifier {
                    Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
                    None => ScalarExpr::column(c.name.clone()),
                };
                ProjectItem::aliased(expr, c.name.clone())
            }
        })
        .collect();
    Some(RelExpr::Project {
        input: Box::new(RelExpr::Apply {
            left: left.clone(),
            right: Box::new(renamed_right),
            kind: ApplyKind::Cross,
            bindings: vec![],
        }),
        items,
        distinct: false,
    })
}

/// R6: `r AMC(p, et, ef) = r AM (σ_p(et) ∪ σ_¬p(ef))` — provided both branches are
/// single-tuple expressions (always true by construction of the algebraizer).
pub fn rule_r6_conditional_to_union(
    plan: &RelExpr,
    _provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::ConditionalApplyMerge {
        left,
        predicate,
        then_branch,
        else_branch,
        assignments,
    } = plan
    else {
        return None;
    };
    let then_sel = RelExpr::Select {
        input: then_branch.clone(),
        predicate: predicate.clone(),
    };
    let else_sel = RelExpr::Select {
        input: else_branch.clone(),
        predicate: ScalarExpr::not(predicate.clone()),
    };
    Some(RelExpr::ApplyMerge {
        left: left.clone(),
        right: Box::new(RelExpr::Union {
            left: Box::new(then_sel),
            right: Box::new(else_sel),
            all: true,
        }),
        assignments: assignments.clone(),
    })
}

/// R7: `Π_{e1 as a}(σ_p1(r)) ∪ Π_{e2 as a}(σ_p2(r)) = Π_{(p1?e1:p2?e2) as a}(r)` when
/// `p1 ∧ p2 = false`. The mutual-exclusivity check is syntactic: `p2` must be `NOT p1`
/// (the shape produced by R6).
pub fn rule_r7_union_to_case(plan: &RelExpr, _provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Union {
        left,
        right,
        all: true,
    } = plan
    else {
        return None;
    };
    let (p1, items1, r1) = project_over_select(left)?;
    let (p2, items2, r2) = project_over_select(right)?;
    if r1 != r2 {
        return None;
    }
    if p2 != ScalarExpr::not(p1.clone()) && p1 != ScalarExpr::not(p2.clone()) {
        return None;
    }
    if items1.len() != items2.len() {
        return None;
    }
    let mut items = vec![];
    for (i, (a, b)) in items1.iter().zip(items2.iter()).enumerate() {
        let name_a = a.output_name(i);
        if name_a != b.output_name(i) {
            return None;
        }
        items.push(ProjectItem::aliased(
            ScalarExpr::Case {
                branches: vec![(p1.clone(), a.expr.clone())],
                else_expr: Some(Box::new(b.expr.clone())),
            },
            name_a,
        ));
    }
    Some(RelExpr::Project {
        input: Box::new(r1),
        items,
        distinct: false,
    })
}

fn project_over_select(plan: &RelExpr) -> Option<(ScalarExpr, Vec<ProjectItem>, RelExpr)> {
    match plan {
        RelExpr::Project {
            input,
            items,
            distinct: false,
        } => match input.as_ref() {
            RelExpr::Select {
                input: base,
                predicate,
            } => Some((predicate.clone(), items.clone(), base.as_ref().clone())),
            _ => None,
        },
        RelExpr::Select { input, predicate } => match input.as_ref() {
            RelExpr::Project {
                input: base,
                items,
                distinct: false,
            } => Some((predicate.clone(), items.clone(), base.as_ref().clone())),
            _ => None,
        },
        _ => None,
    }
}

/// R5: `(Πd_A(r)) A⊗ e = Πd_{A, e.*}(r A⊗ e)` provided `e` does not use the computed
/// attributes of the projection.
pub fn rule_r5_pull_left_project(plan: &RelExpr, provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    let RelExpr::Project {
        input,
        items,
        distinct: false,
    } = left.as_ref()
    else {
        return None;
    };
    // Computed attributes: projection items that are not plain column references.
    let computed: Vec<String> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| !matches!(it.expr, ScalarExpr::Column(_)))
        .map(|(i, it)| it.output_name(i))
        .collect();
    if !computed.is_empty() {
        // Does the inner expression reference any computed attribute?
        let inner_free = decorr_algebra::visit::free_column_refs(right, provider);
        if inner_free.iter().any(|c| computed.contains(&c.name)) {
            return None;
        }
    }
    // The projection must not drop columns that `e` needs: only safe when the inner
    // expression's free references do not name dropped columns of the projection input.
    let input_schema = schema_of(input, provider);
    let kept: Vec<String> = items
        .iter()
        .enumerate()
        .map(|(i, it)| it.output_name(i))
        .collect();
    let inner_free = decorr_algebra::visit::free_column_refs(right, provider);
    for c in &inner_free {
        let in_input = input_schema.find(c.qualifier.as_deref(), &c.name).is_some();
        let in_kept = kept.iter().any(|k| k == &c.name);
        if in_input && !in_kept {
            return None;
        }
    }
    let right_schema = schema_of(right, provider);
    let mut new_items = items.clone();
    if !kind.left_only() {
        new_items.extend(columns_of(&right_schema));
    }
    Some(RelExpr::Project {
        input: Box::new(RelExpr::Apply {
            left: input.clone(),
            right: right.clone(),
            kind: *kind,
            bindings: vec![],
        }),
        items: new_items,
        distinct: false,
    })
}

// --------------------------------------------------------------------------- K rules

/// K1: `r A⊗ e = r ⊗ e` when `e` uses no parameters from `r`.
pub fn rule_k1_apply_to_join(plan: &RelExpr, provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    let left_schema = schema_of(left, provider);
    if !is_uncorrelated(right, &left_schema, &[], provider) {
        return None;
    }
    Some(RelExpr::Join {
        left: left.clone(),
        right: right.clone(),
        kind: kind.to_join_kind(),
        condition: None,
    })
}

/// K2: `r A⊗ (σ_p(e)) = r ⊗_p e` when `e` uses no parameters from `r` (the predicate may
/// still be correlated — it becomes the join condition).
pub fn rule_k2_apply_select_to_join(
    plan: &RelExpr,
    provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    let RelExpr::Select { input, predicate } = right.as_ref() else {
        return None;
    };
    let left_schema = schema_of(left, provider);
    if !is_uncorrelated(input, &left_schema, &[], provider) {
        return None;
    }
    let join_kind = match kind {
        ApplyKind::Cross => JoinKind::Inner,
        other => other.to_join_kind(),
    };
    Some(RelExpr::Join {
        left: left.clone(),
        right: input.clone(),
        kind: join_kind,
        condition: Some(predicate.clone()),
    })
}

/// K3: `r A× (σ_p(e)) = σ_p(r A× e)` — pull a selection above a cross Apply.
pub fn rule_k3_pull_select(plan: &RelExpr, _provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind: ApplyKind::Cross,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    let RelExpr::Select { input, predicate } = right.as_ref() else {
        return None;
    };
    Some(RelExpr::Select {
        input: Box::new(RelExpr::Apply {
            left: left.clone(),
            right: input.clone(),
            kind: ApplyKind::Cross,
            bindings: vec![],
        }),
        predicate: predicate.clone(),
    })
}

/// K4: `r A× (Π_v(e)) = Π_{v ∪ schema(r)}(r A× e)` — pull a projection above a cross
/// Apply, keeping the outer attributes.
pub fn rule_k4_pull_project(plan: &RelExpr, provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind: ApplyKind::Cross,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    let RelExpr::Project {
        input,
        items,
        distinct: false,
    } = right.as_ref()
    else {
        return None;
    };
    // R1 handles `r A× S`; if the projection is on Single let K4 still fire (it will be
    // followed by R1 on the new inner Apply).
    let left_schema = schema_of(left, provider);
    if left_schema.is_empty() && !matches!(left.as_ref(), RelExpr::Single) {
        return None;
    }
    let mut new_items = columns_of(&left_schema);
    new_items.extend(items.clone());
    Some(RelExpr::Project {
        input: Box::new(RelExpr::Apply {
            left: left.clone(),
            right: input.clone(),
            kind: ApplyKind::Cross,
            bindings: vec![],
        }),
        items: new_items,
        distinct: false,
    })
}

/// K5: `r A× (A G_F(e)) = (A ∪ schema(r)) G_F(r A× e)` — pull a *grouped* aggregate above
/// a cross Apply, adding the outer attributes to the grouping columns.
///
/// This rule assumes the outer relation `r` has no duplicate rows (e.g. it exposes a
/// key), which is why it is not part of [`RuleSet::default_pipeline`]; the scalar
/// aggregate case is handled by [`rule_scalar_aggregate`] instead.
pub fn rule_k5_pull_groupby(plan: &RelExpr, provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind: ApplyKind::Cross,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    let RelExpr::Aggregate {
        input,
        group_by,
        aggregates,
    } = right.as_ref()
    else {
        return None;
    };
    if group_by.is_empty() {
        return None;
    }
    let left_schema = schema_of(left, provider);
    let mut new_group_by: Vec<ScalarExpr> = left_schema
        .columns
        .iter()
        .map(|c| match &c.qualifier {
            Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
            None => ScalarExpr::column(c.name.clone()),
        })
        .collect();
    new_group_by.extend(group_by.clone());
    Some(RelExpr::Aggregate {
        input: Box::new(RelExpr::Apply {
            left: left.clone(),
            right: input.clone(),
            kind: ApplyKind::Cross,
            bindings: vec![],
        }),
        group_by: new_group_by,
        aggregates: aggregates.clone(),
    })
}

/// K6 is the Apply-introduction rule (`Π_{f(A)}(r) = Π(r A× ρ(f(A)))`); it is used by the
/// merge step (see [`crate::merge`]) rather than by the removal pipeline.
///
/// Pushes a cross Apply below an inner/cross join when exactly one join input is
/// correlated with the outer relation: `r A× (e1 ⊗_p e2) = (r A× e1) ⊗_p e2` when `e2` is
/// uncorrelated (and symmetrically). This is the standard companion rule from the
/// Galindo-Legaria & Joshi framework needed once UDF bodies contain multi-table queries.
pub fn rule_push_apply_below_join(
    plan: &RelExpr,
    provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind: ApplyKind::Cross,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() {
        return None;
    }
    let RelExpr::Join {
        left: e1,
        right: e2,
        kind: join_kind,
        condition,
    } = right.as_ref()
    else {
        return None;
    };
    if !matches!(join_kind, JoinKind::Inner | JoinKind::Cross) {
        return None;
    }
    let outer_schema = schema_of(left, provider);
    let params = free_params(left);
    let e1_uncorrelated = is_uncorrelated(e1, &outer_schema, &params, provider);
    let e2_uncorrelated = is_uncorrelated(e2, &outer_schema, &params, provider);
    match (e1_uncorrelated, e2_uncorrelated) {
        // Only e1 correlated: push the Apply to the left input.
        (false, true) => Some(RelExpr::Join {
            left: Box::new(RelExpr::Apply {
                left: left.clone(),
                right: e1.clone(),
                kind: ApplyKind::Cross,
                bindings: vec![],
            }),
            right: e2.clone(),
            kind: *join_kind,
            condition: condition.clone(),
        }),
        // Only e2 correlated: push the Apply to the right input (join inputs swap, which
        // is fine for inner/cross joins; columns are resolved by name).
        (true, false) => Some(RelExpr::Join {
            left: Box::new(RelExpr::Apply {
                left: left.clone(),
                right: e2.clone(),
                kind: ApplyKind::Cross,
                bindings: vec![],
            }),
            right: e1.clone(),
            kind: *join_kind,
            condition: condition.clone(),
        }),
        _ => None,
    }
}

// ------------------------------------------------------- scalar aggregate decorrelation

/// Decorrelates `r A× (G_{F}(…σ_{inner = outer ∧ …}(e)…))` — a correlated *scalar*
/// aggregate — into `r ⟕_{inner = outer} (inner G_F(e))`, the classic
/// outer-join + group-by rewrite used in the paper's Example 2 / Experiment 2.
///
/// Requirements:
/// * the aggregate has no GROUP BY of its own;
/// * every reference to the outer relation inside the aggregate subtree occurs in
///   equality conjuncts `inner_column = outer_expression` of selections under the
///   aggregate (possibly below projections);
/// * COUNT aggregates are wrapped in `coalesce(…, 0)` above the join to preserve the
///   "empty group counts zero" semantics (the count bug).
pub fn rule_scalar_aggregate(plan: &RelExpr, provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Apply {
        left,
        right,
        kind,
        bindings,
    } = plan
    else {
        return None;
    };
    if !bindings.is_empty() || !matches!(kind, ApplyKind::Cross | ApplyKind::LeftOuter) {
        return None;
    }
    let RelExpr::Aggregate {
        input,
        group_by,
        aggregates,
    } = right.as_ref()
    else {
        return None;
    };
    if !group_by.is_empty() {
        return None;
    }
    let outer_schema = schema_of(left, provider);
    if outer_schema.is_empty() {
        return None;
    }
    // The aggregate must actually be correlated; otherwise K1 applies.
    if is_uncorrelated(right, &outer_schema, &[], provider) {
        return None;
    }
    // Walk through projections to the selection carrying the correlation.
    let extraction = extract_correlated_equalities(input, &outer_schema, provider)?;
    // No other correlation may remain after removing those conjuncts.
    if !is_uncorrelated(&extraction.rewritten_input, &outer_schema, &[], provider) {
        return None;
    }
    // The aggregate arguments themselves must not reference the outer relation. A
    // reference that resolves against the aggregate's own input is fine even if the same
    // name also exists in the outer relation (self-joins).
    let input_schema = schema_of(input, provider);
    for a in aggregates {
        let mut cols = vec![];
        for arg in &a.args {
            arg.collect_columns(&mut cols);
        }
        if cols.iter().any(|c| {
            outer_schema.find(c.qualifier.as_deref(), &c.name).is_some()
                && input_schema.find(c.qualifier.as_deref(), &c.name).is_none()
        }) {
            return None;
        }
    }
    // Build the grouped aggregate over the decorrelated input. The aggregate side is
    // wrapped in a rename so its columns (which often share names with the outer
    // relation's key, e.g. `custkey`) stay unambiguous in the join condition.
    let group_exprs: Vec<ScalarExpr> = extraction
        .inner_keys
        .iter()
        .map(|c| match &c.qualifier {
            Some(q) => ScalarExpr::qualified_column(q.clone(), c.name.clone()),
            None => ScalarExpr::column(c.name.clone()),
        })
        .collect();
    let grp_alias = format!(
        "__grp_{}",
        aggregates
            .first()
            .map(|a| a.alias.clone())
            .unwrap_or_else(|| "agg".to_string())
    );
    let grouped = RelExpr::Rename {
        input: Box::new(RelExpr::Aggregate {
            input: Box::new(extraction.rewritten_input),
            group_by: group_exprs.clone(),
            aggregates: aggregates.clone(),
        }),
        alias: grp_alias.clone(),
    };
    // Join condition: inner key = outer expression (for every extracted pair). The inner
    // key is referenced through the rename alias.
    let condition = ScalarExpr::conjunction(
        extraction
            .inner_keys
            .iter()
            .zip(extraction.outer_exprs.iter().cloned())
            .map(|(inner, outer)| {
                ScalarExpr::eq(
                    ScalarExpr::qualified_column(grp_alias.clone(), inner.name.clone()),
                    outer,
                )
            })
            .collect(),
    );
    let join = RelExpr::Join {
        left: left.clone(),
        right: Box::new(grouped),
        kind: JoinKind::LeftOuter,
        condition: Some(condition),
    };
    // Preserve the Apply's output shape: outer columns followed by the aggregate values
    // (COUNTs coalesced to 0 so empty groups behave like iterative execution).
    let mut items = columns_of(&outer_schema);
    for a in aggregates {
        let col = ScalarExpr::column(a.alias.clone());
        let expr = match &a.func {
            AggFunc::Count | AggFunc::CountStar => {
                ScalarExpr::Coalesce(vec![col, ScalarExpr::literal(0)])
            }
            AggFunc::UserDefined(name) => match provider.aggregate_empty_value(name) {
                Some(empty) => ScalarExpr::Coalesce(vec![col, ScalarExpr::Literal(empty)]),
                None => col,
            },
            _ => col,
        };
        items.push(ProjectItem::aliased(expr, a.alias.clone()));
    }
    Some(RelExpr::Project {
        input: Box::new(join),
        items,
        distinct: false,
    })
}

struct CorrelationExtraction {
    rewritten_input: RelExpr,
    inner_keys: Vec<ColumnRef>,
    outer_exprs: Vec<ScalarExpr>,
}

/// Finds the selections (and inner/cross join conditions) under the aggregate that carry
/// `inner = outer` equality conjuncts, removes them, and makes sure the inner key columns
/// stay visible through any intervening projections.
fn extract_correlated_equalities(
    input: &RelExpr,
    outer_schema: &Schema,
    provider: &dyn SchemaProvider,
) -> Option<CorrelationExtraction> {
    match input {
        RelExpr::Select {
            input: base,
            predicate,
        } => {
            // Correlation may also sit deeper (e.g. below a join); merge what the
            // subtree yields with this selection's own conjuncts.
            let nested = extract_correlated_equalities(base, outer_schema, provider);
            let (rewritten_base, mut inner_keys, mut outer_exprs) = match nested {
                Some(e) => (e.rewritten_input, e.inner_keys, e.outer_exprs),
                None => (base.as_ref().clone(), vec![], vec![]),
            };
            let base_schema = schema_of(base, provider);
            let mut residual = vec![];
            for conjunct in predicate.split_conjuncts() {
                if let Some((inner, outer)) =
                    correlated_equality(&conjunct, &base_schema, outer_schema)
                {
                    inner_keys.push(inner);
                    outer_exprs.push(outer);
                } else {
                    residual.push(conjunct);
                }
            }
            if inner_keys.is_empty() {
                return None;
            }
            let rewritten = if residual.is_empty() {
                rewritten_base
            } else {
                RelExpr::Select {
                    input: Box::new(rewritten_base),
                    predicate: ScalarExpr::conjunction(residual),
                }
            };
            Some(CorrelationExtraction {
                rewritten_input: rewritten,
                inner_keys,
                outer_exprs,
            })
        }
        RelExpr::Join {
            left,
            right,
            kind: kind @ (JoinKind::Inner | JoinKind::Cross),
            condition,
        } => {
            let left_ext = extract_correlated_equalities(left, outer_schema, provider);
            let right_ext = extract_correlated_equalities(right, outer_schema, provider);
            let (new_left, mut inner_keys, mut outer_exprs) = match left_ext {
                Some(e) => (e.rewritten_input, e.inner_keys, e.outer_exprs),
                None => (left.as_ref().clone(), vec![], vec![]),
            };
            let (new_right, right_keys, right_outer) = match right_ext {
                Some(e) => (e.rewritten_input, e.inner_keys, e.outer_exprs),
                None => (right.as_ref().clone(), vec![], vec![]),
            };
            inner_keys.extend(right_keys);
            outer_exprs.extend(right_outer);
            // The join condition itself may hold correlated conjuncts.
            let combined_schema = schema_of(left, provider).join(&schema_of(right, provider));
            let mut residual = vec![];
            if let Some(c) = condition {
                for conjunct in c.split_conjuncts() {
                    if let Some((inner, outer)) =
                        correlated_equality(&conjunct, &combined_schema, outer_schema)
                    {
                        inner_keys.push(inner);
                        outer_exprs.push(outer);
                    } else {
                        residual.push(conjunct);
                    }
                }
            }
            if inner_keys.is_empty() {
                return None;
            }
            let new_condition = if residual.is_empty() {
                None
            } else {
                Some(ScalarExpr::conjunction(residual))
            };
            let new_kind = if new_condition.is_none() {
                JoinKind::Cross
            } else {
                *kind
            };
            Some(CorrelationExtraction {
                rewritten_input: RelExpr::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind: new_kind,
                    condition: new_condition,
                },
                inner_keys,
                outer_exprs,
            })
        }
        RelExpr::Project {
            input: base,
            items,
            distinct: false,
        } => {
            let inner = extract_correlated_equalities(base, outer_schema, provider)?;
            // Keep the key columns visible through the projection.
            let mut items = items.clone();
            for key in &inner.inner_keys {
                let already = items.iter().enumerate().any(|(i, it)| {
                    it.output_name(i) == key.name
                        || matches!(&it.expr, ScalarExpr::Column(c) if c.name == key.name)
                });
                if !already {
                    let expr = match &key.qualifier {
                        Some(q) => ScalarExpr::qualified_column(q.clone(), key.name.clone()),
                        None => ScalarExpr::column(key.name.clone()),
                    };
                    items.push(ProjectItem::new(expr));
                }
            }
            Some(CorrelationExtraction {
                rewritten_input: RelExpr::Project {
                    input: Box::new(inner.rewritten_input),
                    items,
                    distinct: false,
                },
                inner_keys: inner.inner_keys,
                outer_exprs: inner.outer_exprs,
            })
        }
        _ => None,
    }
}

/// Matches `inner_column = outer_expression` (in either order): the inner side must be a
/// plain column of the aggregate's input, the outer side must reference only columns of
/// the outer relation.
fn correlated_equality(
    conjunct: &ScalarExpr,
    inner_schema: &Schema,
    outer_schema: &Schema,
) -> Option<(ColumnRef, ScalarExpr)> {
    let ScalarExpr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = conjunct
    else {
        return None;
    };
    for (a, b) in [(left, right), (right, left)] {
        let ScalarExpr::Column(inner_col) = a.as_ref() else {
            continue;
        };
        if inner_schema
            .find(inner_col.qualifier.as_deref(), &inner_col.name)
            .is_none()
        {
            continue;
        }
        let mut outer_cols = vec![];
        b.collect_columns(&mut outer_cols);
        if outer_cols.is_empty() {
            continue;
        }
        let all_outer = outer_cols.iter().all(|c| {
            outer_schema.find(c.qualifier.as_deref(), &c.name).is_some()
                && inner_schema.find(c.qualifier.as_deref(), &c.name).is_none()
        });
        if all_outer {
            return Some((inner_col.clone(), b.as_ref().clone()));
        }
    }
    None
}

// --------------------------------------------------------------------------- cleanup

/// `σ_p(σ_q(e)) = σ_{p ∧ q}(e)`.
pub fn rule_merge_selects(plan: &RelExpr, _provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Select { input, predicate } = plan else {
        return None;
    };
    let RelExpr::Select {
        input: inner,
        predicate: inner_pred,
    } = input.as_ref()
    else {
        return None;
    };
    Some(RelExpr::Select {
        input: inner.clone(),
        predicate: ScalarExpr::and(inner_pred.clone(), predicate.clone()),
    })
}

/// Predicate pushdown into inner/cross joins: conjuncts referencing both inputs move into
/// the join condition (turning a cross product into an inner join); conjuncts referencing
/// a single input move below the join.
pub fn rule_push_select_into_join(
    plan: &RelExpr,
    provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::Select { input, predicate } = plan else {
        return None;
    };
    let RelExpr::Join {
        left,
        right,
        kind,
        condition,
    } = input.as_ref()
    else {
        return None;
    };
    if !matches!(kind, JoinKind::Inner | JoinKind::Cross) {
        return None;
    }
    let left_schema = schema_of(left, provider);
    let right_schema = schema_of(right, provider);
    let mut to_left = vec![];
    let mut to_right = vec![];
    let mut to_join = vec![];
    let mut keep = vec![];
    for conjunct in predicate.split_conjuncts() {
        let mut cols = vec![];
        conjunct.collect_columns(&mut cols);
        if cols.is_empty() || conjunct.contains_subquery() || conjunct.contains_udf_call() {
            keep.push(conjunct);
            continue;
        }
        let all_left = cols
            .iter()
            .all(|c| left_schema.find(c.qualifier.as_deref(), &c.name).is_some());
        let all_right = cols
            .iter()
            .all(|c| right_schema.find(c.qualifier.as_deref(), &c.name).is_some());
        let any_left = cols
            .iter()
            .any(|c| left_schema.find(c.qualifier.as_deref(), &c.name).is_some());
        let any_right = cols
            .iter()
            .any(|c| right_schema.find(c.qualifier.as_deref(), &c.name).is_some());
        if all_left && !any_right {
            to_left.push(conjunct);
        } else if all_right && !any_left {
            to_right.push(conjunct);
        } else if any_left && any_right {
            to_join.push(conjunct);
        } else {
            keep.push(conjunct);
        }
    }
    if to_left.is_empty() && to_right.is_empty() && to_join.is_empty() {
        return None;
    }
    let new_left = if to_left.is_empty() {
        left.as_ref().clone()
    } else {
        RelExpr::Select {
            input: left.clone(),
            predicate: ScalarExpr::conjunction(to_left),
        }
    };
    let new_right = if to_right.is_empty() {
        right.as_ref().clone()
    } else {
        RelExpr::Select {
            input: right.clone(),
            predicate: ScalarExpr::conjunction(to_right),
        }
    };
    let mut condition_conjuncts: Vec<ScalarExpr> = condition
        .as_ref()
        .map(|c| c.split_conjuncts())
        .unwrap_or_default();
    condition_conjuncts.extend(to_join);
    let new_kind = if condition_conjuncts.is_empty() {
        *kind
    } else {
        JoinKind::Inner
    };
    let new_join = RelExpr::Join {
        left: Box::new(new_left),
        right: Box::new(new_right),
        kind: new_kind,
        condition: if condition_conjuncts.is_empty() {
            None
        } else {
            Some(ScalarExpr::conjunction(condition_conjuncts))
        },
    };
    Some(if keep.is_empty() {
        new_join
    } else {
        RelExpr::Select {
            input: Box::new(new_join),
            predicate: ScalarExpr::conjunction(keep),
        }
    })
}

/// The output columns of a projection as (qualifier, name, expression) triples, using the
/// same naming rules as schema inference (aliases strip the qualifier; plain column
/// references keep theirs).
fn projection_outputs(items: &[ProjectItem]) -> Vec<(Option<String>, String, ScalarExpr)> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let qualifier = match (&item.alias, &item.expr) {
                (None, ScalarExpr::Column(c)) => c.qualifier.clone(),
                _ => None,
            };
            (qualifier, item.output_name(i), item.expr.clone())
        })
        .collect()
}

/// Substitutes column references in `expr` by the matching projection output expression.
/// Qualified references must match the output's qualifier; a reference that matches zero
/// or several outputs makes the substitution ambiguous and returns `None`.
fn substitute_projection(
    expr: &ScalarExpr,
    outputs: &[(Option<String>, String, ScalarExpr)],
    forbid_expensive: bool,
) -> Option<ScalarExpr> {
    let mut ok = true;
    let result = decorr_algebra::visit::transform_expr_up(expr, &mut |e| match &e {
        ScalarExpr::Column(c) => {
            let candidates: Vec<&(Option<String>, String, ScalarExpr)> = outputs
                .iter()
                .filter(|(q, name, _)| {
                    name == &c.name
                        && match (&c.qualifier, q) {
                            (None, _) => true,
                            (Some(cq), Some(oq)) => cq == oq,
                            (Some(_), None) => false,
                        }
                })
                .collect();
            match candidates.as_slice() {
                [(_, _, inner)] => {
                    if forbid_expensive && (inner.contains_udf_call() || inner.contains_subquery())
                    {
                        ok = false;
                        e
                    } else {
                        inner.clone()
                    }
                }
                _ => {
                    ok = false;
                    e
                }
            }
        }
        _ => e,
    });
    if ok {
        Some(result)
    } else {
        None
    }
}

/// Pushes a selection below a non-distinct projection by substituting the projection's
/// expressions into the predicate: `σ_p(Πd_A(e)) = Πd_A(σ_{p[A]}(e))`. This lets
/// correlated equality predicates reach the joins produced by Apply removal, where
/// [`rule_push_select_into_join`] turns them into (hash-joinable) join conditions.
pub fn rule_push_select_below_project(
    plan: &RelExpr,
    _provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::Select { input, predicate } = plan else {
        return None;
    };
    let RelExpr::Project {
        input: base,
        items,
        distinct: false,
    } = input.as_ref()
    else {
        return None;
    };
    let outputs = projection_outputs(items);
    let pushed = substitute_projection(predicate, &outputs, true)?;
    Some(RelExpr::Project {
        input: Box::new(RelExpr::Select {
            input: base.clone(),
            predicate: pushed,
        }),
        items: items.clone(),
        distinct: false,
    })
}

/// R3 (generalised to plans): merge adjacent non-distinct projections by substituting the
/// inner projection's expressions into the outer one.
pub fn rule_r3_merge_projections(
    plan: &RelExpr,
    _provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::Project {
        input,
        items,
        distinct: false,
    } = plan
    else {
        return None;
    };
    let RelExpr::Project {
        input: inner_input,
        items: inner_items,
        distinct: false,
    } = input.as_ref()
    else {
        return None;
    };
    // Every column reference of the outer items must resolve (unambiguously, respecting
    // qualifiers) against the inner projection's outputs.
    let outputs = projection_outputs(inner_items);
    let mut new_items: Vec<ProjectItem> = vec![];
    for (i, item) in items.iter().enumerate() {
        let expr = substitute_projection(&item.expr, &outputs, false)?;
        new_items.push(ProjectItem::aliased(expr, item.output_name(i)));
    }
    Some(RelExpr::Project {
        input: inner_input.clone(),
        items: new_items,
        distinct: false,
    })
}

/// Removes `σ_true(e)`.
pub fn rule_remove_trivial_select(
    plan: &RelExpr,
    _provider: &dyn SchemaProvider,
) -> Option<RelExpr> {
    let RelExpr::Select { input, predicate } = plan else {
        return None;
    };
    if matches!(predicate, ScalarExpr::Literal(Value::Bool(true))) {
        return Some(input.as_ref().clone());
    }
    None
}
