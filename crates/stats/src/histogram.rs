//! Equi-depth histograms over sampled numeric column values.
//!
//! An equi-depth (equi-height) histogram splits the sorted sample into buckets holding
//! (approximately) the same number of values, so dense value regions get narrow buckets
//! and sparse regions get wide ones — range selectivity is then a bucket count plus a
//! linear interpolation inside the two boundary buckets, accurate to roughly one bucket
//! fraction regardless of the data distribution's shape.

/// An equi-depth histogram over a sample of numeric values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket boundaries, ascending; `bounds.len() == counts.len() + 1`. Bucket `i`
    /// covers `[bounds[i], bounds[i + 1]]` (boundary values sit in the lower bucket,
    /// except the global minimum which opens bucket 0).
    bounds: Vec<f64>,
    /// Sampled values per bucket.
    counts: Vec<u64>,
    /// Distinct sampled values per bucket (for equality estimates inside a bucket).
    distinct: Vec<u64>,
    /// Total sampled values.
    total: u64,
}

impl Histogram {
    /// Builds an equi-depth histogram from a sample. Returns `None` for an empty
    /// sample. `buckets` is an upper bound — duplicate-heavy samples produce fewer.
    pub fn equi_depth(mut values: Vec<f64>, buckets: usize) -> Option<Histogram> {
        values.retain(|v| v.is_finite());
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let total = values.len();
        let buckets = buckets.min(total);
        let depth = total.div_ceil(buckets);
        let mut bounds = vec![values[0]];
        let mut counts = vec![];
        let mut distinct = vec![];
        let mut start = 0usize;
        while start < total {
            let mut end = (start + depth).min(total);
            // Never split a run of equal values across buckets: grow the bucket until
            // the boundary value changes, so `fraction_below(bound)` is well defined.
            while end < total && values[end] == values[end - 1] {
                end += 1;
            }
            let slice = &values[start..end];
            let mut ndv = 1u64;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    ndv += 1;
                }
            }
            bounds.push(slice[slice.len() - 1]);
            counts.push(slice.len() as u64);
            distinct.push(ndv);
            start = end;
        }
        Some(Histogram {
            bounds,
            counts,
            distinct,
            total: total as u64,
        })
    }

    /// Reassembles a histogram from its raw parts (the inverse of
    /// [`bounds`](Histogram::bounds)/[`counts`](Histogram::counts)/
    /// [`distinct_counts`](Histogram::distinct_counts)/[`total`](Histogram::total) —
    /// the decode half of snapshot persistence). Returns `None` when the parts
    /// violate the structural invariants (`bounds.len() == counts.len() + 1`,
    /// ascending finite bounds, per-bucket counts summing to `total`).
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        distinct: Vec<u64>,
        total: u64,
    ) -> Option<Histogram> {
        if counts.is_empty() || bounds.len() != counts.len() + 1 || distinct.len() != counts.len() {
            return None;
        }
        if bounds.iter().any(|b| !b.is_finite()) {
            return None;
        }
        if bounds.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if counts.iter().sum::<u64>() != total || total == 0 {
            return None;
        }
        if counts.iter().zip(&distinct).any(|(&c, &d)| d == 0 || d > c) {
            return None;
        }
        Some(Histogram {
            bounds,
            counts,
            distinct,
            total,
        })
    }

    /// Bucket boundaries, ascending (`buckets() + 1` entries).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Sampled values per bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Distinct sampled values per bucket.
    pub fn distinct_counts(&self) -> &[u64] {
        &self.distinct
    }

    /// Total sampled values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Smallest sampled value.
    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    /// Largest sampled value.
    pub fn max(&self) -> f64 {
        self.bounds[self.bounds.len() - 1]
    }

    /// Estimated fraction of values strictly below `v` (or `≤ v` when `inclusive`).
    /// Full buckets below the containing bucket count whole; the containing bucket
    /// contributes a linear interpolation of its width.
    pub fn fraction_below(&self, v: f64, inclusive: bool) -> f64 {
        if !v.is_finite() || self.total == 0 {
            return if v == f64::INFINITY { 1.0 } else { 0.0 };
        }
        if v < self.min() || (v == self.min() && !inclusive) {
            return 0.0;
        }
        if v > self.max() || (v == self.max() && inclusive) {
            return 1.0;
        }
        let mut below = 0u64;
        for i in 0..self.counts.len() {
            let (lo, hi) = (self.bounds[i], self.bounds[i + 1]);
            if v > hi || (v == hi && inclusive) {
                below += self.counts[i];
                continue;
            }
            // v falls inside bucket i. Bucket boundaries are sampled values whose
            // whole run lives in this bucket (runs never split across buckets), so a
            // bound landing exactly on a boundary must account for that value's own
            // mass — estimated as one distinct-value share of the bucket — instead of
            // interpolating: `x < hi` excludes the boundary run, `x <= lo` includes
            // it. Strictly-interior bounds interpolate linearly across the width.
            let share = 1.0 / self.distinct[i].max(1) as f64;
            let inside = if v == hi {
                if inclusive {
                    1.0
                } else {
                    1.0 - share
                }
            } else if v == lo {
                // A lower boundary belongs to the *previous* bucket (already counted
                // above) — except in bucket 0, whose lower bound is the global
                // minimum and lives here.
                if inclusive && i == 0 {
                    share
                } else {
                    0.0
                }
            } else {
                ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
            };
            return (below as f64 + inside * self.counts[i] as f64) / self.total as f64;
        }
        1.0
    }

    /// Estimated selectivity of `lo < x < hi` with per-bound inclusivity; `None` bounds
    /// are unbounded. This is the shared implementation behind `<`, `>`, `BETWEEN` and
    /// closed ranges assembled from conjuncts.
    pub fn selectivity_interval(&self, lo: Option<(f64, bool)>, hi: Option<(f64, bool)>) -> f64 {
        let below_hi = match hi {
            Some((v, inclusive)) => self.fraction_below(v, inclusive),
            None => 1.0,
        };
        let below_lo = match lo {
            // Values below an exclusive bound include the bound itself.
            Some((v, inclusive)) => self.fraction_below(v, !inclusive),
            None => 0.0,
        };
        (below_hi - below_lo).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `x = v`: the containing bucket's fraction divided by
    /// its distinct-value count (uniformity within the bucket).
    pub fn selectivity_eq(&self, v: f64) -> f64 {
        if !v.is_finite() || self.total == 0 || v < self.min() || v > self.max() {
            return 0.0;
        }
        for i in 0..self.counts.len() {
            let hi = self.bounds[i + 1];
            if v <= hi {
                let bucket_fraction = self.counts[i] as f64 / self.total as f64;
                return bucket_fraction / self.distinct[i].max(1) as f64;
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn empty_and_degenerate_samples() {
        assert!(Histogram::equi_depth(vec![], 16).is_none());
        assert!(Histogram::equi_depth(vec![1.0], 0).is_none());
        let h = Histogram::equi_depth(vec![5.0], 16).unwrap();
        assert_eq!(h.buckets(), 1);
        assert_eq!(h.fraction_below(5.0, true), 1.0);
        assert_eq!(h.fraction_below(5.0, false), 0.0);
        assert!((h.selectivity_eq(5.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_range_fractions_are_accurate() {
        let h = Histogram::equi_depth(uniform(1000), 32).unwrap();
        // x < 100 over 0..999 → ~10%.
        let f = h.fraction_below(100.0, false);
        assert!((f - 0.1).abs() < 0.05, "fraction {f}");
        let range = h.selectivity_interval(Some((200.0, true)), Some((399.0, true)));
        assert!((range - 0.2).abs() < 0.05, "range {range}");
        // Out-of-domain predicates estimate ~0.
        assert_eq!(h.selectivity_interval(Some((5000.0, false)), None), 0.0);
        assert_eq!(h.fraction_below(-10.0, true), 0.0);
    }

    #[test]
    fn skewed_data_keeps_bucket_resolution() {
        // 90% of the mass at 0, the rest spread over 1..=100: the equal-depth split
        // must not lump the tail into one bucket.
        let mut values: Vec<f64> = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = Histogram::equi_depth(values, 16).unwrap();
        let zero_fraction = h.selectivity_eq(0.0);
        assert!(zero_fraction > 0.5, "eq(0) = {zero_fraction}");
        let tail = h.selectivity_interval(Some((50.0, false)), None);
        assert!((tail - 0.05).abs() < 0.03, "tail {tail}");
    }

    #[test]
    fn from_parts_round_trips_and_rejects_invalid_parts() {
        let h = Histogram::equi_depth(uniform(1000), 32).unwrap();
        let rebuilt = Histogram::from_parts(
            h.bounds().to_vec(),
            h.counts().to_vec(),
            h.distinct_counts().to_vec(),
            h.total(),
        )
        .unwrap();
        assert_eq!(rebuilt, h, "decode(encode(h)) must be identity");
        // Structural violations are rejected instead of producing a torn histogram.
        assert!(Histogram::from_parts(vec![0.0], vec![], vec![], 0).is_none());
        assert!(
            Histogram::from_parts(vec![0.0, 1.0], vec![5], vec![2], 4).is_none(),
            "counts must sum to total"
        );
        assert!(
            Histogram::from_parts(vec![1.0, 0.0], vec![5], vec![2], 5).is_none(),
            "bounds must ascend"
        );
        assert!(
            Histogram::from_parts(vec![0.0, f64::NAN], vec![5], vec![2], 5).is_none(),
            "bounds must be finite"
        );
        assert!(
            Histogram::from_parts(vec![0.0, 1.0], vec![2], vec![5], 2).is_none(),
            "distinct cannot exceed count"
        );
    }

    #[test]
    fn equal_runs_never_split_across_buckets() {
        let values: Vec<f64> = (0..100).map(|i| (i / 25) as f64).collect(); // 4 distinct
        let h = Histogram::equi_depth(values, 16).unwrap();
        // Each distinct value has frequency 0.25; equality estimates must reflect it.
        for v in [0.0, 1.0, 2.0, 3.0] {
            let s = h.selectivity_eq(v);
            assert!((s - 0.25).abs() < 0.26, "eq({v}) = {s}");
        }
        assert!((h.fraction_below(1.0, true) - 0.5).abs() < 1e-9);
        // Strict inequality at a bucket boundary must exclude the boundary value's
        // run: `x < 1` covers only the 0s (25%), not half the data.
        assert!((h.fraction_below(1.0, false) - 0.25).abs() < 1e-9);
        // `x <= min` covers the minimum's own run.
        assert!((h.fraction_below(0.0, true) - 0.25).abs() < 1e-9);
        assert_eq!(h.fraction_below(0.0, false), 0.0);
        // `x < max` excludes the heavy top run instead of estimating ~1.
        assert!((h.fraction_below(3.0, false) - 0.75).abs() < 1e-9);
    }
}
