//! Column statistics for the optimizer's cost model.
//!
//! Two tiers, mirroring what real systems keep:
//!
//! * **basic statistics** — row count, exact per-column distinct counts and null
//!   fractions, computed in one pass over the table. This is what the engine maintains
//!   automatically (and caches — see `decorr-storage`);
//! * **analyzed statistics** — everything a sampled `ANALYZE` adds: per-column
//!   [equi-depth histograms](Histogram), most-common-value (MCV) lists and min/max,
//!   built from a reservoir sample drawn with the workspace's deterministic
//!   [`SmallRng`] (the build environment has no `rand` crate).
//!
//! The optimizer consumes these through `decorr-storage`'s `TableStats` wrapper: with
//! histograms available, range predicates (`<`, `>`, `BETWEEN`) and skew-aware equality
//! predicates get measured selectivities instead of the magic constants the seed cost
//! model used. The [`q_error`] metric quantifies how much that helps: it is the factor
//! by which an estimate misses the observed actual, the standard cardinality-accuracy
//! measure (Moerkotte et al., "Preventing bad plans by bounding the impact of
//! cardinality estimation errors").

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod histogram;

pub use histogram::Histogram;

use decorr_common::{value::GroupKey, Row, Schema, SmallRng, Value};
use std::collections::{HashMap, HashSet};

/// The q-error of a cardinality (or cost) estimate: `max(est/actual, actual/est)`,
/// with both sides floored at 1.0 so empty results and sub-row estimates do not blow
/// the metric up. 1.0 is a perfect estimate; q-errors multiply along a plan, which is
/// why bounding them bounds plan quality.
pub fn q_error(estimate: f64, actual: f64) -> f64 {
    let est = if estimate.is_finite() {
        estimate.max(1.0)
    } else {
        f64::MAX
    };
    let act = if actual.is_finite() {
        actual.max(1.0)
    } else {
        f64::MAX
    };
    (est / act).max(act / est)
}

/// Knobs of a sampled `ANALYZE` run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeConfig {
    /// Reservoir size: at most this many rows are sampled per table.
    pub sample_size: usize,
    /// Upper bound on equi-depth histogram buckets per numeric column.
    pub histogram_buckets: usize,
    /// Most-common-value list length per column.
    pub mcv_count: usize,
    /// Seed of the deterministic sampling RNG (stable plans across runs).
    pub seed: u64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            sample_size: 8_192,
            histogram_buckets: 32,
            mcv_count: 8,
            seed: 0x5EED_57A7,
        }
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStatistics {
    /// Column name (unqualified).
    pub name: String,
    /// Exact distinct (non-NULL) value count, from the full-table pass.
    pub distinct_count: usize,
    /// Fraction of rows where the column is NULL.
    pub null_fraction: f64,
    /// Smallest sampled numeric value (`None` for non-numeric or all-NULL).
    pub min: Option<f64>,
    /// Largest sampled numeric value (`None` for non-numeric or all-NULL).
    pub max: Option<f64>,
    /// Most common sampled values with their frequency among *all* sampled rows
    /// (NULLs included in the denominator), descending. Empty without `ANALYZE`.
    pub mcvs: Vec<(Value, f64)>,
    /// Equi-depth histogram over the sampled non-NULL numeric values. `None` without
    /// `ANALYZE` or for non-numeric columns.
    pub histogram: Option<Histogram>,
}

impl ColumnStatistics {
    /// Selectivity of `column = value` using MCVs and the histogram when available;
    /// `None` when this column has no analyzed statistics usable for the value.
    pub fn equality_selectivity(&self, value: &Value) -> Option<f64> {
        if value.is_null() {
            // SQL equality with NULL never matches.
            return Some(0.0);
        }
        if let Some((_, freq)) = self
            .mcvs
            .iter()
            .find(|(mcv, _)| mcv.sql_eq(value) == Some(true))
        {
            return Some(*freq);
        }
        if self.mcvs.is_empty() && self.histogram.is_none() {
            return None; // not analyzed
        }
        // Not an MCV. For numeric values covered by the histogram, use the containing
        // bucket's fraction divided by its distinct count (bucket-local density) — in
        // particular this estimates ~0 for values outside the sampled [min, max]
        // domain, which the rest-mass model cannot.
        if let (Some(histogram), Ok(v)) = (self.histogram.as_ref(), value.as_float()) {
            return Some(histogram.selectivity_eq(v) * (1.0 - self.null_fraction));
        }
        // Non-numeric fallback: distribute the non-MCV mass uniformly over the
        // remaining distinct values (the classic MCV + equal-frequency-rest model).
        let mcv_mass: f64 = self.mcvs.iter().map(|(_, f)| f).sum();
        let rest_ndv = self.distinct_count.saturating_sub(self.mcvs.len()).max(1);
        let rest_mass = (1.0 - self.null_fraction - mcv_mass).max(0.0);
        Some(rest_mass / rest_ndv as f64)
    }

    /// Selectivity of a (half-)open numeric interval on this column, via the
    /// histogram. `None` when no histogram exists (not analyzed / non-numeric).
    pub fn range_selectivity(
        &self,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    ) -> Option<f64> {
        let histogram = self.histogram.as_ref()?;
        Some(histogram.selectivity_interval(lo, hi) * (1.0 - self.null_fraction))
    }
}

/// Full statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatistics {
    /// Exact number of rows in the table when statistics were computed.
    pub row_count: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStatistics>,
    /// True when histograms/MCVs were built by a sampled `ANALYZE`.
    pub analyzed: bool,
    /// Rows the `ANALYZE` sample held (0 for basic statistics).
    pub sampled_rows: usize,
}

impl TableStatistics {
    /// Basic statistics: one full pass for row count, exact distinct counts and null
    /// fractions. No histograms or MCVs.
    pub fn basic(schema: &Schema, rows: &[Row]) -> TableStatistics {
        let ncols = schema.len();
        let mut sets: Vec<std::collections::HashSet<GroupKey>> =
            vec![std::collections::HashSet::new(); ncols];
        let mut nulls = vec![0usize; ncols];
        for row in rows {
            for (i, v) in row.values.iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                } else {
                    sets[i].insert(v.group_key());
                }
            }
        }
        let columns = schema
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| ColumnStatistics {
                name: c.name.clone(),
                distinct_count: sets[i].len(),
                null_fraction: if rows.is_empty() {
                    0.0
                } else {
                    nulls[i] as f64 / rows.len() as f64
                },
                min: None,
                max: None,
                mcvs: vec![],
                histogram: None,
            })
            .collect();
        TableStatistics {
            row_count: rows.len(),
            columns,
            analyzed: false,
            sampled_rows: 0,
        }
    }

    /// Analyzed statistics: [`basic`](TableStatistics::basic) plus per-column
    /// histograms, MCV lists and min/max built from a reservoir sample of
    /// `config.sample_size` rows (algorithm R over the deterministic [`SmallRng`]).
    pub fn analyzed(schema: &Schema, rows: &[Row], config: &AnalyzeConfig) -> TableStatistics {
        let mut stats = TableStatistics::basic(schema, rows);
        let sample = reservoir_sample(rows, config.sample_size.max(1), config.seed);
        stats.analyzed = true;
        stats.sampled_rows = sample.len();
        if sample.is_empty() {
            return stats;
        }
        for (i, col) in stats.columns.iter_mut().enumerate() {
            fill_sampled_column(col, &sample, i, config);
        }
        stats
    }

    /// Column statistics by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&ColumnStatistics> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Exact distinct count with the pessimistic all-distinct fallback for unknown
    /// columns (matching the seed cost model's behaviour).
    pub fn distinct_count(&self, column: &str) -> usize {
        self.column(column)
            .map(|c| c.distinct_count)
            .unwrap_or(self.row_count)
            .max(1)
    }
}

/// Builds the sampled portion of one [`ColumnStatistics`] (MCVs, min/max, histogram)
/// from `sample` — shared by the direct [`TableStatistics::analyzed`] pass and the
/// per-shard [`ShardStatistics::merge`], so both produce identical statistics for
/// identical samples.
fn fill_sampled_column(
    col: &mut ColumnStatistics,
    sample: &[Row],
    i: usize,
    config: &AnalyzeConfig,
) {
    // MCVs: count sampled occurrences per value (any type).
    let mut counts: HashMap<GroupKey, (Value, u64)> = HashMap::new();
    let mut numeric = Vec::with_capacity(sample.len());
    for row in sample {
        let v = row.get(i);
        if v.is_null() {
            continue;
        }
        counts
            .entry(v.group_key())
            .or_insert_with(|| (v.clone(), 0))
            .1 += 1;
        if let Ok(f) = v.as_float() {
            numeric.push(f);
        }
    }
    let mut by_count: Vec<(Value, u64)> = counts.into_values().collect();
    // Deterministic order: frequency descending, then value order.
    by_count.sort_by(|(va, ca), (vb, cb)| cb.cmp(ca).then_with(|| va.total_cmp(vb)));
    col.mcvs = by_count
        .iter()
        .take(config.mcv_count)
        .filter(|(_, c)| *c >= 2) // singleton "common values" are noise
        .map(|(v, c)| (v.clone(), *c as f64 / sample.len() as f64))
        .collect();
    if !numeric.is_empty() {
        col.min = numeric.iter().copied().reduce(f64::min);
        col.max = numeric.iter().copied().reduce(f64::max);
        col.histogram = Histogram::equi_depth(numeric, config.histogram_buckets);
    }
}

/// Per-column summary of one table shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardColumnSummary {
    /// Column name (unqualified).
    pub name: String,
    /// Exact distinct (non-NULL) group keys in this shard — kept as the set (not a
    /// count) so table-level merges stay exact under arbitrary value overlap.
    pub distinct: HashSet<GroupKey>,
    /// Exact number of NULL values in this shard's column.
    pub null_count: usize,
    /// Full-pass numeric min/max (`None` for non-numeric columns or no numeric
    /// values). Unlike the sampled min/max in [`ColumnStatistics`], these bound
    /// *every* row of the shard, so they are safe to prune scans with.
    pub min: Option<f64>,
    /// Full-pass numeric maximum; see [`min`](ShardColumnSummary::min).
    pub max: Option<f64>,
}

/// Statistics of one table shard: the mergeable building block behind sharded tables.
///
/// Each shard carries exact distinct sets and null counts, full-pass numeric min/max
/// (safe for shard pruning), and — when the table was ANALYZEd — its own reservoir
/// sample drawn with a per-shard seed. Per-shard samples compose into a stratified
/// sample of the whole table (per Kamat & Nandi), which
/// [`merge`](ShardStatistics::merge) downsamples to the configured reservoir size
/// before building table-level MCVs and histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatistics {
    /// Exact number of rows in the shard when the summary was computed.
    pub row_count: usize,
    /// Per-column summaries, in schema order.
    pub columns: Vec<ShardColumnSummary>,
    /// Reservoir sample of this shard's rows (empty without ANALYZE).
    pub sample: Vec<Row>,
    /// True when `sample` was drawn (the ANALYZE tier).
    pub analyzed: bool,
}

impl ShardStatistics {
    /// Basic tier: distinct sets, null counts and full-pass min/max; no sample.
    pub fn basic(schema: &Schema, rows: &[Row]) -> ShardStatistics {
        ShardStatistics::compute(schema, rows, None, 0)
    }

    /// ANALYZE tier: [`basic`](ShardStatistics::basic) plus a reservoir sample seeded
    /// `config.seed + shard_index`, so shard 0 of a single-shard table draws exactly
    /// the sample the unsharded ANALYZE drew.
    pub fn analyzed(
        schema: &Schema,
        rows: &[Row],
        config: &AnalyzeConfig,
        shard_index: u64,
    ) -> ShardStatistics {
        ShardStatistics::compute(schema, rows, Some(config), shard_index)
    }

    fn compute(
        schema: &Schema,
        rows: &[Row],
        config: Option<&AnalyzeConfig>,
        shard_index: u64,
    ) -> ShardStatistics {
        let mut columns: Vec<ShardColumnSummary> = schema
            .columns
            .iter()
            .map(|c| ShardColumnSummary {
                name: c.name.clone(),
                distinct: HashSet::new(),
                null_count: 0,
                min: None,
                max: None,
            })
            .collect();
        for row in rows {
            for (i, v) in row.values.iter().enumerate() {
                let col = &mut columns[i];
                if v.is_null() {
                    col.null_count += 1;
                    continue;
                }
                col.distinct.insert(v.group_key());
                if let Ok(f) = v.as_float() {
                    col.min = Some(col.min.map_or(f, |m| m.min(f)));
                    col.max = Some(col.max.map_or(f, |m| m.max(f)));
                }
            }
        }
        let sample = match config {
            Some(c) => {
                reservoir_sample(rows, c.sample_size.max(1), c.seed.wrapping_add(shard_index))
            }
            None => Vec::new(),
        };
        ShardStatistics {
            row_count: rows.len(),
            columns,
            sample,
            analyzed: config.is_some(),
        }
    }

    /// Whether any row of this shard can satisfy `lo <= column <= hi` (bounds are
    /// `(value, inclusive)`, `None` = unbounded; equality is `lo == hi`, both
    /// inclusive). `false` means the shard is provably prunable: the interval misses
    /// the shard's full-pass `[min, max]`, or every value is NULL (a range/equality
    /// predicate never matches NULL). Unknown and non-numeric columns conservatively
    /// return `true`, as does an empty shard (nothing to prune).
    pub fn may_contain_in_range(
        &self,
        column: &str,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    ) -> bool {
        let Some(col) = self
            .columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(column))
        else {
            return true;
        };
        if self.row_count > 0 && col.null_count == self.row_count {
            return false;
        }
        let (Some(min), Some(max)) = (col.min, col.max) else {
            return true;
        };
        if let Some((lo, inclusive)) = lo {
            if lo > max || (!inclusive && lo >= max) {
                return false;
            }
        }
        if let Some((hi, inclusive)) = hi {
            if hi < min || (!inclusive && hi <= min) {
                return false;
            }
        }
        true
    }

    /// Merges per-shard summaries into table-level [`TableStatistics`]. Distinct
    /// counts are exact (set union); null fractions are exact sums; the ANALYZE tier
    /// concatenates the per-shard stratified samples in shard order and downsamples
    /// to `config.sample_size` only when they overflow it.
    ///
    /// For a single shard this is byte-identical to computing
    /// [`TableStatistics::basic`] / [`TableStatistics::analyzed`] directly over the
    /// table's rows, which keeps single-shard tables — the default layout —
    /// indistinguishable from the pre-shard storage.
    pub fn merge(
        schema: &Schema,
        shards: &[&ShardStatistics],
        config: Option<&AnalyzeConfig>,
    ) -> TableStatistics {
        let row_count: usize = shards.iter().map(|s| s.row_count).sum();
        let columns: Vec<ColumnStatistics> = schema
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut union: HashSet<&GroupKey> = HashSet::new();
                let mut nulls = 0usize;
                for s in shards {
                    if let Some(sc) = s.columns.get(i) {
                        union.extend(sc.distinct.iter());
                        nulls += sc.null_count;
                    }
                }
                ColumnStatistics {
                    name: c.name.clone(),
                    distinct_count: union.len(),
                    null_fraction: if row_count == 0 {
                        0.0
                    } else {
                        nulls as f64 / row_count as f64
                    },
                    min: None,
                    max: None,
                    mcvs: vec![],
                    histogram: None,
                }
            })
            .collect();
        let mut stats = TableStatistics {
            row_count,
            columns,
            analyzed: false,
            sampled_rows: 0,
        };
        let Some(config) = config else {
            return stats;
        };
        let mut sample: Vec<Row> = Vec::new();
        for s in shards {
            sample.extend_from_slice(&s.sample);
        }
        let cap = config.sample_size.max(1);
        if sample.len() > cap {
            sample = reservoir_sample(&sample, cap, config.seed);
        }
        stats.analyzed = true;
        stats.sampled_rows = sample.len();
        if sample.is_empty() {
            return stats;
        }
        for (i, col) in stats.columns.iter_mut().enumerate() {
            fill_sampled_column(col, &sample, i, config);
        }
        stats
    }
}

/// Reservoir sampling (algorithm R): a uniform sample of `k` rows in one pass,
/// deterministic for a given seed. Returns clones of the sampled rows.
fn reservoir_sample(rows: &[Row], k: usize, seed: u64) -> Vec<Row> {
    if rows.len() <= k {
        return rows.to_vec();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reservoir: Vec<Row> = rows[..k].to_vec();
    for (i, row) in rows.iter().enumerate().skip(k) {
        let j = rng.gen_range_usize(0, i + 1);
        if j < k {
            reservoir[j] = row.clone();
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("grp", DataType::Int),
            Column::new("name", DataType::Str),
        ])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::str(format!("row{}", i % 3)),
                ])
            })
            .collect()
    }

    #[test]
    fn q_error_metric() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        // Floored at one row on both sides: an estimate of 0.3 for 0 actual rows is
        // treated as 1-vs-1.
        assert_eq!(q_error(0.3, 0.0), 1.0);
        assert!(q_error(f64::INFINITY, 10.0).is_finite());
    }

    #[test]
    fn basic_statistics_match_seed_behaviour() {
        let rows = rows(100);
        let stats = TableStatistics::basic(&schema(), &rows);
        assert_eq!(stats.row_count, 100);
        assert!(!stats.analyzed);
        assert_eq!(stats.distinct_count("k"), 100);
        assert_eq!(stats.distinct_count("grp"), 4);
        assert_eq!(stats.distinct_count("nosuch"), 100);
        assert!(stats.column("grp").unwrap().histogram.is_none());
    }

    #[test]
    fn analyzed_statistics_add_histograms_and_mcvs() {
        let rows = rows(1000);
        let stats = TableStatistics::analyzed(&schema(), &rows, &AnalyzeConfig::default());
        assert!(stats.analyzed);
        assert_eq!(stats.sampled_rows, 1000, "small tables sample everything");
        let k = stats.column("k").unwrap();
        let hist = k.histogram.as_ref().expect("numeric column histogram");
        assert_eq!(k.min, Some(0.0));
        assert_eq!(k.max, Some(999.0));
        // Range selectivity of k < 100 ≈ 10%.
        let sel = k.range_selectivity(None, Some((99.0, true))).unwrap();
        assert!((sel - 0.1).abs() < 0.05, "sel {sel} hist {hist:?}");
        // grp has 4 heavy values → all MCVs, each ≈ 25%.
        let grp = stats.column("grp").unwrap();
        assert_eq!(grp.mcvs.len(), 4);
        let eq = grp.equality_selectivity(&Value::Int(1)).unwrap();
        assert!((eq - 0.25).abs() < 0.05, "eq {eq}");
        // Strings get MCVs but no histogram.
        let name = stats.column("name").unwrap();
        assert!(name.histogram.is_none());
        assert!(!name.mcvs.is_empty());
    }

    #[test]
    fn equality_falls_back_to_rest_mass_for_non_mcvs() {
        // A heavy hitter plus a uniform tail: the tail values' estimated selectivity
        // comes from the non-MCV mass spread over the remaining distinct count.
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let mut data: Vec<Row> = vec![Row::new(vec![Value::Int(7)]); 500];
        data.extend((0..500).map(|i| Row::new(vec![Value::Int(1000 + i)])));
        let stats = TableStatistics::analyzed(&schema, &data, &AnalyzeConfig::default());
        let v = stats.column("v").unwrap();
        let heavy = v.equality_selectivity(&Value::Int(7)).unwrap();
        assert!((heavy - 0.5).abs() < 0.05, "heavy {heavy}");
        let tail = v.equality_selectivity(&Value::Int(1001)).unwrap();
        assert!(tail < 0.01, "tail {tail}");
        assert_eq!(v.equality_selectivity(&Value::Null), Some(0.0));
        // Values outside the sampled domain estimate ~0 (the rest-mass model can't).
        let outside = v.equality_selectivity(&Value::Int(9_999_999)).unwrap();
        assert_eq!(outside, 0.0, "out-of-domain equality must estimate zero");
    }

    #[test]
    fn null_fractions_scale_selectivities() {
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let mut data: Vec<Row> = (0..500).map(|i| Row::new(vec![Value::Int(i)])).collect();
        data.extend((0..500).map(|_| Row::new(vec![Value::Null])));
        let stats = TableStatistics::analyzed(&schema, &data, &AnalyzeConfig::default());
        let v = stats.column("v").unwrap();
        assert!((v.null_fraction - 0.5).abs() < 1e-9);
        // The whole non-null domain is half the rows.
        let all = v.range_selectivity(None, None).unwrap();
        assert!((all - 0.5).abs() < 0.01, "all {all}");
    }

    #[test]
    fn reservoir_sampling_is_deterministic_and_uniformish() {
        let rows: Vec<Row> = (0..10_000).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let a = reservoir_sample(&rows, 1000, 42);
        let b = reservoir_sample(&rows, 1000, 42);
        assert_eq!(a, b, "same seed, same sample");
        assert_eq!(a.len(), 1000);
        // A uniform sample's mean index should be near the middle.
        let mean: f64 =
            a.iter().map(|r| r.get(0).as_float().unwrap()).sum::<f64>() / a.len() as f64;
        assert!((mean - 5000.0).abs() < 600.0, "mean {mean}");
    }

    #[test]
    fn empty_table_statistics_are_sane() {
        let stats = TableStatistics::analyzed(&schema(), &[], &AnalyzeConfig::default());
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.distinct_count("k"), 1);
        assert!(stats.column("k").unwrap().histogram.is_none());
    }

    #[test]
    fn single_shard_merge_is_byte_identical_to_direct_stats() {
        let rows = rows(1000);
        let schema = schema();
        let config = AnalyzeConfig::default();
        // Basic tier.
        let shard = ShardStatistics::basic(&schema, &rows);
        let merged = ShardStatistics::merge(&schema, &[&shard], None);
        assert_eq!(merged, TableStatistics::basic(&schema, &rows));
        // ANALYZE tier (shard 0 draws with the unsharded seed).
        let shard = ShardStatistics::analyzed(&schema, &rows, &config, 0);
        let merged = ShardStatistics::merge(&schema, &[&shard], Some(&config));
        assert_eq!(merged, TableStatistics::analyzed(&schema, &rows, &config));
    }

    #[test]
    fn multi_shard_merge_matches_direct_stats_under_the_sample_cap() {
        // Each shard samples itself whole when under the reservoir cap, and the
        // concatenation preserves insertion order — so the merged statistics are
        // byte-identical to the unsharded ANALYZE, exact distinct counts included.
        let rows = rows(1000);
        let schema = schema();
        let config = AnalyzeConfig::default();
        let shards: Vec<ShardStatistics> = rows
            .chunks(250)
            .enumerate()
            .map(|(i, chunk)| ShardStatistics::analyzed(&schema, chunk, &config, i as u64))
            .collect();
        let refs: Vec<&ShardStatistics> = shards.iter().collect();
        let merged = ShardStatistics::merge(&schema, &refs, Some(&config));
        assert_eq!(merged, TableStatistics::analyzed(&schema, &rows, &config));
    }

    #[test]
    fn oversized_merged_samples_are_downsampled_to_the_cap() {
        let rows = rows(1000);
        let schema = schema();
        let config = AnalyzeConfig {
            sample_size: 100,
            ..AnalyzeConfig::default()
        };
        let shards: Vec<ShardStatistics> = rows
            .chunks(250)
            .enumerate()
            .map(|(i, chunk)| ShardStatistics::analyzed(&schema, chunk, &config, i as u64))
            .collect();
        let refs: Vec<&ShardStatistics> = shards.iter().collect();
        let merged = ShardStatistics::merge(&schema, &refs, Some(&config));
        assert_eq!(merged.sampled_rows, 100);
        assert_eq!(merged.row_count, 1000);
        assert_eq!(
            merged.distinct_count("k"),
            1000,
            "distinct counts stay exact"
        );
    }

    #[test]
    fn shard_pruning_bounds_cover_the_boundary_cases() {
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let rows: Vec<Row> = (10..=20).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let s = ShardStatistics::basic(&schema, &rows);
        // Overlapping and touching intervals keep the shard.
        assert!(s.may_contain_in_range("v", None, None));
        assert!(s.may_contain_in_range("v", Some((20.0, true)), None));
        assert!(s.may_contain_in_range("v", None, Some((10.0, true))));
        assert!(s.may_contain_in_range("v", Some((15.0, true)), Some((15.0, true))));
        // Disjoint intervals prune; exclusive bounds prune at the exact boundary.
        assert!(!s.may_contain_in_range("v", Some((21.0, true)), None));
        assert!(!s.may_contain_in_range("v", Some((20.0, false)), None));
        assert!(!s.may_contain_in_range("v", None, Some((9.0, true))));
        assert!(!s.may_contain_in_range("v", None, Some((10.0, false))));
        // Unknown columns never prune.
        assert!(s.may_contain_in_range("nosuch", Some((99.0, true)), None));

        // min == max (constant shard): equality prunes on either side, keeps on match.
        let constant = ShardStatistics::basic(&schema, &vec![Row::new(vec![Value::Int(5)]); 3]);
        assert!(constant.may_contain_in_range("v", Some((5.0, true)), Some((5.0, true))));
        assert!(!constant.may_contain_in_range("v", Some((6.0, true)), Some((6.0, true))));
        assert!(!constant.may_contain_in_range("v", Some((5.0, false)), None));

        // All-NULL shards prune every range/equality predicate.
        let nulls = ShardStatistics::basic(&schema, &vec![Row::new(vec![Value::Null]); 4]);
        assert!(!nulls.may_contain_in_range("v", None, Some((100.0, true))));
        assert!(!nulls.may_contain_in_range("v", None, None));

        // Empty shards are conservatively kept (nothing to win by pruning them).
        let empty = ShardStatistics::basic(&schema, &[]);
        assert!(empty.may_contain_in_range("v", Some((1.0, true)), None));

        // Non-numeric columns (no min/max) are kept.
        let sschema = Schema::new(vec![Column::new("s", DataType::Str)]);
        let strs = ShardStatistics::basic(&sschema, &[Row::new(vec!["a".into()])]);
        assert!(strs.may_contain_in_range("s", Some((1.0, true)), None));
    }
}
