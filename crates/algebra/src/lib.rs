//! Relational algebra with the paper's extended `Apply` operators.
//!
//! This crate defines the *logical* representation everything else works on:
//!
//! * [`expr::ScalarExpr`] — scalar expressions: literals, column references, parameters
//!   (the paper's correlation variables / UDF formal parameters), arithmetic,
//!   comparisons, `CASE` (the paper's conditional expressions `(p1?e1 : … : en)`),
//!   scalar subqueries, UDF invocations and aggregate calls.
//! * [`plan::RelExpr`] — relational operators: the `Single` relation, scans, selection,
//!   generalized projection (with and without duplicate elimination), group-by, joins,
//!   unions, sorting, limit, rename, **and the Apply family**: `Apply` with the *bind*
//!   extension, `ApplyMerge` (AM) and `ConditionalApplyMerge` (AMC) from Section III of
//!   the paper.
//! * [`schema::SchemaProvider`] and schema inference for every operator.
//! * [`visit`] — recursive traversal / rewrite helpers, free-variable analysis and
//!   parameter substitution used by the transformation rules.
//! * [`display`] — indented EXPLAIN-style rendering of plans (the expression trees shown
//!   in the paper's Figures 1–8).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod display;
pub mod expr;
pub mod plan;
pub mod schema;
pub mod visit;

pub use builder::PlanBuilder;
pub use expr::{AggCall, AggFunc, BinaryOp, ColumnRef, ScalarExpr, UnaryOp};
pub use plan::{ApplyKind, JoinKind, MergeAssignment, ParamBinding, ProjectItem, RelExpr, SortKey};
pub use schema::{infer_schema, EmptyProvider, MapProvider, SchemaMemo, SchemaProvider};
