//! Scalar expressions.

use std::fmt;

use decorr_common::{normalize_ident, DataType, Value};

use crate::plan::RelExpr;

/// A (possibly qualified) reference to a column of some relation in scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Optional relation qualifier (`orders` in `orders.custkey`).
    pub qualifier: Option<String>,
    /// The column name, normalised.
    pub name: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn new(name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: None,
            name: normalize_ident(&name.into()),
        }
    }

    /// A qualifier-scoped reference.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: Some(normalize_ident(&qualifier.into())),
            name: normalize_ident(&name.into()),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Binary operators (arithmetic, comparison, logical, string concatenation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||`
    Concat,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// True for comparison operators whose result is a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for AND / OR.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// SQL rendering of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL`.
    IsNull,
    /// `IS NOT NULL`.
    IsNotNull,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Not => "NOT",
            UnaryOp::Neg => "-",
            UnaryOp::IsNull => "IS NULL",
            UnaryOp::IsNotNull => "IS NOT NULL",
        };
        write!(f, "{s}")
    }
}

/// Built-in and user-defined aggregate functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(expr)` — non-null values.
    Count,
    /// `count(*)` — counts rows rather than non-null values.
    CountStar,
    /// `sum(expr)`.
    Sum,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// `avg(expr)`.
    Avg,
    /// A user-defined aggregate, looked up by name in the function registry. These are
    /// produced by the cursor-loop algebraization of Section VII (the paper's
    /// `aux-agg()` of Example 6).
    UserDefined(String),
}

impl AggFunc {
    /// The SQL name of the aggregate.
    pub fn name(&self) -> String {
        match self {
            AggFunc::Count => "count".into(),
            AggFunc::CountStar => "count".into(),
            AggFunc::Sum => "sum".into(),
            AggFunc::Min => "min".into(),
            AggFunc::Max => "max".into(),
            AggFunc::Avg => "avg".into(),
            AggFunc::UserDefined(n) => n.clone(),
        }
    }

    /// The value the aggregate produces over an empty input. `COUNT` yields 0; all other
    /// built-ins yield NULL. User-defined aggregates yield their initialised state, which
    /// the executor resolves from the registry (NULL here as a placeholder).
    pub fn empty_value(&self) -> Value {
        match self {
            AggFunc::Count | AggFunc::CountStar => Value::Int(0),
            _ => Value::Null,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => write!(f, "count(*)"),
            other => write!(f, "{}", other.name()),
        }
    }
}

/// A single aggregate computation inside an [`RelExpr::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expressions evaluated against the aggregate's input. Empty for
    /// `count(*)`; user-defined aggregates may take several arguments.
    pub args: Vec<ScalarExpr>,
    /// `agg(distinct expr)` — deduplicate the argument values first.
    pub distinct: bool,
    /// Output column name.
    pub alias: String,
}

impl AggCall {
    /// A non-distinct aggregate call.
    pub fn new(func: AggFunc, args: Vec<ScalarExpr>, alias: impl Into<String>) -> AggCall {
        AggCall {
            func,
            args,
            distinct: false,
            alias: normalize_ident(&alias.into()),
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args = if matches!(self.func, AggFunc::CountStar) {
            "*".to_string()
        } else {
            self.args
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let distinct = if self.distinct { "distinct " } else { "" };
        write!(
            f,
            "{}({}{}) as {}",
            self.func.name(),
            distinct,
            args,
            self.alias
        )
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A constant.
    Literal(Value),
    /// A reference to a column of a relation in scope (possibly an *outer* relation,
    /// which is what makes an expression correlated).
    Column(ColumnRef),
    /// A named parameter: a UDF formal parameter, a UDF local variable, or a correlation
    /// variable introduced by the Apply *bind* extension (`:ckey` in the paper's
    /// examples).
    Param(String),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<ScalarExpr>,
    },
    /// Conditional expression `(p1?e1 : p2?e2 : … : en)` — SQL `CASE WHEN`.
    Case {
        /// `(condition, result)` pairs, tested in order.
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        /// Result when no branch matches (NULL when absent).
        else_expr: Option<Box<ScalarExpr>>,
    },
    /// Explicit cast.
    Cast {
        /// The expression being cast.
        expr: Box<ScalarExpr>,
        /// The target type.
        data_type: DataType,
    },
    /// `coalesce(e1, e2, …)` — first non-null argument.
    Coalesce(Vec<ScalarExpr>),
    /// A scalar subquery `(select …)`: must produce at most one row and one column.
    ScalarSubquery(Box<RelExpr>),
    /// `EXISTS (select …)`.
    Exists(Box<RelExpr>),
    /// `expr IN (select …)`.
    InSubquery {
        /// The probe expression.
        expr: Box<ScalarExpr>,
        /// The one-column subquery providing the membership set.
        subquery: Box<RelExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// Invocation of a scalar user-defined function. Evaluated by the interpreter when
    /// executed directly (the paper's iterative plan); removed by the decorrelation
    /// rewrite when possible.
    UdfCall {
        /// Registered UDF name, normalised.
        name: String,
        /// Argument expressions, in formal-parameter order.
        args: Vec<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// An unqualified column reference.
    pub fn column(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Column(ColumnRef::new(name))
    }

    /// A qualified column reference.
    pub fn qualified_column(q: impl Into<String>, name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Column(ColumnRef::qualified(q, name))
    }

    /// A constant.
    pub fn literal(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// A named parameter reference.
    pub fn param(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Param(normalize_ident(&name.into()))
    }

    /// The NULL literal.
    pub fn null() -> ScalarExpr {
        ScalarExpr::Literal(Value::Null)
    }

    /// A binary operation.
    pub fn binary(op: BinaryOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `left = right`.
    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Eq, left, right)
    }

    /// `left > right`.
    pub fn gt(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Gt, left, right)
    }

    /// `left < right`.
    pub fn lt(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Lt, left, right)
    }

    /// `left AND right`.
    pub fn and(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::And, left, right)
    }

    /// `left OR right`.
    pub fn or(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinaryOp::Or, left, right)
    }

    #[allow(clippy::should_implement_trait)]
    /// Logical negation.
    pub fn not(expr: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(expr),
        }
    }

    /// A scalar UDF invocation.
    pub fn udf(name: impl Into<String>, args: Vec<ScalarExpr>) -> ScalarExpr {
        ScalarExpr::UdfCall {
            name: normalize_ident(&name.into()),
            args,
        }
    }

    /// Conjunction of a list of predicates (`true` when empty).
    pub fn conjunction(mut preds: Vec<ScalarExpr>) -> ScalarExpr {
        match preds.len() {
            0 => ScalarExpr::Literal(Value::Bool(true)),
            1 => preds.pop().unwrap(),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().unwrap();
                it.fold(first, ScalarExpr::and)
            }
        }
    }

    /// Splits a predicate into its top-level AND-ed conjuncts.
    pub fn split_conjuncts(&self) -> Vec<ScalarExpr> {
        match self {
            ScalarExpr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                let mut v = left.split_conjuncts();
                v.extend(right.split_conjuncts());
                v
            }
            other => vec![other.clone()],
        }
    }

    /// True if the expression is the boolean literal TRUE.
    pub fn is_true_literal(&self) -> bool {
        matches!(self, ScalarExpr::Literal(Value::Bool(true)))
    }

    /// Returns the children of this expression (not descending into subquery plans).
    pub fn children(&self) -> Vec<&ScalarExpr> {
        match self {
            ScalarExpr::Literal(_)
            | ScalarExpr::Column(_)
            | ScalarExpr::Param(_)
            | ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists(_) => vec![],
            ScalarExpr::Binary { left, right, .. } => vec![left, right],
            ScalarExpr::Unary { expr, .. } => vec![expr],
            ScalarExpr::Cast { expr, .. } => vec![expr],
            ScalarExpr::Coalesce(args) => args.iter().collect(),
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                let mut v: Vec<&ScalarExpr> = vec![];
                for (p, e) in branches {
                    v.push(p);
                    v.push(e);
                }
                if let Some(e) = else_expr {
                    v.push(e);
                }
                v
            }
            ScalarExpr::InSubquery { expr, .. } => vec![expr],
            ScalarExpr::UdfCall { args, .. } => args.iter().collect(),
        }
    }

    /// Calls `f` on each immediate child expression without allocating — the hot-path
    /// form of [`ScalarExpr::children`] for traversals that run per plan node (the
    /// static validator, free-variable analysis).
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a ScalarExpr)) {
        match self {
            ScalarExpr::Literal(_)
            | ScalarExpr::Column(_)
            | ScalarExpr::Param(_)
            | ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                f(left);
                f(right);
            }
            ScalarExpr::Unary { expr, .. } | ScalarExpr::Cast { expr, .. } => f(expr),
            ScalarExpr::Coalesce(args) => args.iter().for_each(f),
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                for (p, e) in branches {
                    f(p);
                    f(e);
                }
                if let Some(e) = else_expr {
                    f(e);
                }
            }
            ScalarExpr::InSubquery { expr, .. } => f(expr),
            ScalarExpr::UdfCall { args, .. } => args.iter().for_each(f),
        }
    }

    /// True if the expression (not descending into subqueries) contains any UDF call.
    pub fn contains_udf_call(&self) -> bool {
        if matches!(self, ScalarExpr::UdfCall { .. }) {
            return true;
        }
        self.children().iter().any(|c| c.contains_udf_call())
    }

    /// True if the expression contains a subquery (scalar, EXISTS or IN).
    pub fn contains_subquery(&self) -> bool {
        match self {
            ScalarExpr::ScalarSubquery(_)
            | ScalarExpr::Exists(_)
            | ScalarExpr::InSubquery { .. } => true,
            other => other.children().iter().any(|c| c.contains_subquery()),
        }
    }

    /// Collects the names of all [`ScalarExpr::Param`]s appearing in the expression
    /// (not descending into subquery plans — use [`crate::visit::free_params`] for
    /// whole-plan analysis).
    pub fn collect_params(&self, out: &mut Vec<String>) {
        if let ScalarExpr::Param(p) = self {
            if !out.contains(p) {
                out.push(p.clone());
            }
        }
        for c in self.children() {
            c.collect_params(out);
        }
    }

    /// Collects all column references appearing directly in the expression.
    pub fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        if let ScalarExpr::Column(c) = self {
            if !out.contains(c) {
                out.push(c.clone());
            }
        }
        for c in self.children() {
            c.collect_columns(out);
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Param(p) => write!(f, ":{p}"),
            ScalarExpr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::IsNull | UnaryOp::IsNotNull => write!(f, "({expr} {op})"),
                _ => write!(f, "({op} {expr})"),
            },
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "case")?;
                for (p, e) in branches {
                    write!(f, " when {p} then {e}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " else {e}")?;
                }
                write!(f, " end")
            }
            ScalarExpr::Cast { expr, data_type } => write!(f, "cast({expr} as {data_type})"),
            ScalarExpr::Coalesce(args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "coalesce({})", parts.join(", "))
            }
            ScalarExpr::ScalarSubquery(_) => write!(f, "(<scalar subquery>)"),
            ScalarExpr::Exists(_) => write!(f, "exists(<subquery>)"),
            ScalarExpr::InSubquery { expr, negated, .. } => {
                write!(
                    f,
                    "{expr} {}in (<subquery>)",
                    if *negated { "not " } else { "" }
                )
            }
            ScalarExpr::UdfCall { name, args } => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_roundtrip() {
        let a = ScalarExpr::eq(ScalarExpr::column("x"), ScalarExpr::literal(1));
        let b = ScalarExpr::gt(ScalarExpr::column("y"), ScalarExpr::literal(2));
        let c = ScalarExpr::lt(ScalarExpr::column("z"), ScalarExpr::literal(3));
        let conj = ScalarExpr::conjunction(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(conj.split_conjuncts(), vec![a, b, c]);
        assert!(ScalarExpr::conjunction(vec![]).is_true_literal());
    }

    #[test]
    fn collect_params_dedups() {
        let e = ScalarExpr::and(
            ScalarExpr::eq(ScalarExpr::param("ckey"), ScalarExpr::column("custkey")),
            ScalarExpr::gt(ScalarExpr::param("ckey"), ScalarExpr::param("other")),
        );
        let mut params = vec![];
        e.collect_params(&mut params);
        assert_eq!(params, vec!["ckey".to_string(), "other".to_string()]);
    }

    #[test]
    fn contains_udf_call_nested() {
        let e = ScalarExpr::binary(
            BinaryOp::Mul,
            ScalarExpr::udf("discount", vec![ScalarExpr::column("totalprice")]),
            ScalarExpr::literal(2),
        );
        assert!(e.contains_udf_call());
        assert!(!ScalarExpr::column("x").contains_udf_call());
    }

    #[test]
    fn display_case() {
        let e = ScalarExpr::Case {
            branches: vec![(
                ScalarExpr::gt(ScalarExpr::column("tb"), ScalarExpr::literal(1000000)),
                ScalarExpr::literal("Platinum"),
            )],
            else_expr: Some(Box::new(ScalarExpr::literal("Regular"))),
        };
        assert_eq!(
            e.to_string(),
            "case when (tb > 1000000) then 'Platinum' else 'Regular' end"
        );
    }

    #[test]
    fn display_param_and_udf() {
        let e = ScalarExpr::udf("service_level", vec![ScalarExpr::param("CKey")]);
        assert_eq!(e.to_string(), "service_level(:ckey)");
    }
}
