//! Logical relational operators, including the paper's extended Apply operators.

use std::fmt;

use decorr_common::{normalize_ident, Schema, Value};

use crate::expr::{AggCall, ColumnRef, ScalarExpr};

/// Join types. `LeftSemi` / `LeftAnti` correspond to the paper's semijoin (⋉) and
/// antijoin annotations of the Apply operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    LeftOuter,
    /// Left semijoin ⋉.
    LeftSemi,
    /// Left antijoin.
    LeftAnti,
    /// Cross product.
    Cross,
}

impl JoinKind {
    /// True if the join only returns columns of its left input.
    pub fn left_only(&self) -> bool {
        matches!(self, JoinKind::LeftSemi | JoinKind::LeftAnti)
    }
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "inner",
            JoinKind::LeftOuter => "left outer",
            JoinKind::LeftSemi => "left semi",
            JoinKind::LeftAnti => "left anti",
            JoinKind::Cross => "cross",
        };
        write!(f, "{s}")
    }
}

/// The join annotation of an Apply operator: one of cross product (the default), left
/// outer join, left semijoin and left antijoin — exactly the four variants of
/// Galindo-Legaria & Joshi used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyKind {
    /// `A×` — cross-product annotation.
    Cross,
    /// `A⟕` — left-outer annotation.
    LeftOuter,
    /// `A⋉` — semijoin annotation.
    LeftSemi,
    /// `A▷` — antijoin annotation.
    LeftAnti,
}

impl ApplyKind {
    /// The join kind this Apply turns into when the inner expression is uncorrelated
    /// (rule K1).
    pub fn to_join_kind(&self) -> JoinKind {
        match self {
            ApplyKind::Cross => JoinKind::Cross,
            ApplyKind::LeftOuter => JoinKind::LeftOuter,
            ApplyKind::LeftSemi => JoinKind::LeftSemi,
            ApplyKind::LeftAnti => JoinKind::LeftAnti,
        }
    }

    /// True if the Apply only returns columns of its left input.
    pub fn left_only(&self) -> bool {
        matches!(self, ApplyKind::LeftSemi | ApplyKind::LeftAnti)
    }
}

impl fmt::Display for ApplyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ApplyKind::Cross => "cross",
            ApplyKind::LeftOuter => "left outer",
            ApplyKind::LeftSemi => "left semi",
            ApplyKind::LeftAnti => "left anti",
        };
        write!(f, "{s}")
    }
}

/// One item of a generalized projection: an expression with an optional output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectItem {
    /// The projected expression.
    pub expr: ScalarExpr,
    /// Output alias (`expr AS alias`).
    pub alias: Option<String>,
}

impl ProjectItem {
    /// An unaliased item.
    pub fn new(expr: ScalarExpr) -> ProjectItem {
        ProjectItem { expr, alias: None }
    }

    /// An aliased item.
    pub fn aliased(expr: ScalarExpr, alias: impl Into<String>) -> ProjectItem {
        ProjectItem {
            expr,
            alias: Some(normalize_ident(&alias.into())),
        }
    }

    /// The output column name of this item: the alias if given, otherwise the column
    /// name for plain column references, otherwise a positional name.
    pub fn output_name(&self, position: usize) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            ScalarExpr::Column(c) => c.name.clone(),
            ScalarExpr::Param(p) => p.clone(),
            _ => format!("col{position}"),
        }
    }
}

impl fmt::Display for ProjectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} as {a}", self.expr),
            None => write!(f, "{}", self.expr),
        }
    }
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The key expression.
    pub expr: ScalarExpr,
    /// `ASC` (true) or `DESC`.
    pub ascending: bool,
}

/// A parameter binding of the Apply *bind* extension: formal parameter name and the
/// actual-argument expression evaluated against the outer (left) input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBinding {
    /// The formal parameter being bound.
    pub param: String,
    /// The actual argument, evaluated against the outer tuple.
    pub value: ScalarExpr,
}

impl ParamBinding {
    /// A binding `param=value`.
    pub fn new(param: impl Into<String>, value: ScalarExpr) -> ParamBinding {
        ParamBinding {
            param: normalize_ident(&param.into()),
            value,
        }
    }
}

impl fmt::Display for ParamBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.param, self.value)
    }
}

/// An assignment `left_attr = right_attr` of the Apply-Merge extension.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeAssignment {
    /// Attribute of the left (outer) input being assigned to.
    pub target: String,
    /// Attribute of the right (inner) result providing the value.
    pub source: String,
}

impl MergeAssignment {
    /// An assignment `target=source`.
    pub fn new(target: impl Into<String>, source: impl Into<String>) -> MergeAssignment {
        MergeAssignment {
            target: normalize_ident(&target.into()),
            source: normalize_ident(&source.into()),
        }
    }
}

impl fmt::Display for MergeAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.target, self.source)
    }
}

/// A logical relational expression (plan tree).
#[derive(Debug, Clone, PartialEq)]
pub enum RelExpr {
    /// The Single relation `S`: one empty tuple and no attributes (Section III). Used to
    /// return scalar constants or computed values as relations.
    Single,
    /// Base table scan, optionally aliased.
    Scan {
        /// The stored table name.
        table: String,
        /// Optional alias re-qualifying the output columns.
        alias: Option<String>,
    },
    /// An inline relation of literal rows (used for VALUES lists and unit tests).
    Values {
        /// Column names and types of the literal relation.
        schema: Schema,
        /// The literal rows; each must match the schema's arity.
        rows: Vec<Vec<Value>>,
    },
    /// Selection σ.
    Select {
        /// The filtered input.
        input: Box<RelExpr>,
        /// The filter predicate.
        predicate: ScalarExpr,
    },
    /// Generalized projection Π (`distinct = true`) / Πd (`distinct = false`,
    /// "projection without duplicate removal", Section III).
    Project {
        /// The projected input.
        input: Box<RelExpr>,
        /// The output expressions.
        items: Vec<ProjectItem>,
        /// Whether duplicates are eliminated (Π vs Πd).
        distinct: bool,
    },
    /// Group-by / aggregation  `a1,…,an G f1(),…,fm()`.
    Aggregate {
        /// The grouped input.
        input: Box<RelExpr>,
        /// Grouping expressions (empty for a scalar aggregate).
        group_by: Vec<ScalarExpr>,
        /// The aggregate computations.
        aggregates: Vec<AggCall>,
    },
    /// Join of two independent inputs.
    Join {
        /// Left input.
        left: Box<RelExpr>,
        /// Right input.
        right: Box<RelExpr>,
        /// The join type.
        kind: JoinKind,
        /// Join predicate; `None` for a pure cross product.
        condition: Option<ScalarExpr>,
    },
    /// Bag or set union.
    Union {
        /// Left input.
        left: Box<RelExpr>,
        /// Right input (same arity, unifiable column types).
        right: Box<RelExpr>,
        /// `UNION ALL` (bag) vs `UNION` (set).
        all: bool,
    },
    /// Sort.
    Sort {
        /// The sorted input.
        input: Box<RelExpr>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Row limit (SQL `TOP n` / `LIMIT n`) — used by the experiments to vary the number
    /// of UDF invocations.
    Limit {
        /// The limited input.
        input: Box<RelExpr>,
        /// Maximum number of rows returned.
        limit: usize,
    },
    /// Rename operator ρ: re-qualifies every output column with a new relation alias.
    Rename {
        /// The renamed input.
        input: Box<RelExpr>,
        /// The new relation alias.
        alias: String,
    },
    /// The Apply operator `E0 A⊗ E1` with the *bind* extension (Section III). For every
    /// tuple of `left` the `right` expression is evaluated with the tuple's attributes in
    /// scope and with each bind parameter set to its actual-argument value.
    Apply {
        /// The outer input.
        left: Box<RelExpr>,
        /// The parameterised inner expression.
        right: Box<RelExpr>,
        /// The join annotation ⊗.
        kind: ApplyKind,
        /// Parameter bindings (`bind: p1=a1, …, pn=an`); empty for a plain Apply.
        bindings: Vec<ParamBinding>,
    },
    /// Apply-Merge `r AM(L) e(r)` (Section III): evaluates the single-tuple expression
    /// `right` per outer tuple and assigns selected result attributes back into the
    /// outer tuple. An empty assignment list means "merge all common attributes".
    ApplyMerge {
        /// The outer input.
        left: Box<RelExpr>,
        /// The single-tuple inner expression.
        right: Box<RelExpr>,
        /// Explicit assignment list; empty means "merge all common attributes".
        assignments: Vec<MergeAssignment>,
    },
    /// Conditional Apply-Merge `r AMC(p, et, ef)` (Section III): models assignments
    /// inside if-then-else blocks. Evaluates `predicate` per outer tuple and merges the
    /// result of `then_branch` or `else_branch` accordingly.
    ConditionalApplyMerge {
        /// The outer input.
        left: Box<RelExpr>,
        /// The branch condition, evaluated per outer tuple.
        predicate: ScalarExpr,
        /// Branch merged when the predicate holds.
        then_branch: Box<RelExpr>,
        /// Branch merged otherwise.
        else_branch: Box<RelExpr>,
        /// Explicit assignment list; empty means "merge all common attributes".
        assignments: Vec<MergeAssignment>,
    },
}

impl RelExpr {
    /// An unaliased base-table scan.
    pub fn scan(table: impl Into<String>) -> RelExpr {
        RelExpr::Scan {
            table: normalize_ident(&table.into()),
            alias: None,
        }
    }

    /// An aliased base-table scan.
    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> RelExpr {
        RelExpr::Scan {
            table: normalize_ident(&table.into()),
            alias: Some(normalize_ident(&alias.into())),
        }
    }

    /// The operator's immediate relational children (subqueries inside scalar
    /// expressions are *not* included; see [`crate::visit`]).
    pub fn children(&self) -> Vec<&RelExpr> {
        match self {
            RelExpr::Single | RelExpr::Scan { .. } | RelExpr::Values { .. } => vec![],
            RelExpr::Select { input, .. }
            | RelExpr::Project { input, .. }
            | RelExpr::Aggregate { input, .. }
            | RelExpr::Sort { input, .. }
            | RelExpr::Limit { input, .. }
            | RelExpr::Rename { input, .. } => vec![input],
            RelExpr::Join { left, right, .. }
            | RelExpr::Union { left, right, .. }
            | RelExpr::Apply { left, right, .. }
            | RelExpr::ApplyMerge { left, right, .. } => vec![left, right],
            RelExpr::ConditionalApplyMerge {
                left,
                then_branch,
                else_branch,
                ..
            } => vec![left, then_branch, else_branch],
        }
    }

    /// Rebuilds the operator with new children (in the same order as
    /// [`RelExpr::children`]). Panics if the number of children does not match.
    pub fn with_new_children(&self, mut children: Vec<RelExpr>) -> RelExpr {
        let expected = self.children().len();
        assert_eq!(
            children.len(),
            expected,
            "with_new_children: expected {expected} children"
        );
        let mut next = || Box::new(children.remove(0));
        match self {
            RelExpr::Single | RelExpr::Scan { .. } | RelExpr::Values { .. } => self.clone(),
            RelExpr::Select { predicate, .. } => RelExpr::Select {
                input: next(),
                predicate: predicate.clone(),
            },
            RelExpr::Project {
                items, distinct, ..
            } => RelExpr::Project {
                input: next(),
                items: items.clone(),
                distinct: *distinct,
            },
            RelExpr::Aggregate {
                group_by,
                aggregates,
                ..
            } => RelExpr::Aggregate {
                input: next(),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
            RelExpr::Sort { keys, .. } => RelExpr::Sort {
                input: next(),
                keys: keys.clone(),
            },
            RelExpr::Limit { limit, .. } => RelExpr::Limit {
                input: next(),
                limit: *limit,
            },
            RelExpr::Rename { alias, .. } => RelExpr::Rename {
                input: next(),
                alias: alias.clone(),
            },
            RelExpr::Join {
                kind, condition, ..
            } => RelExpr::Join {
                left: next(),
                right: next(),
                kind: *kind,
                condition: condition.clone(),
            },
            RelExpr::Union { all, .. } => RelExpr::Union {
                left: next(),
                right: next(),
                all: *all,
            },
            RelExpr::Apply { kind, bindings, .. } => RelExpr::Apply {
                left: next(),
                right: next(),
                kind: *kind,
                bindings: bindings.clone(),
            },
            RelExpr::ApplyMerge { assignments, .. } => RelExpr::ApplyMerge {
                left: next(),
                right: next(),
                assignments: assignments.clone(),
            },
            RelExpr::ConditionalApplyMerge {
                predicate,
                assignments,
                ..
            } => RelExpr::ConditionalApplyMerge {
                left: next(),
                predicate: predicate.clone(),
                then_branch: next(),
                else_branch: next(),
                assignments: assignments.clone(),
            },
        }
    }

    /// Calls `f` on each immediate relational child without allocating — the hot-path
    /// form of [`RelExpr::children`] for traversals that run per node per validation.
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a RelExpr)) {
        match self {
            RelExpr::Single | RelExpr::Scan { .. } | RelExpr::Values { .. } => {}
            RelExpr::Select { input, .. }
            | RelExpr::Project { input, .. }
            | RelExpr::Aggregate { input, .. }
            | RelExpr::Sort { input, .. }
            | RelExpr::Limit { input, .. }
            | RelExpr::Rename { input, .. } => f(input),
            RelExpr::Join { left, right, .. }
            | RelExpr::Union { left, right, .. }
            | RelExpr::Apply { left, right, .. }
            | RelExpr::ApplyMerge { left, right, .. } => {
                f(left);
                f(right);
            }
            RelExpr::ConditionalApplyMerge {
                left,
                then_branch,
                else_branch,
                ..
            } => {
                f(left);
                f(then_branch);
                f(else_branch);
            }
        }
    }

    /// The operator's first relational child, without allocating a children vector.
    pub fn first_child(&self) -> Option<&RelExpr> {
        match self {
            RelExpr::Single | RelExpr::Scan { .. } | RelExpr::Values { .. } => None,
            RelExpr::Select { input, .. }
            | RelExpr::Project { input, .. }
            | RelExpr::Aggregate { input, .. }
            | RelExpr::Sort { input, .. }
            | RelExpr::Limit { input, .. }
            | RelExpr::Rename { input, .. } => Some(input),
            RelExpr::Join { left, .. }
            | RelExpr::Union { left, .. }
            | RelExpr::Apply { left, .. }
            | RelExpr::ApplyMerge { left, .. }
            | RelExpr::ConditionalApplyMerge { left, .. } => Some(left),
        }
    }

    /// Scalar expressions owned directly by this operator (predicates, projection items,
    /// bindings, …).
    pub fn expressions(&self) -> Vec<&ScalarExpr> {
        match self {
            RelExpr::Select { predicate, .. } => vec![predicate],
            RelExpr::Project { items, .. } => items.iter().map(|i| &i.expr).collect(),
            RelExpr::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let mut v: Vec<&ScalarExpr> = group_by.iter().collect();
                for a in aggregates {
                    v.extend(a.args.iter());
                }
                v
            }
            RelExpr::Join { condition, .. } => condition.iter().collect(),
            RelExpr::Sort { keys, .. } => keys.iter().map(|k| &k.expr).collect(),
            RelExpr::Apply { bindings, .. } => bindings.iter().map(|b| &b.value).collect(),
            RelExpr::ConditionalApplyMerge { predicate, .. } => vec![predicate],
            _ => vec![],
        }
    }

    /// Calls `f` on each directly-owned scalar expression without allocating — the
    /// hot-path form of [`RelExpr::expressions`].
    pub fn for_each_expr<'a>(&'a self, f: &mut impl FnMut(&'a ScalarExpr)) {
        match self {
            RelExpr::Select { predicate, .. }
            | RelExpr::ConditionalApplyMerge { predicate, .. } => f(predicate),
            RelExpr::Project { items, .. } => items.iter().for_each(|i| f(&i.expr)),
            RelExpr::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                group_by.iter().for_each(&mut *f);
                for a in aggregates {
                    a.args.iter().for_each(&mut *f);
                }
            }
            RelExpr::Join { condition, .. } => condition.iter().for_each(f),
            RelExpr::Sort { keys, .. } => keys.iter().for_each(|k| f(&k.expr)),
            RelExpr::Apply { bindings, .. } => bindings.iter().for_each(|b| f(&b.value)),
            _ => {}
        }
    }

    /// A short name for the operator, used in plan display and debugging.
    pub fn name(&self) -> &'static str {
        match self {
            RelExpr::Single => "Single",
            RelExpr::Scan { .. } => "Scan",
            RelExpr::Values { .. } => "Values",
            RelExpr::Select { .. } => "Select",
            RelExpr::Project { .. } => "Project",
            RelExpr::Aggregate { .. } => "Aggregate",
            RelExpr::Join { .. } => "Join",
            RelExpr::Union { .. } => "Union",
            RelExpr::Sort { .. } => "Sort",
            RelExpr::Limit { .. } => "Limit",
            RelExpr::Rename { .. } => "Rename",
            RelExpr::Apply { .. } => "Apply",
            RelExpr::ApplyMerge { .. } => "ApplyMerge",
            RelExpr::ConditionalApplyMerge { .. } => "ConditionalApplyMerge",
        }
    }

    /// True if the plan (recursively, including scalar subqueries) contains any of the
    /// extended or plain Apply operators — i.e. decorrelation has not (fully) succeeded.
    pub fn contains_apply(&self) -> bool {
        if matches!(
            self,
            RelExpr::Apply { .. }
                | RelExpr::ApplyMerge { .. }
                | RelExpr::ConditionalApplyMerge { .. }
        ) {
            return true;
        }
        if self.children().iter().any(|c| c.contains_apply()) {
            return true;
        }
        // Descend into subqueries held by scalar expressions.
        fn expr_has_apply(e: &ScalarExpr) -> bool {
            match e {
                ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => q.contains_apply(),
                ScalarExpr::InSubquery { subquery, expr, .. } => {
                    subquery.contains_apply() || expr_has_apply(expr)
                }
                other => other.children().iter().any(|c| expr_has_apply(c)),
            }
        }
        self.expressions().iter().any(|e| expr_has_apply(e))
    }

    /// True if the plan contains any UDF invocation in its scalar expressions.
    pub fn contains_udf_call(&self) -> bool {
        if self.expressions().iter().any(|e| e.contains_udf_call()) {
            return true;
        }
        self.children().iter().any(|c| c.contains_udf_call())
    }

    /// Structural FNV-1a fingerprint of the plan: hashes the derived `Debug`
    /// rendering, which covers every operator, expression, literal and alias in the
    /// tree. The optimizer's plan cache, the executor's per-node cardinality
    /// collector and the runtime feedback store all key on this value, so estimated
    /// and actual row counts for the same (sub)plan can be joined across layers.
    /// Collisions are possible in principle — callers that must rule them out (the
    /// plan cache) additionally compare the keyed plan with `==`.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = decorr_common::FnvHasher::new();
        // Infallible: the hasher's writer never errors.
        let _ = std::fmt::Write::write_fmt(&mut hasher, format_args!("{self:?}"));
        hasher.finish()
    }

    /// Counts operators in the plan tree (not descending into scalar subqueries).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Collects the column references appearing in this operator's own expressions.
    pub fn own_column_refs(&self) -> Vec<ColumnRef> {
        let mut cols = vec![];
        for e in self.expressions() {
            e.collect_columns(&mut cols);
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr as E;

    fn sample_apply() -> RelExpr {
        RelExpr::Apply {
            left: Box::new(RelExpr::scan("customer")),
            right: Box::new(RelExpr::Select {
                input: Box::new(RelExpr::scan("orders")),
                predicate: E::eq(E::column("custkey"), E::param("ckey")),
            }),
            kind: ApplyKind::Cross,
            bindings: vec![ParamBinding::new("ckey", E::column("custkey"))],
        }
    }

    #[test]
    fn children_and_rebuild() {
        let plan = sample_apply();
        let children = plan.children();
        assert_eq!(children.len(), 2);
        let rebuilt = plan.with_new_children(vec![children[0].clone(), children[1].clone()]);
        assert_eq!(rebuilt, plan);
    }

    #[test]
    fn contains_apply_detection() {
        assert!(sample_apply().contains_apply());
        assert!(!RelExpr::scan("customer").contains_apply());
        // Apply hidden inside a scalar subquery is also detected.
        let hidden = RelExpr::Select {
            input: Box::new(RelExpr::scan("t")),
            predicate: E::eq(
                ScalarExpr::ScalarSubquery(Box::new(sample_apply())),
                E::literal(1),
            ),
        };
        assert!(hidden.contains_apply());
    }

    #[test]
    fn node_count_counts_operators() {
        assert_eq!(sample_apply().node_count(), 4);
        assert_eq!(RelExpr::Single.node_count(), 1);
    }

    #[test]
    fn project_item_output_names() {
        assert_eq!(
            ProjectItem::aliased(E::literal(1), "One").output_name(0),
            "one"
        );
        assert_eq!(
            ProjectItem::new(E::column("custkey")).output_name(3),
            "custkey"
        );
        assert_eq!(ProjectItem::new(E::literal(5)).output_name(3), "col3");
    }

    #[test]
    fn apply_kind_join_mapping() {
        assert_eq!(ApplyKind::Cross.to_join_kind(), JoinKind::Cross);
        assert_eq!(ApplyKind::LeftOuter.to_join_kind(), JoinKind::LeftOuter);
        assert!(ApplyKind::LeftSemi.left_only());
    }

    #[test]
    fn udf_call_detection_in_plan() {
        let plan = RelExpr::Project {
            input: Box::new(RelExpr::scan("orders")),
            items: vec![ProjectItem::new(E::udf(
                "discount",
                vec![E::column("totalprice")],
            ))],
            distinct: false,
        };
        assert!(plan.contains_udf_call());
        assert!(!RelExpr::scan("orders").contains_udf_call());
    }
}
