//! Schema inference for logical plans.
//!
//! Types are best-effort: a reference that cannot be resolved (e.g. a correlation
//! variable referring to the outer query, or a parameter bound by an enclosing
//! Apply-bind) infers as [`DataType::Null`] rather than failing, because the
//! transformation rules only need attribute *names* while the executor re-infers types
//! once correlations are in scope.

use std::collections::HashMap;
use std::rc::Rc;

use decorr_common::{normalize_ident, Column, DataType, Error, FnvBuildHasher, Result, Schema};

use crate::expr::{AggFunc, BinaryOp, ScalarExpr, UnaryOp};
use crate::plan::{ApplyKind, JoinKind, ProjectItem, RelExpr};

/// Source of base-table schemas (implemented by the storage catalog; a map-backed
/// implementation is provided for tests).
pub trait SchemaProvider {
    /// Returns the schema of a base table, or a catalog error if it does not exist.
    fn table_schema(&self, table: &str) -> Result<Schema>;

    /// Declared return type of a scalar UDF, if known. Used to type projection items
    /// that still contain UDF invocations.
    fn udf_return_type(&self, _name: &str) -> Option<DataType> {
        None
    }

    /// The value a user-defined aggregate produces over an *empty* input (its initialised
    /// state passed through `terminate`). The scalar-aggregate decorrelation rule uses it
    /// to coalesce NULLs introduced by the outer join so that set-oriented execution
    /// matches iterative execution on empty groups.
    fn aggregate_empty_value(&self, _name: &str) -> Option<decorr_common::Value> {
        None
    }
}

/// A [`SchemaProvider`] with no tables — useful for plans built purely from `Single`,
/// `Values` and projections.
#[derive(Debug, Default, Clone)]
pub struct EmptyProvider;

impl SchemaProvider for EmptyProvider {
    fn table_schema(&self, table: &str) -> Result<Schema> {
        Err(Error::Catalog(format!("unknown table '{table}'")))
    }
}

/// A simple map-backed [`SchemaProvider`] for tests and examples.
#[derive(Debug, Default, Clone)]
pub struct MapProvider {
    tables: HashMap<String, Schema>,
    udf_types: HashMap<String, DataType>,
}

impl MapProvider {
    /// An empty provider.
    pub fn new() -> MapProvider {
        MapProvider::default()
    }

    /// Registers a table schema (builder style).
    pub fn with_table(mut self, name: &str, schema: Schema) -> MapProvider {
        self.tables.insert(normalize_ident(name), schema);
        self
    }

    /// Registers a scalar UDF return type (builder style).
    pub fn with_udf(mut self, name: &str, return_type: DataType) -> MapProvider {
        self.udf_types.insert(normalize_ident(name), return_type);
        self
    }
}

impl SchemaProvider for MapProvider {
    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.tables
            .get(&normalize_ident(table))
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("unknown table '{table}'")))
    }

    fn udf_return_type(&self, name: &str) -> Option<DataType> {
        self.udf_types.get(&normalize_ident(name)).copied()
    }
}

/// Infers the type of a scalar expression against an input schema. Unresolvable
/// references infer as [`DataType::Null`].
pub fn expr_type(expr: &ScalarExpr, input: &Schema, provider: &dyn SchemaProvider) -> DataType {
    SchemaMemo::new().expr_type(expr, input, provider)
}

fn group_by_name(expr: &ScalarExpr, position: usize) -> (Option<String>, String) {
    match expr {
        ScalarExpr::Column(c) => (c.qualifier.clone(), c.name.clone()),
        _ => (None, format!("group{position}")),
    }
}

/// Infers the output schema of a logical plan.
pub fn infer_schema(plan: &RelExpr, provider: &dyn SchemaProvider) -> Result<Schema> {
    SchemaMemo::new()
        .infer(plan, provider)
        .map(|schema| (*schema).clone())
}

/// A per-plan-tree memo for repeated schema inference.
///
/// Schema inference recurses over the whole subtree, so callers that infer schemas at
/// every level of a plan walk (like the static plan validator) pay quadratic work
/// without one. The memo keys on node addresses and hands out [`Rc`]-shared schemas so
/// repeated lookups cost a refcount bump, not a column-vector clone: use one instance
/// per plan tree and drop it before the tree is mutated or freed.
#[derive(Default)]
pub struct SchemaMemo {
    cache: HashMap<*const RelExpr, Result<Rc<Schema>>, FnvBuildHasher>,
}

impl SchemaMemo {
    /// An empty memo.
    pub fn new() -> SchemaMemo {
        SchemaMemo::default()
    }

    /// Memoized [`expr_type`]: subquery schemas resolve through the memo, so typing
    /// many expressions over the same tree does not re-walk shared subqueries.
    pub fn expr_type(
        &mut self,
        expr: &ScalarExpr,
        input: &Schema,
        provider: &dyn SchemaProvider,
    ) -> DataType {
        match expr {
            ScalarExpr::Literal(v) => v.data_type(),
            ScalarExpr::Column(c) => input
                .find(c.qualifier.as_deref(), &c.name)
                .map(|i| input.column(i).data_type)
                .unwrap_or(DataType::Null),
            ScalarExpr::Param(_) => DataType::Null,
            ScalarExpr::Binary { op, left, right } => {
                if op.is_comparison() || op.is_logical() {
                    DataType::Bool
                } else if matches!(op, BinaryOp::Concat) {
                    DataType::Str
                } else {
                    let lt = self.expr_type(left, input, provider);
                    let rt = self.expr_type(right, input, provider);
                    lt.unify(rt).unwrap_or(DataType::Float)
                }
            }
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull => DataType::Bool,
                UnaryOp::Neg => self.expr_type(expr, input, provider),
            },
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                let mut ty = DataType::Null;
                for (_, e) in branches {
                    ty = ty
                        .unify(self.expr_type(e, input, provider))
                        .unwrap_or(DataType::Str);
                }
                if let Some(e) = else_expr {
                    ty = ty.unify(self.expr_type(e, input, provider)).unwrap_or(ty);
                }
                ty
            }
            ScalarExpr::Cast { data_type, .. } => *data_type,
            ScalarExpr::Coalesce(args) => {
                let mut ty = DataType::Null;
                for a in args {
                    ty = ty.unify(self.expr_type(a, input, provider)).unwrap_or(ty);
                }
                ty
            }
            ScalarExpr::ScalarSubquery(q) => self
                .infer(q, provider)
                .ok()
                .and_then(|s| s.columns.first().map(|c| c.data_type))
                .unwrap_or(DataType::Null),
            ScalarExpr::Exists(_) | ScalarExpr::InSubquery { .. } => DataType::Bool,
            ScalarExpr::UdfCall { name, .. } => {
                provider.udf_return_type(name).unwrap_or(DataType::Null)
            }
        }
    }

    fn agg_output_type(
        &mut self,
        func: &AggFunc,
        args: &[ScalarExpr],
        input: &Schema,
        provider: &dyn SchemaProvider,
    ) -> DataType {
        match func {
            AggFunc::Count | AggFunc::CountStar => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => args
                .first()
                .map(|a| self.expr_type(a, input, provider))
                .unwrap_or(DataType::Null),
            AggFunc::UserDefined(name) => provider.udf_return_type(name).unwrap_or(DataType::Null),
        }
    }

    fn project_schema(
        &mut self,
        items: &[ProjectItem],
        input: &Schema,
        provider: &dyn SchemaProvider,
    ) -> Schema {
        let columns = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let name = item.output_name(i);
                let data_type = self.expr_type(&item.expr, input, provider);
                // Plain unaliased column references keep their qualifier so later joins can
                // still disambiguate them.
                let qualifier = match (&item.alias, &item.expr) {
                    (None, ScalarExpr::Column(c)) => c.qualifier.clone().or_else(|| {
                        input
                            .find(None, &c.name)
                            .and_then(|i| input.column(i).qualifier.clone())
                    }),
                    _ => None,
                };
                Column {
                    qualifier,
                    name,
                    data_type,
                    nullable: true,
                }
            })
            .collect();
        Schema::new(columns)
    }

    /// Memoized [`infer_schema`]: each distinct node of the tree is inferred once.
    pub fn infer(&mut self, plan: &RelExpr, provider: &dyn SchemaProvider) -> Result<Rc<Schema>> {
        let key = plan as *const RelExpr;
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let result = self.infer_node(plan, provider);
        self.cache.insert(key, result.clone());
        result
    }

    fn infer_node(&mut self, plan: &RelExpr, provider: &dyn SchemaProvider) -> Result<Rc<Schema>> {
        match plan {
            RelExpr::Single => Ok(Rc::new(Schema::empty())),
            RelExpr::Scan { table, alias } => {
                let schema = provider.table_schema(table)?;
                let qualifier = alias.clone().unwrap_or_else(|| table.clone());
                Ok(Rc::new(schema.with_qualifier(&qualifier)))
            }
            RelExpr::Values { schema, .. } => Ok(Rc::new(schema.clone())),
            RelExpr::Select { input, .. }
            | RelExpr::Sort { input, .. }
            | RelExpr::Limit { input, .. } => self.infer(input, provider),
            RelExpr::Project { input, items, .. } => {
                let input_schema = self.infer(input, provider)?;
                Ok(Rc::new(self.project_schema(items, &input_schema, provider)))
            }
            RelExpr::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let input_schema = self.infer(input, provider)?;
                let mut columns = vec![];
                for (i, g) in group_by.iter().enumerate() {
                    let (qualifier, name) = group_by_name(g, i);
                    columns.push(Column {
                        qualifier,
                        name,
                        data_type: self.expr_type(g, &input_schema, provider),
                        nullable: true,
                    });
                }
                for a in aggregates {
                    columns.push(Column {
                        qualifier: None,
                        name: a.alias.clone(),
                        data_type: self.agg_output_type(&a.func, &a.args, &input_schema, provider),
                        nullable: true,
                    });
                }
                Ok(Rc::new(Schema::new(columns)))
            }
            RelExpr::Join {
                left, right, kind, ..
            } => {
                let l = self.infer(left, provider)?;
                if kind.left_only() {
                    return Ok(l);
                }
                let r = self.infer(right, provider)?;
                let r = if matches!(kind, JoinKind::LeftOuter) {
                    Rc::new(r.as_nullable())
                } else {
                    r
                };
                Ok(Rc::new(l.join(&r)))
            }
            RelExpr::Union { left, .. } => self.infer(left, provider),
            RelExpr::Rename { input, alias } => {
                Ok(Rc::new(self.infer(input, provider)?.with_qualifier(alias)))
            }
            RelExpr::Apply {
                left, right, kind, ..
            } => {
                let l = self.infer(left, provider)?;
                if kind.left_only() {
                    return Ok(l);
                }
                let r = self.infer(right, provider)?;
                let r = if matches!(kind, ApplyKind::LeftOuter) {
                    Rc::new(r.as_nullable())
                } else {
                    r
                };
                Ok(Rc::new(l.join(&r)))
            }
            RelExpr::ApplyMerge {
                left,
                right,
                assignments,
            } => {
                // The output schema is the left schema; assigned attributes take the type of
                // their source attribute in the right schema when it can be resolved.
                let mut l = (*self.infer(left, provider)?).clone();
                let r = self.infer(right, provider)?;
                let assignments = if assignments.is_empty() {
                    // Default: merge all attributes common to both sides.
                    r.columns
                        .iter()
                        .filter(|rc| l.find(None, &rc.name).is_some())
                        .map(|rc| {
                            crate::plan::MergeAssignment::new(rc.name.clone(), rc.name.clone())
                        })
                        .collect()
                } else {
                    assignments.clone()
                };
                for a in &assignments {
                    if let (Some(li), Some(ri)) = (l.find(None, &a.target), r.find(None, &a.source))
                    {
                        l.columns[li].data_type = r.column(ri).data_type;
                    }
                }
                Ok(Rc::new(l))
            }
            RelExpr::ConditionalApplyMerge {
                left, then_branch, ..
            } => {
                // Same shape as ApplyMerge: the outer schema, with merged attribute types
                // taken from the then-branch when resolvable.
                let mut l = (*self.infer(left, provider)?).clone();
                if let Ok(t) = self.infer(then_branch, provider) {
                    for tc in &t.columns {
                        if let Some(li) = l.find(None, &tc.name) {
                            l.columns[li].data_type = tc.data_type;
                        }
                    }
                }
                Ok(Rc::new(l))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggCall, ScalarExpr as E};
    use crate::plan::{MergeAssignment, ParamBinding};
    use decorr_common::Value;

    fn provider() -> MapProvider {
        MapProvider::new()
            .with_table(
                "customer",
                Schema::new(vec![
                    Column::new("custkey", DataType::Int),
                    Column::new("name", DataType::Str),
                ]),
            )
            .with_table(
                "orders",
                Schema::new(vec![
                    Column::new("orderkey", DataType::Int),
                    Column::new("custkey", DataType::Int),
                    Column::new("totalprice", DataType::Float),
                ]),
            )
            .with_udf("discount", DataType::Float)
    }

    #[test]
    fn scan_schema_is_qualified() {
        let s = infer_schema(&RelExpr::scan_as("customer", "c"), &provider()).unwrap();
        assert_eq!(s.index_of(Some("c"), "custkey").unwrap(), 0);
        assert_eq!(s.column(1).data_type, DataType::Str);
    }

    #[test]
    fn project_types_and_names() {
        let plan = RelExpr::Project {
            input: Box::new(RelExpr::scan("orders")),
            items: vec![
                ProjectItem::new(E::column("orderkey")),
                ProjectItem::aliased(
                    E::binary(BinaryOp::Mul, E::column("totalprice"), E::literal(0.15)),
                    "disc",
                ),
                ProjectItem::new(E::udf("discount", vec![E::column("totalprice")])),
            ],
            distinct: false,
        };
        let s = infer_schema(&plan, &provider()).unwrap();
        assert_eq!(s.names(), vec!["orderkey", "disc", "col2"]);
        assert_eq!(s.column(0).data_type, DataType::Int);
        assert_eq!(s.column(1).data_type, DataType::Float);
        assert_eq!(s.column(2).data_type, DataType::Float); // from udf_return_type
    }

    #[test]
    fn aggregate_schema() {
        let plan = RelExpr::Aggregate {
            input: Box::new(RelExpr::scan("orders")),
            group_by: vec![E::column("custkey")],
            aggregates: vec![
                AggCall::new(AggFunc::Sum, vec![E::column("totalprice")], "totalbusiness"),
                AggCall::new(AggFunc::CountStar, vec![], "n"),
            ],
        };
        let s = infer_schema(&plan, &provider()).unwrap();
        assert_eq!(s.names(), vec!["custkey", "totalbusiness", "n"]);
        assert_eq!(s.column(1).data_type, DataType::Float);
        assert_eq!(s.column(2).data_type, DataType::Int);
    }

    #[test]
    fn left_outer_join_makes_right_nullable() {
        let plan = RelExpr::Join {
            left: Box::new(RelExpr::scan_as("customer", "c")),
            right: Box::new(RelExpr::scan_as("orders", "o")),
            kind: JoinKind::LeftOuter,
            condition: Some(E::eq(
                E::qualified_column("c", "custkey"),
                E::qualified_column("o", "custkey"),
            )),
        };
        let s = infer_schema(&plan, &provider()).unwrap();
        assert_eq!(s.len(), 5);
        assert!(s.column(2).nullable);
    }

    #[test]
    fn semi_join_keeps_left_only() {
        let plan = RelExpr::Join {
            left: Box::new(RelExpr::scan("customer")),
            right: Box::new(RelExpr::scan("orders")),
            kind: JoinKind::LeftSemi,
            condition: None,
        };
        assert_eq!(infer_schema(&plan, &provider()).unwrap().len(), 2);
    }

    #[test]
    fn apply_merge_schema_keeps_left_shape() {
        // r has (totalbusiness, level); right computes v; assignment totalbusiness=v.
        let left = RelExpr::Project {
            input: Box::new(RelExpr::Single),
            items: vec![
                ProjectItem::aliased(E::literal(Value::Null), "totalbusiness"),
                ProjectItem::aliased(E::literal(Value::Null), "level"),
            ],
            distinct: false,
        };
        let right = RelExpr::Aggregate {
            input: Box::new(RelExpr::scan("orders")),
            group_by: vec![],
            aggregates: vec![AggCall::new(
                AggFunc::Sum,
                vec![E::column("totalprice")],
                "v",
            )],
        };
        let plan = RelExpr::ApplyMerge {
            left: Box::new(left),
            right: Box::new(right),
            assignments: vec![MergeAssignment::new("totalbusiness", "v")],
        };
        let s = infer_schema(&plan, &provider()).unwrap();
        assert_eq!(s.names(), vec!["totalbusiness", "level"]);
        assert_eq!(s.column(0).data_type, DataType::Float);
    }

    #[test]
    fn apply_schema_concatenates() {
        let plan = RelExpr::Apply {
            left: Box::new(RelExpr::scan_as("customer", "c")),
            right: Box::new(RelExpr::Project {
                input: Box::new(RelExpr::Single),
                items: vec![ProjectItem::aliased(E::param("ckey"), "retval")],
                distinct: false,
            }),
            kind: ApplyKind::Cross,
            bindings: vec![ParamBinding::new(
                "ckey",
                E::qualified_column("c", "custkey"),
            )],
        };
        let s = infer_schema(&plan, &provider()).unwrap();
        assert_eq!(s.names(), vec!["custkey", "name", "retval"]);
    }

    #[test]
    fn unknown_table_errors() {
        assert!(infer_schema(&RelExpr::scan("nosuch"), &provider()).is_err());
        assert!(EmptyProvider.table_schema("x").is_err());
    }
}
