//! Fluent builder for logical plans, used by tests, examples and the parser's planner.

use decorr_common::{Schema, Value};

use crate::expr::{AggCall, ScalarExpr};
use crate::plan::{
    ApplyKind, JoinKind, MergeAssignment, ParamBinding, ProjectItem, RelExpr, SortKey,
};

/// A small fluent API over [`RelExpr`], e.g.
///
/// ```
/// use decorr_algebra::{PlanBuilder, ScalarExpr};
///
/// let plan = PlanBuilder::scan("orders")
///     .select(ScalarExpr::gt(ScalarExpr::column("totalprice"), ScalarExpr::literal(100)))
///     .project(vec![(ScalarExpr::column("orderkey"), None)])
///     .build();
/// assert_eq!(plan.name(), "Project");
/// ```
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: RelExpr,
}

impl PlanBuilder {
    /// Wraps an existing plan for further composition.
    pub fn from_plan(plan: RelExpr) -> PlanBuilder {
        PlanBuilder { plan }
    }

    /// The Single relation `S`.
    pub fn single() -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Single,
        }
    }

    /// A base-table scan.
    pub fn scan(table: impl Into<String>) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::scan(table),
        }
    }

    /// An aliased base-table scan.
    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::scan_as(table, alias),
        }
    }

    /// An inline relation of literal rows.
    pub fn values(schema: Schema, rows: Vec<Vec<Value>>) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Values { schema, rows },
        }
    }

    /// Selection σ over the current plan.
    pub fn select(self, predicate: ScalarExpr) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Select {
                input: Box::new(self.plan),
                predicate,
            },
        }
    }

    /// Generalized projection without duplicate elimination (Πd).
    pub fn project(self, items: Vec<(ScalarExpr, Option<&str>)>) -> PlanBuilder {
        let items = items
            .into_iter()
            .map(|(e, a)| match a {
                Some(alias) => ProjectItem::aliased(e, alias),
                None => ProjectItem::new(e),
            })
            .collect();
        PlanBuilder {
            plan: RelExpr::Project {
                input: Box::new(self.plan),
                items,
                distinct: false,
            },
        }
    }

    /// Projection with duplicate elimination (Π).
    pub fn project_distinct(self, items: Vec<(ScalarExpr, Option<&str>)>) -> PlanBuilder {
        match self.project(items).plan {
            RelExpr::Project { input, items, .. } => PlanBuilder {
                plan: RelExpr::Project {
                    input,
                    items,
                    distinct: true,
                },
            },
            _ => unreachable!(),
        }
    }

    /// Group-by / aggregation over the current plan.
    pub fn aggregate(self, group_by: Vec<ScalarExpr>, aggregates: Vec<AggCall>) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Aggregate {
                input: Box::new(self.plan),
                group_by,
                aggregates,
            },
        }
    }

    /// Joins the current plan (as the left input) with `right`.
    pub fn join(
        self,
        right: PlanBuilder,
        kind: JoinKind,
        condition: Option<ScalarExpr>,
    ) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                kind,
                condition,
            },
        }
    }

    /// Bag (`all`) or set union with `right`.
    pub fn union(self, right: PlanBuilder, all: bool) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Union {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                all,
            },
        }
    }

    /// Sorts by `(expression, ascending)` keys, major first.
    pub fn sort(self, keys: Vec<(ScalarExpr, bool)>) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Sort {
                input: Box::new(self.plan),
                keys: keys
                    .into_iter()
                    .map(|(expr, ascending)| SortKey { expr, ascending })
                    .collect(),
            },
        }
    }

    /// Caps the row count.
    pub fn limit(self, limit: usize) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Limit {
                input: Box::new(self.plan),
                limit,
            },
        }
    }

    /// Rename ρ: re-qualifies the output columns under `alias`.
    pub fn rename(self, alias: impl Into<String>) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Rename {
                input: Box::new(self.plan),
                alias: alias.into(),
            },
        }
    }

    /// The Apply operator with optional bind extension.
    pub fn apply(
        self,
        right: PlanBuilder,
        kind: ApplyKind,
        bindings: Vec<ParamBinding>,
    ) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::Apply {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                kind,
                bindings,
            },
        }
    }

    /// Apply-Merge (AM).
    pub fn apply_merge(self, right: PlanBuilder, assignments: Vec<MergeAssignment>) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::ApplyMerge {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                assignments,
            },
        }
    }

    /// Conditional Apply-Merge (AMC).
    pub fn conditional_apply_merge(
        self,
        predicate: ScalarExpr,
        then_branch: PlanBuilder,
        else_branch: PlanBuilder,
        assignments: Vec<MergeAssignment>,
    ) -> PlanBuilder {
        PlanBuilder {
            plan: RelExpr::ConditionalApplyMerge {
                left: Box::new(self.plan),
                predicate,
                then_branch: Box::new(then_branch.plan),
                else_branch: Box::new(else_branch.plan),
                assignments,
            },
        }
    }

    /// The finished plan.
    pub fn build(self) -> RelExpr {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, ScalarExpr as E};

    #[test]
    fn builds_min_cost_supplier_query() {
        // The Figure 1 expression: partsupp A× (G_min(σ_partkey=p1.partkey(partsupp)))
        let inner = PlanBuilder::scan_as("partsupp", "p2")
            .select(E::eq(
                E::qualified_column("p2", "partkey"),
                E::qualified_column("p1", "partkey"),
            ))
            .aggregate(
                vec![],
                vec![AggCall::new(
                    AggFunc::Min,
                    vec![E::column("supplycost")],
                    "c",
                )],
            );
        let plan = PlanBuilder::scan_as("partsupp", "p1")
            .apply(inner, ApplyKind::Cross, vec![])
            .select(E::eq(E::column("supplycost"), E::column("c")))
            .project(vec![
                (E::column("suppkey"), None),
                (E::qualified_column("p1", "partkey"), None),
            ])
            .build();
        assert_eq!(plan.node_count(), 7);
        assert!(plan.contains_apply());
    }

    #[test]
    fn builder_covers_every_operator() {
        let plan = PlanBuilder::single()
            .project(vec![(E::literal(1), Some("x"))])
            .apply_merge(
                PlanBuilder::single().project(vec![(E::literal(2), Some("x"))]),
                vec![MergeAssignment::new("x", "x")],
            )
            .conditional_apply_merge(
                E::gt(E::column("x"), E::literal(0)),
                PlanBuilder::single().project(vec![(E::literal("pos"), Some("lbl"))]),
                PlanBuilder::single().project(vec![(E::literal("neg"), Some("lbl"))]),
                vec![],
            )
            .union(
                PlanBuilder::single().project(vec![(E::literal(9), Some("x"))]),
                true,
            )
            .sort(vec![(E::column("x"), true)])
            .limit(10)
            .rename("t")
            .build();
        assert!(plan.node_count() >= 8);
    }
}
