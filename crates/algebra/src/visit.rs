//! Plan and expression traversal, substitution and free-variable analysis.
//!
//! The transformation rules of Section VI need three pieces of static analysis:
//!
//! 1. *parameter substitution* — rule R9 (Apply-bind removal) replaces every occurrence
//!    of a formal parameter in the inner expression with the corresponding actual
//!    argument;
//! 2. *free parameters* — a plan whose free parameters are all bound by an Apply-bind can
//!    be checked for correlation;
//! 3. *free (outer) column references* — rules K1/K2 require that the inner expression
//!    "uses no parameters from r", i.e. references no attribute produced by the outer
//!    expression and no bind parameter.

use std::collections::{HashMap, HashSet};

use decorr_common::Schema;

use crate::expr::{ColumnRef, ScalarExpr};
use crate::plan::RelExpr;
use crate::schema::{infer_schema, SchemaProvider};

/// Applies `f` bottom-up to every operator in the plan (children first, then the parent
/// built from the rewritten children).
pub fn transform_plan_up(plan: &RelExpr, f: &mut dyn FnMut(RelExpr) -> RelExpr) -> RelExpr {
    let new_children: Vec<RelExpr> = plan
        .children()
        .into_iter()
        .map(|c| transform_plan_up(c, f))
        .collect();
    let rebuilt = if new_children.is_empty() {
        plan.clone()
    } else {
        plan.with_new_children(new_children)
    };
    f(rebuilt)
}

/// Applies `plan_f` bottom-up to every operator in the plan — including the plans of
/// scalar subqueries nested inside expressions — and `expr_f` bottom-up to every scalar
/// expression node along the way. Unlike [`transform_plan_up`], which stops at subquery
/// boundaries, this rewrites the entire reachable tree; the UDF-merge pass uses it to
/// re-qualify inlined UDF bodies.
pub fn transform_plan_deep(
    plan: &RelExpr,
    plan_f: &mut dyn FnMut(RelExpr) -> RelExpr,
    expr_f: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
) -> RelExpr {
    let new_children: Vec<RelExpr> = plan
        .children()
        .into_iter()
        .map(|c| transform_plan_deep(c, plan_f, expr_f))
        .collect();
    let node = if new_children.is_empty() {
        plan.clone()
    } else {
        plan.with_new_children(new_children)
    };
    let node = map_own_exprs(&node, &mut |e| {
        let with_subqueries = transform_expr_deep(e, plan_f, expr_f);
        transform_expr_up(&with_subqueries, expr_f)
    });
    plan_f(node)
}

/// Rewrites subquery plans nested inside a scalar expression using
/// [`transform_plan_deep`].
fn transform_expr_deep(
    expr: &ScalarExpr,
    plan_f: &mut dyn FnMut(RelExpr) -> RelExpr,
    expr_f: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
) -> ScalarExpr {
    match expr {
        ScalarExpr::ScalarSubquery(q) => {
            ScalarExpr::ScalarSubquery(Box::new(transform_plan_deep(q, plan_f, expr_f)))
        }
        ScalarExpr::Exists(q) => {
            ScalarExpr::Exists(Box::new(transform_plan_deep(q, plan_f, expr_f)))
        }
        ScalarExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => ScalarExpr::InSubquery {
            expr: Box::new(transform_expr_deep(expr, plan_f, expr_f)),
            subquery: Box::new(transform_plan_deep(subquery, plan_f, expr_f)),
            negated: *negated,
        },
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(transform_expr_deep(left, plan_f, expr_f)),
            right: Box::new(transform_expr_deep(right, plan_f, expr_f)),
        },
        ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(transform_expr_deep(expr, plan_f, expr_f)),
        },
        ScalarExpr::Case {
            branches,
            else_expr,
        } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(p, e)| {
                    (
                        transform_expr_deep(p, plan_f, expr_f),
                        transform_expr_deep(e, plan_f, expr_f),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(transform_expr_deep(e, plan_f, expr_f))),
        },
        ScalarExpr::Coalesce(args) => ScalarExpr::Coalesce(
            args.iter()
                .map(|a| transform_expr_deep(a, plan_f, expr_f))
                .collect(),
        ),
        ScalarExpr::Cast { expr, data_type } => ScalarExpr::Cast {
            expr: Box::new(transform_expr_deep(expr, plan_f, expr_f)),
            data_type: *data_type,
        },
        ScalarExpr::UdfCall { name, args } => ScalarExpr::UdfCall {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| transform_expr_deep(a, plan_f, expr_f))
                .collect(),
        },
        leaf => leaf.clone(),
    }
}

/// Applies `f` bottom-up to every node of a scalar expression. Does not descend into
/// subquery plans (use [`map_plan_exprs`] / `transform_expr_with_subqueries` for that).
pub fn transform_expr_up(
    expr: &ScalarExpr,
    f: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
) -> ScalarExpr {
    let rebuilt = match expr {
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(transform_expr_up(left, f)),
            right: Box::new(transform_expr_up(right, f)),
        },
        ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(transform_expr_up(expr, f)),
        },
        ScalarExpr::Case {
            branches,
            else_expr,
        } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(p, e)| (transform_expr_up(p, f), transform_expr_up(e, f)))
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(transform_expr_up(e, f))),
        },
        ScalarExpr::Cast { expr, data_type } => ScalarExpr::Cast {
            expr: Box::new(transform_expr_up(expr, f)),
            data_type: *data_type,
        },
        ScalarExpr::Coalesce(args) => {
            ScalarExpr::Coalesce(args.iter().map(|a| transform_expr_up(a, f)).collect())
        }
        ScalarExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => ScalarExpr::InSubquery {
            expr: Box::new(transform_expr_up(expr, f)),
            subquery: subquery.clone(),
            negated: *negated,
        },
        ScalarExpr::UdfCall { name, args } => ScalarExpr::UdfCall {
            name: name.clone(),
            args: args.iter().map(|a| transform_expr_up(a, f)).collect(),
        },
        leaf => leaf.clone(),
    };
    f(rebuilt)
}

/// Rewrites every scalar expression owned by any operator in the plan (recursively
/// through the whole tree, including the plans of scalar subqueries) by applying `f`
/// bottom-up to the expression nodes.
pub fn map_plan_exprs(plan: &RelExpr, f: &mut dyn FnMut(ScalarExpr) -> ScalarExpr) -> RelExpr {
    // First rewrite the children.
    let new_children: Vec<RelExpr> = plan
        .children()
        .into_iter()
        .map(|c| map_plan_exprs(c, f))
        .collect();
    let node = if new_children.is_empty() {
        plan.clone()
    } else {
        plan.with_new_children(new_children)
    };
    // Then rewrite this node's own expressions, descending into subquery plans.
    let mut rewrite = |e: &ScalarExpr| -> ScalarExpr {
        let with_subqueries = transform_expr_with_subqueries(e, f);
        transform_expr_up(&with_subqueries, f)
    };
    map_own_exprs(&node, &mut rewrite)
}

/// Rewrites subquery plans nested inside a scalar expression using [`map_plan_exprs`].
fn transform_expr_with_subqueries(
    expr: &ScalarExpr,
    f: &mut dyn FnMut(ScalarExpr) -> ScalarExpr,
) -> ScalarExpr {
    match expr {
        ScalarExpr::ScalarSubquery(q) => ScalarExpr::ScalarSubquery(Box::new(map_plan_exprs(q, f))),
        ScalarExpr::Exists(q) => ScalarExpr::Exists(Box::new(map_plan_exprs(q, f))),
        ScalarExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => ScalarExpr::InSubquery {
            expr: Box::new(transform_expr_with_subqueries(expr, f)),
            subquery: Box::new(map_plan_exprs(subquery, f)),
            negated: *negated,
        },
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(transform_expr_with_subqueries(left, f)),
            right: Box::new(transform_expr_with_subqueries(right, f)),
        },
        ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
            op: *op,
            expr: Box::new(transform_expr_with_subqueries(expr, f)),
        },
        ScalarExpr::Case {
            branches,
            else_expr,
        } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(p, e)| {
                    (
                        transform_expr_with_subqueries(p, f),
                        transform_expr_with_subqueries(e, f),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(transform_expr_with_subqueries(e, f))),
        },
        ScalarExpr::Coalesce(args) => ScalarExpr::Coalesce(
            args.iter()
                .map(|a| transform_expr_with_subqueries(a, f))
                .collect(),
        ),
        ScalarExpr::Cast { expr, data_type } => ScalarExpr::Cast {
            expr: Box::new(transform_expr_with_subqueries(expr, f)),
            data_type: *data_type,
        },
        ScalarExpr::UdfCall { name, args } => ScalarExpr::UdfCall {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| transform_expr_with_subqueries(a, f))
                .collect(),
        },
        leaf => leaf.clone(),
    }
}

/// Rewrites the scalar expressions directly owned by one operator (not its children).
pub fn map_own_exprs(plan: &RelExpr, f: &mut dyn FnMut(&ScalarExpr) -> ScalarExpr) -> RelExpr {
    use crate::plan::RelExpr as P;
    match plan {
        P::Select { input, predicate } => P::Select {
            input: input.clone(),
            predicate: f(predicate),
        },
        P::Project {
            input,
            items,
            distinct,
        } => P::Project {
            input: input.clone(),
            items: items
                .iter()
                .map(|i| crate::plan::ProjectItem {
                    expr: f(&i.expr),
                    alias: i.alias.clone(),
                })
                .collect(),
            distinct: *distinct,
        },
        P::Aggregate {
            input,
            group_by,
            aggregates,
        } => P::Aggregate {
            input: input.clone(),
            group_by: group_by.iter().map(&mut *f).collect(),
            aggregates: aggregates
                .iter()
                .map(|a| crate::expr::AggCall {
                    func: a.func.clone(),
                    args: a.args.iter().map(&mut *f).collect(),
                    distinct: a.distinct,
                    alias: a.alias.clone(),
                })
                .collect(),
        },
        P::Join {
            left,
            right,
            kind,
            condition,
        } => P::Join {
            left: left.clone(),
            right: right.clone(),
            kind: *kind,
            condition: condition.as_ref().map(&mut *f),
        },
        P::Sort { input, keys } => P::Sort {
            input: input.clone(),
            keys: keys
                .iter()
                .map(|k| crate::plan::SortKey {
                    expr: f(&k.expr),
                    ascending: k.ascending,
                })
                .collect(),
        },
        P::Apply {
            left,
            right,
            kind,
            bindings,
        } => P::Apply {
            left: left.clone(),
            right: right.clone(),
            kind: *kind,
            bindings: bindings
                .iter()
                .map(|b| crate::plan::ParamBinding {
                    param: b.param.clone(),
                    value: f(&b.value),
                })
                .collect(),
        },
        P::ConditionalApplyMerge {
            left,
            predicate,
            then_branch,
            else_branch,
            assignments,
        } => P::ConditionalApplyMerge {
            left: left.clone(),
            predicate: f(predicate),
            then_branch: then_branch.clone(),
            else_branch: else_branch.clone(),
            assignments: assignments.clone(),
        },
        other => other.clone(),
    }
}

/// Substitutes parameters in a scalar expression using `bindings` (descending into
/// subquery plans).
pub fn substitute_params_in_expr(
    expr: &ScalarExpr,
    bindings: &HashMap<String, ScalarExpr>,
) -> ScalarExpr {
    let subst = |e: ScalarExpr| -> ScalarExpr {
        if let ScalarExpr::Param(p) = &e {
            if let Some(replacement) = bindings.get(p) {
                return replacement.clone();
            }
        }
        e
    };
    let mut subst_boxed: Box<dyn FnMut(ScalarExpr) -> ScalarExpr> = Box::new(subst);
    let with_sub = transform_expr_with_subqueries(expr, &mut subst_boxed);
    transform_expr_up(&with_sub, &mut subst_boxed)
}

/// Substitutes parameters throughout a plan. Parameters that are re-bound by a nested
/// Apply-bind with the same name are *shadowed* and left untouched below that Apply.
pub fn substitute_params_in_plan(
    plan: &RelExpr,
    bindings: &HashMap<String, ScalarExpr>,
) -> RelExpr {
    if bindings.is_empty() {
        return plan.clone();
    }
    match plan {
        RelExpr::Apply {
            left,
            right,
            kind,
            bindings: apply_bindings,
        } => {
            // Binding values are evaluated against the outer scope: substitute in them.
            let new_bindings: Vec<crate::plan::ParamBinding> = apply_bindings
                .iter()
                .map(|b| crate::plan::ParamBinding {
                    param: b.param.clone(),
                    value: substitute_params_in_expr(&b.value, bindings),
                })
                .collect();
            // Parameters re-bound here are shadowed in the right child.
            let mut inner_bindings = bindings.clone();
            for b in apply_bindings {
                inner_bindings.remove(&b.param);
            }
            RelExpr::Apply {
                left: Box::new(substitute_params_in_plan(left, bindings)),
                right: Box::new(substitute_params_in_plan(right, &inner_bindings)),
                kind: *kind,
                bindings: new_bindings,
            }
        }
        other => {
            let new_children: Vec<RelExpr> = other
                .children()
                .into_iter()
                .map(|c| substitute_params_in_plan(c, bindings))
                .collect();
            let node = if new_children.is_empty() {
                other.clone()
            } else {
                other.with_new_children(new_children)
            };
            map_own_exprs(&node, &mut |e| substitute_params_in_expr(e, bindings))
        }
    }
}

/// Collects the free parameters of a plan: parameters referenced anywhere in the tree
/// that are not bound by an enclosing Apply-bind inside the plan itself.
pub fn free_params(plan: &RelExpr) -> Vec<String> {
    let mut out = vec![];
    collect_free_params(plan, &HashSet::new(), &mut out);
    out
}

fn collect_free_params(plan: &RelExpr, bound: &HashSet<String>, out: &mut Vec<String>) {
    // Parameters in this node's own expressions.
    plan.for_each_expr(&mut |e| collect_expr_free_params(e, bound, out));
    match plan {
        RelExpr::Apply {
            left,
            right,
            bindings,
            ..
        } => {
            collect_free_params(left, bound, out);
            let mut inner = bound.clone();
            for b in bindings {
                inner.insert(b.param.clone());
            }
            collect_free_params(right, &inner, out);
        }
        other => {
            other.for_each_child(&mut |c| collect_free_params(c, bound, out));
        }
    }
}

fn collect_expr_free_params(expr: &ScalarExpr, bound: &HashSet<String>, out: &mut Vec<String>) {
    match expr {
        ScalarExpr::Param(p) => {
            if !bound.contains(p) && !out.contains(p) {
                out.push(p.clone());
            }
        }
        ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => collect_free_params(q, bound, out),
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            collect_expr_free_params(expr, bound, out);
            collect_free_params(subquery, bound, out);
        }
        other => {
            other.for_each_child(&mut |c| collect_expr_free_params(c, bound, out));
        }
    }
}

/// Collects the free column references of a plan: references used anywhere in the tree
/// that are not produced by the plan's own inputs (they must therefore refer to an outer
/// query block — the correlation the decorrelation rules try to remove).
pub fn free_column_refs(plan: &RelExpr, provider: &dyn SchemaProvider) -> Vec<ColumnRef> {
    let mut out = vec![];
    collect_free_columns(plan, provider, &mut out);
    out
}

fn schema_or_empty(plan: &RelExpr, provider: &dyn SchemaProvider) -> Schema {
    infer_schema(plan, provider).unwrap_or_else(|_| Schema::empty())
}

fn collect_free_columns(plan: &RelExpr, provider: &dyn SchemaProvider, out: &mut Vec<ColumnRef>) {
    // Which relations are visible to this node's own expressions?
    let visible: Schema = match plan {
        RelExpr::Join { left, right, .. }
        | RelExpr::Union { left, right, .. }
        | RelExpr::Apply { left, right, .. }
        | RelExpr::ApplyMerge { left, right, .. } => {
            schema_or_empty(left, provider).join(&schema_or_empty(right, provider))
        }
        RelExpr::ConditionalApplyMerge { left, .. } => schema_or_empty(left, provider),
        other => other
            .children()
            .first()
            .map(|c| schema_or_empty(c, provider))
            .unwrap_or_else(Schema::empty),
    };
    let push_if_free = |c: &ColumnRef, visible: &Schema, out: &mut Vec<ColumnRef>| {
        if visible.find(c.qualifier.as_deref(), &c.name).is_none() && !out.contains(c) {
            out.push(c.clone());
        }
    };
    for e in plan.expressions() {
        let mut subquery_free = vec![];
        collect_expr_free_columns(e, provider, &mut subquery_free);
        for c in &subquery_free {
            push_if_free(c, &visible, out);
        }
    }
    // Children: a child's free columns stay free unless this node is an Apply-family
    // operator and the left child's schema resolves them (correlation bound here).
    match plan {
        RelExpr::Apply { left, right, .. } | RelExpr::ApplyMerge { left, right, .. } => {
            collect_free_columns(left, provider, out);
            let mut right_free = vec![];
            collect_free_columns(right, provider, &mut right_free);
            let left_schema = schema_or_empty(left, provider);
            for c in right_free {
                if left_schema.find(c.qualifier.as_deref(), &c.name).is_none() && !out.contains(&c)
                {
                    out.push(c);
                }
            }
        }
        RelExpr::ConditionalApplyMerge {
            left,
            then_branch,
            else_branch,
            ..
        } => {
            collect_free_columns(left, provider, out);
            let left_schema = schema_or_empty(left, provider);
            for branch in [then_branch, else_branch] {
                let mut branch_free = vec![];
                collect_free_columns(branch, provider, &mut branch_free);
                for c in branch_free {
                    if left_schema.find(c.qualifier.as_deref(), &c.name).is_none()
                        && !out.contains(&c)
                    {
                        out.push(c);
                    }
                }
            }
        }
        other => {
            for c in other.children() {
                collect_free_columns(c, provider, out);
            }
        }
    }
}

fn collect_expr_free_columns(
    expr: &ScalarExpr,
    provider: &dyn SchemaProvider,
    out: &mut Vec<ColumnRef>,
) {
    match expr {
        ScalarExpr::Column(c) => {
            if !out.contains(c) {
                out.push(c.clone());
            }
        }
        ScalarExpr::ScalarSubquery(q) | ScalarExpr::Exists(q) => {
            // Free columns of the nested subquery are free here too.
            let nested = free_column_refs(q, provider);
            for c in nested {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            collect_expr_free_columns(expr, provider, out);
            let nested = free_column_refs(subquery, provider);
            for c in nested {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        other => {
            for c in other.children() {
                collect_expr_free_columns(c, provider, out);
            }
        }
    }
}

/// True if the inner (right) expression of an Apply is *uncorrelated* with respect to the
/// outer schema and bind parameters: it references no outer column and no parameter bound
/// by `bound_params`. This is the "e uses no parameters from r" side condition of rules
/// K1 and K2.
pub fn is_uncorrelated(
    inner: &RelExpr,
    outer_schema: &Schema,
    bound_params: &[String],
    provider: &dyn SchemaProvider,
) -> bool {
    let params = free_params(inner);
    if params.iter().any(|p| bound_params.contains(p)) {
        return false;
    }
    let free_cols = free_column_refs(inner, provider);
    !free_cols
        .iter()
        .any(|c| outer_schema.find(c.qualifier.as_deref(), &c.name).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr as E;
    use crate::plan::{ApplyKind, ParamBinding, ProjectItem};
    use crate::schema::MapProvider;
    use decorr_common::{Column, DataType};

    fn provider() -> MapProvider {
        MapProvider::new()
            .with_table(
                "customer",
                Schema::new(vec![Column::new("custkey", DataType::Int)]),
            )
            .with_table(
                "orders",
                Schema::new(vec![
                    Column::new("orderkey", DataType::Int),
                    Column::new("custkey", DataType::Int),
                    Column::new("totalprice", DataType::Float),
                ]),
            )
    }

    fn correlated_inner() -> RelExpr {
        RelExpr::Select {
            input: Box::new(RelExpr::scan("orders")),
            predicate: E::eq(E::column("custkey"), E::param("ckey")),
        }
    }

    #[test]
    fn substitute_params_replaces_free_only() {
        let mut bindings = HashMap::new();
        bindings.insert("ckey".to_string(), E::qualified_column("c", "custkey"));
        let plan = correlated_inner();
        let rewritten = substitute_params_in_plan(&plan, &bindings);
        assert!(free_params(&rewritten).is_empty());
        // A nested apply that rebinds ckey shadows the substitution.
        let nested = RelExpr::Apply {
            left: Box::new(RelExpr::scan("customer")),
            right: Box::new(correlated_inner()),
            kind: ApplyKind::Cross,
            bindings: vec![ParamBinding::new("ckey", E::column("custkey"))],
        };
        let rewritten = substitute_params_in_plan(&nested, &bindings);
        assert!(free_params(&rewritten).is_empty());
        match rewritten {
            RelExpr::Apply { right, .. } => {
                // The inner param is still :ckey (shadowed), not c.custkey.
                assert_eq!(free_params(&right), vec!["ckey".to_string()]);
            }
            other => panic!("expected Apply, got {}", other.name()),
        }
    }

    #[test]
    fn free_params_bound_by_apply_bind_are_not_free() {
        let plan = RelExpr::Apply {
            left: Box::new(RelExpr::scan("customer")),
            right: Box::new(correlated_inner()),
            kind: ApplyKind::Cross,
            bindings: vec![ParamBinding::new("ckey", E::column("custkey"))],
        };
        assert!(free_params(&plan).is_empty());
        assert_eq!(free_params(&correlated_inner()), vec!["ckey".to_string()]);
    }

    #[test]
    fn free_columns_detect_correlation() {
        // orders-side select referencing c.custkey (outer) is correlated.
        let inner = RelExpr::Select {
            input: Box::new(RelExpr::scan("orders")),
            predicate: E::eq(E::column("custkey"), E::qualified_column("c", "custkey")),
        };
        let free = free_column_refs(&inner, &provider());
        assert_eq!(free.len(), 1);
        assert_eq!(free[0].qualifier.as_deref(), Some("c"));

        let outer_schema = provider()
            .table_schema("customer")
            .unwrap()
            .with_qualifier("c");
        assert!(!is_uncorrelated(&inner, &outer_schema, &[], &provider()));

        let uncorrelated = RelExpr::Select {
            input: Box::new(RelExpr::scan("orders")),
            predicate: E::gt(E::column("totalprice"), E::literal(100)),
        };
        assert!(is_uncorrelated(
            &uncorrelated,
            &outer_schema,
            &[],
            &provider()
        ));
    }

    #[test]
    fn transform_plan_up_rewrites_nodes() {
        let plan = RelExpr::Select {
            input: Box::new(RelExpr::scan("orders")),
            predicate: E::literal(true),
        };
        // Remove trivially-true selections.
        let rewritten = transform_plan_up(&plan, &mut |node| match node {
            RelExpr::Select { input, predicate } if predicate.is_true_literal() => *input,
            other => other,
        });
        assert_eq!(rewritten, RelExpr::scan("orders"));
    }

    #[test]
    fn map_plan_exprs_descends_into_subqueries() {
        let plan = RelExpr::Project {
            input: Box::new(RelExpr::scan("customer")),
            items: vec![ProjectItem::aliased(
                ScalarExpr::ScalarSubquery(Box::new(correlated_inner())),
                "tb",
            )],
            distinct: false,
        };
        let mut saw_param = false;
        map_plan_exprs(&plan, &mut |e| {
            if matches!(e, ScalarExpr::Param(_)) {
                saw_param = true;
            }
            e
        });
        assert!(
            saw_param,
            "expected traversal to reach params inside subquery plans"
        );
    }
}
