//! EXPLAIN-style rendering of logical plans.
//!
//! The output mirrors the expression trees drawn in the paper's Figures 1–8: one line
//! per operator, indented by depth, with the operator's own expressions inline.

use std::fmt::Write as _;

use crate::plan::RelExpr;

/// Renders a plan as an indented operator tree.
pub fn explain(plan: &RelExpr) -> String {
    let mut out = String::new();
    write_node(plan, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_node(plan: &RelExpr, depth: usize, out: &mut String) {
    indent(depth, out);
    match plan {
        RelExpr::Single => {
            let _ = writeln!(out, "Single");
        }
        RelExpr::Scan { table, alias } => {
            let _ = match alias {
                Some(a) if a != table => writeln!(out, "Scan {table} as {a}"),
                _ => writeln!(out, "Scan {table}"),
            };
        }
        RelExpr::Values { rows, .. } => {
            let _ = writeln!(out, "Values ({} rows)", rows.len());
        }
        RelExpr::Select { predicate, .. } => {
            let _ = writeln!(out, "Select [{predicate}]");
        }
        RelExpr::Project {
            items, distinct, ..
        } => {
            let items_s: Vec<String> = items.iter().map(|i| i.to_string()).collect();
            let pi = if *distinct {
                "Project(distinct)"
            } else {
                "Project"
            };
            let _ = writeln!(out, "{pi} [{}]", items_s.join(", "));
        }
        RelExpr::Aggregate {
            group_by,
            aggregates,
            ..
        } => {
            let groups: Vec<String> = group_by.iter().map(|g| g.to_string()).collect();
            let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "Aggregate group_by=[{}] aggs=[{}]",
                groups.join(", "),
                aggs.join(", ")
            );
        }
        RelExpr::Join {
            kind, condition, ..
        } => {
            let cond = condition
                .as_ref()
                .map(|c| format!(" on {c}"))
                .unwrap_or_default();
            let _ = writeln!(out, "Join({kind}){cond}");
        }
        RelExpr::Union { all, .. } => {
            let _ = writeln!(out, "Union{}", if *all { " all" } else { "" });
        }
        RelExpr::Sort { keys, .. } => {
            let keys_s: Vec<String> = keys
                .iter()
                .map(|k| format!("{} {}", k.expr, if k.ascending { "asc" } else { "desc" }))
                .collect();
            let _ = writeln!(out, "Sort [{}]", keys_s.join(", "));
        }
        RelExpr::Limit { limit, .. } => {
            let _ = writeln!(out, "Limit {limit}");
        }
        RelExpr::Rename { alias, .. } => {
            let _ = writeln!(out, "Rename as {alias}");
        }
        RelExpr::Apply { kind, bindings, .. } => {
            let binds = if bindings.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> = bindings.iter().map(|b| b.to_string()).collect();
                format!(" bind:{}", parts.join(", "))
            };
            let _ = writeln!(out, "Apply({kind}){binds}");
        }
        RelExpr::ApplyMerge { assignments, .. } => {
            let assign = if assignments.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> = assignments.iter().map(|a| a.to_string()).collect();
                format!(" [{}]", parts.join(", "))
            };
            let _ = writeln!(out, "ApplyMerge{assign}");
        }
        RelExpr::ConditionalApplyMerge {
            predicate,
            assignments,
            ..
        } => {
            let assign = if assignments.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> = assignments.iter().map(|a| a.to_string()).collect();
                format!(" [{}]", parts.join(", "))
            };
            let _ = writeln!(out, "ConditionalApplyMerge if {predicate}{assign}");
        }
    }
    for child in plan.children() {
        write_node(child, depth + 1, out);
    }
    // Also show subquery plans nested inside this node's expressions.
    for e in plan.expressions() {
        for sub in collect_subqueries(e) {
            indent(depth + 1, out);
            let _ = writeln!(out, "[subquery]");
            write_node(sub, depth + 2, out);
        }
    }
}

fn collect_subqueries(expr: &crate::expr::ScalarExpr) -> Vec<&RelExpr> {
    use crate::expr::ScalarExpr as E;
    let mut out = vec![];
    match expr {
        E::ScalarSubquery(q) | E::Exists(q) => out.push(q.as_ref()),
        E::InSubquery { expr, subquery, .. } => {
            out.extend(collect_subqueries(expr));
            out.push(subquery.as_ref());
        }
        other => {
            for c in other.children() {
                out.extend(collect_subqueries(c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr as E;
    use crate::plan::{ApplyKind, ParamBinding, ProjectItem};

    #[test]
    fn explain_shows_tree_structure() {
        let plan = RelExpr::Project {
            input: Box::new(RelExpr::Apply {
                left: Box::new(RelExpr::scan_as("customer", "c")),
                right: Box::new(RelExpr::Select {
                    input: Box::new(RelExpr::scan("orders")),
                    predicate: E::eq(E::column("custkey"), E::param("ckey")),
                }),
                kind: ApplyKind::LeftOuter,
                bindings: vec![ParamBinding::new(
                    "ckey",
                    E::qualified_column("c", "custkey"),
                )],
            }),
            items: vec![ProjectItem::new(E::qualified_column("c", "custkey"))],
            distinct: false,
        };
        let text = explain(&plan);
        assert!(text.contains("Project [c.custkey]"));
        assert!(text.contains("Apply(left outer) bind:ckey=c.custkey"));
        assert!(text.contains("  Scan customer as c"));
        assert!(text.contains("Select [(custkey = :ckey)]"));
    }

    #[test]
    fn explain_shows_subqueries() {
        let plan = RelExpr::Select {
            input: Box::new(RelExpr::scan("partsupp")),
            predicate: E::eq(
                E::column("supplycost"),
                E::ScalarSubquery(Box::new(RelExpr::scan("partsupp"))),
            ),
        };
        let text = explain(&plan);
        assert!(text.contains("[subquery]"));
    }
}
