//! The workspace-wide FNV-1a hasher.
//!
//! Plan fingerprints must agree across layers — the optimizer's plan cache, the
//! executor's per-node cardinality collector and the engine's feedback store all join
//! on them — so there is exactly one implementation, here. It hashes `fmt` output
//! without materializing the string: write a `Debug`/`Display` rendering into it via
//! `std::fmt::Write`.

/// FNV-1a over a `fmt`-stream plus raw integers.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher::new()
    }
}

impl FnvHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher initialised with the FNV offset basis.
    pub fn new() -> FnvHasher {
        FnvHasher(Self::OFFSET)
    }

    /// Folds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` into the hash (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The accumulated 64-bit hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Write for FnvHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.write_bytes(bytes);
    }
}

/// A `BuildHasher` producing [`FnvHasher`]s, for hash maps keyed by small or
/// pointer-like keys where SipHash's DoS resistance is unnecessary overhead
/// (e.g. the schema-inference memo keyed by plan-node addresses).
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn stable_and_input_sensitive() {
        let mut a = FnvHasher::new();
        let mut b = FnvHasher::new();
        write!(a, "plan-{}", 42).unwrap();
        write!(b, "plan-{}", 42).unwrap();
        assert_eq!(a.finish(), b.finish());
        let mut c = FnvHasher::new();
        write!(c, "plan-{}", 43).unwrap();
        assert_ne!(a.finish(), c.finish());
        let mut d = FnvHasher::new();
        d.write_u64(42);
        assert_ne!(a.finish(), d.finish());
        // The canonical FNV-1a test vector: hashing "a".
        let mut e = FnvHasher::new();
        e.write_bytes(b"a");
        assert_eq!(e.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
