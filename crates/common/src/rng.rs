//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds in hermetic environments with no access to crates.io, so the
//! data generator and the property tests use this xorshift64*-based generator instead of
//! the `rand` crate. It is *not* cryptographically secure — it only needs to be fast,
//! seedable and stable across platforms so that generated datasets and property-test
//! cases are reproducible.

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed. A zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        // SplitMix64 scrambling so that consecutive seeds produce unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SmallRng {
            state: if z == 0 { 0x853C_49E6_748F_EA9B } else { z },
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[low, high)`. Panics if the range is empty.
    pub fn gen_range_i64(&mut self, low: i64, high: i64) -> i64 {
        assert!(low < high, "gen_range_i64: empty range {low}..{high}");
        let span = (high as i128 - low as i128) as u128;
        let v = (self.next_u64() as u128) % span;
        (low as i128 + v as i128) as i64
    }

    /// Uniform integer in `[low, high]`.
    pub fn gen_range_i64_inclusive(&mut self, low: i64, high: i64) -> i64 {
        self.gen_range_i64(low, high + 1)
    }

    /// Uniform usize in `[low, high)`.
    pub fn gen_range_usize(&mut self, low: usize, high: usize) -> usize {
        self.gen_range_i64(low as i64, high as i64) as usize
    }

    /// Uniform float in `[low, high)`.
    pub fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range_f64: empty range {low}..{high}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }

    /// Fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            let f = rng.gen_range_f64(0.5, 2.5);
            assert!((0.5..2.5).contains(&f));
            let u = rng.gen_range_usize(3, 9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SmallRng::seed_from_u64(0);
        let values: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(values.windows(2).any(|w| w[0] != w[1]));
    }
}
