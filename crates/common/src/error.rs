//! Workspace-wide error type.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Every error the engine can produce, from parsing through rewriting to execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexing / parsing errors: the offending text and a message.
    Parse(String),
    /// Catalog errors: unknown table, duplicate table, unknown column, unknown function.
    Catalog(String),
    /// Name resolution / binding errors.
    Binding(String),
    /// Static or dynamic type errors.
    TypeError(String),
    /// Errors raised while rewriting / decorrelating (e.g. an Apply operator that cannot
    /// be removed when the caller demanded full decorrelation).
    Rewrite(String),
    /// Runtime execution errors (division by zero, scalar subquery returning more than
    /// one row, uninitialised cursor, ...).
    Execution(String),
    /// Feature that the engine intentionally does not support (mirrors the paper's
    /// listed limitations, e.g. decorrelating UDFs with side effects).
    Unsupported(String),
    /// Internal invariant violation — indicates a bug in the engine itself.
    Internal(String),
    /// Durability errors: a corrupt or truncated snapshot, a WAL that cannot be
    /// appended, or a `data_dir` that cannot be opened.
    Persist(String),
}

impl Error {
    /// Short machine-readable category name, useful in tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Catalog(_) => "catalog",
            Error::Binding(_) => "binding",
            Error::TypeError(_) => "type",
            Error::Rewrite(_) => "rewrite",
            Error::Execution(_) => "execution",
            Error::Unsupported(_) => "unsupported",
            Error::Internal(_) => "internal",
            Error::Persist(_) => "persist",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Binding(m) => write!(f, "binding error: {m}"),
            Error::TypeError(m) => write!(f, "type error: {m}"),
            Error::Rewrite(m) => write!(f, "rewrite error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Persist(m) => write!(f, "persistence error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind() {
        let e = Error::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
        assert_eq!(Error::Unsupported("x".into()).kind(), "unsupported");
    }
}
