//! Relation schemas and column metadata.

use std::fmt;

use crate::{normalize_ident, DataType, Error, Result};

/// A single column of a relation schema.
///
/// Columns carry an optional *qualifier* (table name or alias) so that after joins two
/// columns with the same base name (e.g. `c.custkey` and `o.custkey`) can still be
/// disambiguated during name resolution, exactly as a SQL engine would.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Table name or alias that produced the column, if any.
    pub qualifier: Option<String>,
    /// Column name (always stored lower-case).
    pub name: String,
    /// Declared or inferred type.
    pub data_type: DataType,
    /// Whether the column may hold NULLs.
    pub nullable: bool,
}

impl Column {
    /// Creates a nullable, unqualified column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            qualifier: None,
            name: normalize_ident(&name.into()),
            data_type,
            nullable: true,
        }
    }

    /// Creates a nullable column with a table qualifier.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Column {
        Column {
            qualifier: Some(normalize_ident(&qualifier.into())),
            name: normalize_ident(&name.into()),
            data_type,
            nullable: true,
        }
    }

    /// Marks the column NOT NULL (builder style).
    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }

    /// The fully qualified display name (`qualifier.name` or just `name`).
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// True if this column matches a reference `qualifier`/`name` pair. An unqualified
    /// reference matches any qualifier; a qualified reference must match exactly.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .map(|cq| cq.eq_ignore_ascii_case(q))
                .unwrap_or(false),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.qualified_name(), self.data_type)
    }
}

/// An ordered list of columns describing the output of a relational operator or the
/// layout of a stored table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// The columns, in output position order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// A schema over the given columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// The empty schema — the schema of the paper's `Single` relation `S` (one empty
    /// tuple, no attributes).
    pub fn empty() -> Schema {
        Schema { columns: vec![] }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True for the zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Finds the index of the column matching a (possibly qualified) reference.
    ///
    /// Returns an error if the reference is ambiguous (matches more than one column) or
    /// unknown.
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name = normalize_ident(name);
        let qualifier = qualifier.map(normalize_ident);
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(qualifier.as_deref(), &name))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(Error::Binding(format!(
                "column '{}' not found in schema [{}]",
                match &qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                },
                self
            ))),
            _ => Err(Error::Binding(format!(
                "column reference '{name}' is ambiguous in schema [{self}]"
            ))),
        }
    }

    /// Like [`Schema::index_of`] but returns `None` instead of an error when the column
    /// is missing (still errs on ambiguity... no: ambiguity also yields `None` here;
    /// callers that care about ambiguity use `index_of`).
    pub fn find(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.index_of(qualifier, name).ok()
    }

    /// Returns the column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Concatenates two schemas (the schema of a join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.clone());
        Schema { columns }
    }

    /// Returns a copy of the schema with every column's qualifier replaced by `alias`.
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        let alias = normalize_ident(alias);
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    qualifier: Some(alias.clone()),
                    ..c.clone()
                })
                .collect(),
        }
    }

    /// Returns a copy with every column marked nullable — used for the null-extended
    /// side of an outer join.
    pub fn as_nullable(&self) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    nullable: true,
                    ..c.clone()
                })
                .collect(),
        }
    }

    /// Column names in order (handy in tests).
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.columns.iter().map(|c| c.qualified_name()).collect();
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::qualified("c", "custkey", DataType::Int),
            Column::qualified("c", "name", DataType::Str),
            Column::qualified("o", "custkey", DataType::Int),
            Column::new("totalprice", DataType::Float),
        ])
    }

    #[test]
    fn qualified_lookup() {
        let s = sample();
        assert_eq!(s.index_of(Some("c"), "custkey").unwrap(), 0);
        assert_eq!(s.index_of(Some("o"), "custkey").unwrap(), 2);
        assert_eq!(s.index_of(None, "totalprice").unwrap(), 3);
    }

    #[test]
    fn ambiguous_unqualified_lookup_fails() {
        let s = sample();
        let err = s.index_of(None, "custkey").unwrap_err();
        assert_eq!(err.kind(), "binding");
    }

    #[test]
    fn unknown_column_fails() {
        let s = sample();
        assert_eq!(s.index_of(None, "nosuch").unwrap_err().kind(), "binding");
        assert!(s.find(None, "nosuch").is_none());
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = sample();
        assert_eq!(s.index_of(Some("C"), "CustKey").unwrap(), 0);
    }

    #[test]
    fn join_concatenates_and_requalify() {
        let a = Schema::new(vec![Column::new("x", DataType::Int)]);
        let b = Schema::new(vec![Column::new("y", DataType::Int)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        let q = j.with_qualifier("t");
        assert_eq!(q.index_of(Some("t"), "y").unwrap(), 1);
    }

    #[test]
    fn empty_schema_is_single_relation_schema() {
        assert!(Schema::empty().is_empty());
        assert_eq!(Schema::empty().len(), 0);
    }

    #[test]
    fn nullable_conversion() {
        let s = Schema::new(vec![Column::new("x", DataType::Int).not_null()]);
        assert!(!s.column(0).nullable);
        assert!(s.as_nullable().column(0).nullable);
    }
}
