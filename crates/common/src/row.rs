//! Row (tuple) representation.

use std::fmt;

use crate::{Schema, Value};

/// A tuple of values. Rows are schema-less by themselves; the accompanying [`Schema`]
/// gives names and types to the positions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    /// The field values, in schema position order.
    pub values: Vec<Value>,
}

impl Row {
    /// A row over the given values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// The empty row — the single tuple of the paper's `Single` relation.
    pub fn empty() -> Row {
        Row { values: vec![] }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the zero-column row.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at position `idx` (panics out of range).
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Concatenates two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Row { values }
    }

    /// A row of `n` NULLs — the null-extension used by outer joins.
    pub fn nulls(n: usize) -> Row {
        Row {
            values: vec![Value::Null; n],
        }
    }

    /// Pretty-prints the row against a schema, `name=value` pairs.
    pub fn display_with(&self, schema: &Schema) -> String {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let name = schema
                    .columns
                    .get(i)
                    .map(|c| c.qualified_name())
                    .unwrap_or_else(|| format!("#{i}"));
                format!("{name}={v}")
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "({})", parts.join(", "))
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Column, DataType};

    #[test]
    fn concat_and_nulls() {
        let a = Row::new(vec![Value::Int(1), Value::str("x")]);
        let b = Row::nulls(2);
        let c = a.concat(&b);
        assert_eq!(c.len(), 4);
        assert!(c.get(2).is_null());
        assert_eq!(c.get(0), &Value::Int(1));
    }

    #[test]
    fn empty_row() {
        assert!(Row::empty().is_empty());
        assert_eq!(Row::empty().to_string(), "()");
    }

    #[test]
    fn display_with_schema() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Str),
        ]);
        let r = Row::new(vec![Value::Int(7), Value::str("hi")]);
        assert_eq!(r.display_with(&schema), "k=7, v='hi'");
    }
}
