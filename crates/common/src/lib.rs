//! Common data model shared by every crate in the UDF-decorrelation workspace.
//!
//! This crate defines the dynamically typed [`Value`], the [`DataType`] lattice used for
//! (light-weight) type checking, relation [`Schema`]s, [`Row`]s and the workspace-wide
//! [`Error`] type. It deliberately has no dependencies so that every other crate —
//! storage, algebra, parser, rewrite engine, executor — can share one vocabulary.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod fnv;
pub mod rng;
pub mod row;
pub mod schema;
pub mod value;

pub use error::{Error, Result};
pub use fnv::{FnvBuildHasher, FnvHasher};
pub use rng::SmallRng;
pub use row::Row;
pub use schema::{Column, Schema};
pub use value::{DataType, Value};

/// Normalises an identifier the way the engine treats all identifiers: SQL identifiers
/// are case-insensitive, so everything is folded to lower case.
pub fn normalize_ident(s: &str) -> String {
    s.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_folds_case() {
        assert_eq!(normalize_ident("CustKey"), "custkey");
        assert_eq!(normalize_ident("ORDERS"), "orders");
        assert_eq!(normalize_ident("already_lower"), "already_lower");
    }
}
