//! Dynamically typed values and their static types.
//!
//! The engine is an in-memory interpreter, so a single enum covers every SQL value the
//! paper's examples need: integers, floats, strings, booleans and NULL. The paper's `⊥`
//! (value of an uninitialised variable, Section III) is represented as [`Value::Null`].

use std::cmp::Ordering;
use std::fmt;

use crate::{Error, Result};

/// Static type of a column, parameter or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`int`, `bigint`).
    Int,
    /// 64-bit IEEE float (`float`, `decimal` — approximated).
    Float,
    /// Variable length string (`char(n)`, `varchar`, `text`).
    Str,
    /// Boolean (`bool`, also the type of predicates).
    Bool,
    /// The type of NULL literals / `⊥` before any other type information is known.
    Null,
}

impl DataType {
    /// Returns the default "uninitialised" value for the type — the paper's `⊥`.
    ///
    /// We follow the convention of most procedural SQL dialects and use NULL for every
    /// type rather than a language specific default.
    pub fn uninitialized(&self) -> Value {
        Value::Null
    }

    /// True if a value of type `other` can be assigned/compared to this type without an
    /// explicit cast (ints promote to floats, NULL unifies with everything).
    pub fn is_compatible_with(&self, other: DataType) -> bool {
        if *self == other || *self == DataType::Null || other == DataType::Null {
            return true;
        }
        matches!(
            (*self, other),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int)
        )
    }

    /// Least common type of two types (used for CASE branches, unions, arithmetic).
    pub fn unify(&self, other: DataType) -> Result<DataType> {
        match (*self, other) {
            (a, b) if a == b => Ok(a),
            (DataType::Null, b) => Ok(b),
            (a, DataType::Null) => Ok(a),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                Ok(DataType::Float)
            }
            (a, b) => Err(Error::TypeError(format!("incompatible types {a} and {b}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "varchar",
            DataType::Bool => "bool",
            DataType::Null => "null",
        };
        write!(f, "{s}")
    }
}

/// A runtime SQL value.
///
/// `Value` implements three-valued-logic aware comparison helpers ([`Value::sql_eq`],
/// [`Value::sql_cmp`]) in addition to a total order ([`Ord`] via [`Value::total_cmp`])
/// used for sorting and grouping, where NULLs sort first and compare equal to each other.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
}

impl Value {
    /// Constructs a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The dynamic type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean for predicate evaluation. NULL maps to `None`
    /// (unknown) per SQL three-valued logic.
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(Error::TypeError(format!("expected boolean, found {other}"))),
        }
    }

    /// Returns the value as an i64 if it is an integer (or integral float).
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::TypeError(format!("expected int, found {other}"))),
        }
    }

    /// Returns the value as an f64 if it is numeric.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(Error::TypeError(format!("expected float, found {other}"))),
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::TypeError(format!("expected string, found {other}"))),
        }
    }

    /// SQL equality: NULL compared with anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL comparison with three-valued logic: returns `None` if either side is NULL or
    /// the types are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (af, bf) = (a.as_float().ok()?, b.as_float().ok()?);
                af.partial_cmp(&bf)
            }
        }
    }

    /// Total comparison used for sorting and group-by keys: NULLs compare equal to each
    /// other and sort before every non-NULL value; mixed numeric types compare by value;
    /// different non-comparable types order by a fixed type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (af, bf) = (a.as_float().unwrap(), b.as_float().unwrap());
                af.partial_cmp(&bf).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A hashable group-by / join key representation of the value in which `Int(2)` and
    /// `Float(2.0)` hash identically and all NULLs collide.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Float((*i as f64).to_bits()),
            Value::Float(f) => GroupKey::Float(f.to_bits()),
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }

    /// Arithmetic addition with numeric promotion. NULL propagates.
    pub fn add(&self, other: &Value) -> Result<Value> {
        Value::numeric_binop(self, other, "+", |a, b| a + b, |a, b| a.checked_add(b))
    }

    /// Arithmetic subtraction with numeric promotion. NULL propagates.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        Value::numeric_binop(self, other, "-", |a, b| a - b, |a, b| a.checked_sub(b))
    }

    /// Arithmetic multiplication with numeric promotion. NULL propagates.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        Value::numeric_binop(self, other, "*", |a, b| a * b, |a, b| a.checked_mul(b))
    }

    /// Arithmetic division. Integer division by zero is an error; the result of integer
    /// division is a float (as in most SQL dialects for `/` on decimals).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let b = other.as_float()?;
        if b == 0.0 {
            return Err(Error::Execution("division by zero".into()));
        }
        Ok(Value::Float(self.as_float()? / b))
    }

    /// Remainder on integers. NULL propagates.
    pub fn modulo(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let b = other.as_int()?;
        if b == 0 {
            return Err(Error::Execution("division by zero".into()));
        }
        Ok(Value::Int(self.as_int()? % b))
    }

    /// String concatenation (`||`). NULL propagates.
    pub fn concat(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Str(format!(
            "{}{}",
            self.display_raw(),
            other.display_raw()
        )))
    }

    fn numeric_binop(
        a: &Value,
        b: &Value,
        op: &str,
        ff: impl Fn(f64, f64) -> f64,
        fi: impl Fn(i64, i64) -> Option<i64>,
    ) -> Result<Value> {
        match (a, b) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(x), Value::Int(y)) => fi(*x, *y)
                .map(Value::Int)
                .ok_or_else(|| Error::Execution(format!("integer overflow in {x} {op} {y}"))),
            _ => Ok(Value::Float(ff(a.as_float()?, b.as_float()?))),
        }
    }

    /// Renders the value without quoting (used for concatenation and display).
    pub fn display_raw(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{:.1}", f)
                } else {
                    f.to_string()
                }
            }
            Value::Str(s) => s.clone(),
        }
    }

    /// Renders the value as a SQL literal (strings quoted, suitable for generated SQL).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            other => other.display_raw(),
        }
    }

    /// Casts the value to the requested type, following permissive SQL casting rules.
    pub fn cast(&self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v, DataType::Null) => Ok(v.clone()),
            (Value::Int(i), DataType::Int) => Ok(Value::Int(*i)),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Float) => Ok(Value::Float(*f)),
            (Value::Float(f), DataType::Int) => Ok(Value::Int(*f as i64)),
            (Value::Bool(b), DataType::Bool) => Ok(Value::Bool(*b)),
            (Value::Str(s), DataType::Str) => Ok(Value::Str(s.clone())),
            (Value::Str(s), DataType::Int) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::TypeError(format!("cannot cast '{s}' to int"))),
            (Value::Str(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::TypeError(format!("cannot cast '{s}' to float"))),
            (v, DataType::Str) => Ok(Value::Str(v.display_raw())),
            (v, t) => Err(Error::TypeError(format!("cannot cast {v} to {t}"))),
        }
    }
}

/// Hashable/equatable key form of a [`Value`], used for hash joins and hash aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// SQL NULL (all NULLs land in one group).
    Null,
    /// A boolean key.
    Bool(bool),
    /// Numeric values are normalised to the bit pattern of their f64 representation so
    /// that `Int(2)` and `Float(2.0)` collide.
    Float(u64),
    /// A string key.
    Str(String),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            other => write!(f, "{}", other.display_raw()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_unify() {
        assert_eq!(
            DataType::Int.unify(DataType::Float).unwrap(),
            DataType::Float
        );
        assert_eq!(DataType::Null.unify(DataType::Str).unwrap(), DataType::Str);
        assert_eq!(DataType::Int.unify(DataType::Int).unwrap(), DataType::Int);
        assert!(DataType::Int.unify(DataType::Str).is_err());
    }

    #[test]
    fn data_type_compatibility() {
        assert!(DataType::Int.is_compatible_with(DataType::Float));
        assert!(DataType::Str.is_compatible_with(DataType::Null));
        assert!(!DataType::Bool.is_compatible_with(DataType::Int));
    }

    #[test]
    fn sql_eq_with_nulls_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn numeric_promotion_in_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_cmp_null_first_and_equal() {
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(5)),
            Ordering::Greater
        );
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Float(0.5)).unwrap(),
            Value::Float(1.0)
        );
        assert_eq!(Value::Int(7).modulo(&Value::Int(3)).unwrap(), Value::Int(1));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).sub(&Value::Int(1)).is_err());
    }

    #[test]
    fn casting() {
        assert_eq!(
            Value::str("42").cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(42).cast(DataType::Str).unwrap(),
            Value::str("42")
        );
        assert_eq!(
            Value::Float(1.9).cast(DataType::Int).unwrap(),
            Value::Int(1)
        );
        assert!(Value::str("abc").cast(DataType::Int).is_err());
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn group_key_unifies_int_and_float() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_ne!(Value::Int(2).group_key(), Value::Int(3).group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
    }

    #[test]
    fn sql_literal_rendering() {
        assert_eq!(Value::str("O'Brien").to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Int(5).to_sql_literal(), "5");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
    }
}
