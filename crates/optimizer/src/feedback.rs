//! Runtime feedback: measured cardinalities and UDF invocation costs folded back into
//! the cost model.
//!
//! After each query the engine records two kinds of ground truth here:
//!
//! * **cardinality feedback** — the executed plan's estimated root cardinality vs the
//!   actual row count, per plan fingerprint, summarized as a [`q_error`];
//! * **UDF cost feedback** — the measured wall-clock per invocation of every UDF the
//!   query executed iteratively, vs the static body-cost estimate the model used.
//!
//! The strategy-choice pass consults the learned UDF costs (converted to row-op units
//! through [`CostParams::row_op_seconds`]) *instead of* the static estimate, so the
//! iterative-vs-decorrelated decision is made with measured numbers once a workload
//! has run. When the recorded q-error of a fingerprint first exceeds the configured
//! threshold, the store flags it for plan-cache invalidation and bumps its
//! [`generation`](FeedbackStore::generation) — the plan cache folds that generation
//! into its key for cost-based pipelines, so *every* stale cost-based entry is
//! re-decided with the calibrated numbers, while pipelines that ignore the cost model
//! (forced iterative/decorrelated) keep their entries.
//!
//! [`q_error`]: decorr_stats::q_error
//! [`CostParams::row_op_seconds`]: crate::cost::CostParams::row_op_seconds

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Duration;

use decorr_common::normalize_ident;
use decorr_stats::q_error;

/// Thresholds and calibration of the feedback loop.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackConfig {
    /// A fingerprint whose recorded q-error (cardinality or UDF cost) exceeds this is
    /// flagged: its plan-cache entries are invalidated and the store generation moves
    /// so cost-based decisions re-run with the learned numbers.
    pub q_error_threshold: f64,
    /// Minimum invocations before a UDF's measured cost is trusted (guards against
    /// one-off timing noise on nearly-free functions).
    pub min_udf_invocations: u64,
    /// Minimum total measured wall-clock before a UDF's cost is trusted.
    pub min_udf_total: Duration,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            q_error_threshold: 4.0,
            min_udf_invocations: 8,
            min_udf_total: Duration::from_millis(1),
        }
    }
}

/// Recorded estimate-vs-actual state of one query fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFeedback {
    pub fingerprint: u64,
    /// Most recent estimated root cardinality.
    pub estimated_rows: f64,
    /// Most recent actual root row count.
    pub actual_rows: u64,
    /// q-error of the most recent execution (cardinality only).
    pub q_error: f64,
    /// Worst q-error ever recorded for this fingerprint (cardinality or UDF cost).
    pub max_q_error: f64,
    pub executions: u64,
    /// True once this fingerprint triggered a plan-cache invalidation; further
    /// executions with the same feedback state must not thrash the cache.
    pub invalidated: bool,
}

/// Learned cost state of one UDF.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfCostFeedback {
    pub name: String,
    pub invocations: u64,
    pub total: Duration,
    /// Static per-invocation estimate (row-op units) the model would use.
    pub static_units: f64,
    /// Measured mean wall-clock per invocation.
    pub mean: Duration,
    /// q-error between the static estimate and the measured cost (in units).
    pub cost_q_error: f64,
}

/// Counters for reporting (EXPLAIN ANALYZE, benches, tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackStats {
    pub queries_recorded: u64,
    pub udfs_tracked: usize,
    pub invalidations_flagged: u64,
    pub generation: u64,
}

#[derive(Debug, Default)]
struct UdfEntry {
    invocations: u64,
    total: Duration,
    static_units: f64,
    /// Whether this UDF's learned cost already contributed a generation bump.
    flagged: bool,
    /// Memo/dedup cache hits observed for this UDF (calls answered without running
    /// the body — *not* included in `invocations`).
    cache_hits: u64,
    /// Whether this UDF's learned dedup fraction already contributed a generation
    /// bump (fired once, when the fraction first becomes trusted and significant).
    dedup_flagged: bool,
    /// Filter-predicate outcomes: rows this UDF's predicate was evaluated for, and
    /// how many of those passed.
    predicate_evaluated: u64,
    predicate_passed: u64,
}

/// The concurrency-safe feedback store, owned by the engine (one per database) and
/// consulted by the strategy-choice pass through the [`PassManager`].
///
/// [`PassManager`]: crate::pass::PassManager
#[derive(Debug)]
pub struct FeedbackStore {
    config: FeedbackConfig,
    queries: RwLock<HashMap<u64, QueryFeedback>>,
    udfs: RwLock<BTreeMap<String, UdfEntry>>,
    /// Bumped whenever learned state changes in a way that can change a cost-based
    /// decision. Starts at 1 — the plan cache uses the generation only for
    /// feedback-sensitive pipelines.
    generation: AtomicU64,
    queries_recorded: AtomicU64,
    invalidations_flagged: AtomicU64,
}

impl Default for FeedbackStore {
    fn default() -> Self {
        FeedbackStore::new()
    }
}

impl FeedbackStore {
    pub fn new() -> FeedbackStore {
        FeedbackStore::with_config(FeedbackConfig::default())
    }

    pub fn with_config(config: FeedbackConfig) -> FeedbackStore {
        FeedbackStore {
            config,
            queries: RwLock::new(HashMap::new()),
            udfs: RwLock::new(BTreeMap::new()),
            generation: AtomicU64::new(1),
            queries_recorded: AtomicU64::new(0),
            invalidations_flagged: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &FeedbackConfig {
        &self.config
    }

    /// Current feedback generation (part of the plan-cache key for cost-based
    /// pipelines).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Records one executed query's estimated vs actual root cardinality. Returns the
    /// cardinality q-error of this execution.
    pub fn record_query(&self, fingerprint: u64, estimated_rows: f64, actual_rows: u64) -> f64 {
        let q = q_error(estimated_rows, actual_rows as f64);
        let mut queries = self.queries.write().expect("feedback store poisoned");
        let entry = queries.entry(fingerprint).or_insert(QueryFeedback {
            fingerprint,
            estimated_rows,
            actual_rows,
            q_error: q,
            max_q_error: q,
            executions: 0,
            invalidated: false,
        });
        entry.estimated_rows = estimated_rows;
        entry.actual_rows = actual_rows;
        entry.q_error = q;
        entry.max_q_error = entry.max_q_error.max(q);
        entry.executions += 1;
        self.queries_recorded.fetch_add(1, Ordering::Relaxed);
        q
    }

    /// Records measured wall-clock for `invocations` executions of a UDF, together
    /// with the static per-invocation estimate the cost model would use, and returns
    /// the cost q-error (1.0 while below the trust floors).
    ///
    /// When a trusted measurement first crosses the q-error threshold, the store
    /// generation is bumped: cost-based plan-cache entries decided with the old
    /// numbers become unreachable and are re-decided on their next lookup.
    pub fn record_udf_timing(
        &self,
        name: &str,
        invocations: u64,
        total: Duration,
        static_units: Option<f64>,
        row_op_seconds: f64,
    ) -> f64 {
        if invocations == 0 {
            return 1.0;
        }
        let key = normalize_ident(name);
        let mut udfs = self.udfs.write().expect("feedback store poisoned");
        let entry = udfs.entry(key).or_default();
        entry.invocations += invocations;
        entry.total += total;
        if let Some(static_units) = static_units {
            entry.static_units = static_units;
        }
        if entry.invocations < self.config.min_udf_invocations
            || entry.total < self.config.min_udf_total
            || entry.static_units <= 0.0
        {
            return 1.0;
        }
        let learned_units = learned_units(entry, row_op_seconds);
        let q = q_error(entry.static_units, learned_units);
        if q > self.config.q_error_threshold && !entry.flagged {
            entry.flagged = true;
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        q
    }

    /// Records one query's dedup outcome for a UDF: `evaluated` calls actually ran
    /// the body (already counted by [`record_udf_timing`](Self::record_udf_timing))
    /// while `hits` were answered from the memo/dedup caches. When the learned dedup
    /// fraction first becomes trusted *and* meaningful (< 0.5 — batching answers at
    /// least half the calls), the store generation is bumped once so cost-based
    /// plan-cache entries re-decide with effective invocation counts.
    pub fn record_udf_dedup(&self, name: &str, evaluated: u64, hits: u64) {
        if evaluated + hits == 0 {
            return;
        }
        let key = normalize_ident(name);
        let mut udfs = self.udfs.write().expect("feedback store poisoned");
        let entry = udfs.entry(key).or_default();
        entry.cache_hits += hits;
        let calls = entry.invocations + entry.cache_hits;
        if calls < self.config.min_udf_invocations || entry.dedup_flagged {
            return;
        }
        let fraction = entry.invocations as f64 / calls as f64;
        if fraction < 0.5 {
            entry.dedup_flagged = true;
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The learned fraction of a UDF's calls that actually evaluate the body (the
    /// rest are dedup/memo hits), for
    /// [`CostParams::udf_dedup_fractions`](crate::cost::CostParams::with_udf_dedup_fractions).
    /// Only UDFs with a trusted number of observed calls are reported.
    pub fn udf_dedup_fractions(&self) -> BTreeMap<String, f64> {
        let udfs = self.udfs.read().expect("feedback store poisoned");
        udfs.iter()
            .filter(|(_, e)| e.invocations + e.cache_hits >= self.config.min_udf_invocations)
            .map(|(name, e)| {
                let calls = (e.invocations + e.cache_hits) as f64;
                (name.clone(), e.invocations as f64 / calls)
            })
            .collect()
    }

    /// Records filter-predicate outcomes for a UDF-bearing conjunct: how many rows it
    /// was evaluated for and how many passed. Feeds the executor's cost-ordered
    /// predicate evaluation on later queries.
    pub fn record_udf_predicate(&self, name: &str, evaluated: u64, passed: u64) {
        if evaluated == 0 {
            return;
        }
        let key = normalize_ident(name);
        let mut udfs = self.udfs.write().expect("feedback store poisoned");
        let entry = udfs.entry(key).or_default();
        entry.predicate_evaluated += evaluated;
        entry.predicate_passed += passed.min(evaluated);
    }

    /// The observed pass-rate of every UDF-bearing predicate with a trusted number of
    /// evaluations.
    pub fn udf_selectivities(&self) -> BTreeMap<String, f64> {
        let udfs = self.udfs.read().expect("feedback store poisoned");
        udfs.iter()
            .filter(|(_, e)| e.predicate_evaluated >= self.config.min_udf_invocations)
            .map(|(name, e)| {
                (
                    name.clone(),
                    e.predicate_passed as f64 / e.predicate_evaluated as f64,
                )
            })
            .collect()
    }

    /// Measured mean wall-clock per *evaluated* invocation of every UDF with any
    /// measurement at all (no trust floor — a rough early number already orders
    /// predicates better than no number).
    pub fn udf_mean_seconds(&self) -> BTreeMap<String, f64> {
        let udfs = self.udfs.read().expect("feedback store poisoned");
        udfs.iter()
            .filter(|(_, e)| e.invocations > 0)
            .map(|(name, e)| (name.clone(), e.total.as_secs_f64() / e.invocations as f64))
            .collect()
    }

    /// Marks a query fingerprint whose observed q-error exceeded the threshold for
    /// plan-cache invalidation. Returns true exactly once per fingerprint — callers
    /// invalidate on true, so a persistently misestimated shape cannot thrash the
    /// cache by invalidating itself on every execution.
    ///
    /// Flagging does *not* move the store generation: the generation tracks changes
    /// to the learned state (see [`record_udf_timing`](Self::record_udf_timing)),
    /// while a flag only evicts the flagged shape's own cost-based entry so its next
    /// optimize re-reads whatever has been learned.
    pub fn flag_for_invalidation(&self, fingerprint: u64, observed_q_error: f64) -> bool {
        if observed_q_error <= self.config.q_error_threshold {
            return false;
        }
        let mut queries = self.queries.write().expect("feedback store poisoned");
        let entry = queries.entry(fingerprint).or_insert(QueryFeedback {
            fingerprint,
            estimated_rows: 0.0,
            actual_rows: 0,
            q_error: observed_q_error,
            max_q_error: observed_q_error,
            executions: 0,
            invalidated: false,
        });
        entry.max_q_error = entry.max_q_error.max(observed_q_error);
        if entry.invalidated {
            return false;
        }
        entry.invalidated = true;
        self.invalidations_flagged.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The learned per-invocation costs (row-op units) of every trusted UDF, for
    /// [`CostParams::udf_cost_overrides`](crate::cost::CostParams::udf_cost_overrides).
    pub fn udf_cost_overrides(&self, row_op_seconds: f64) -> BTreeMap<String, f64> {
        let udfs = self.udfs.read().expect("feedback store poisoned");
        udfs.iter()
            .filter(|(_, e)| {
                e.invocations >= self.config.min_udf_invocations
                    && e.total >= self.config.min_udf_total
            })
            .map(|(name, e)| (name.clone(), learned_units(e, row_op_seconds)))
            .collect()
    }

    /// Recorded state of one query fingerprint.
    pub fn query_feedback(&self, fingerprint: u64) -> Option<QueryFeedback> {
        self.queries
            .read()
            .expect("feedback store poisoned")
            .get(&fingerprint)
            .cloned()
    }

    /// Learned state of every tracked UDF, by name.
    pub fn udf_feedback(&self, row_op_seconds: f64) -> Vec<UdfCostFeedback> {
        let udfs = self.udfs.read().expect("feedback store poisoned");
        udfs.iter()
            .map(|(name, e)| UdfCostFeedback {
                name: name.clone(),
                invocations: e.invocations,
                total: e.total,
                static_units: e.static_units,
                mean: if e.invocations > 0 {
                    e.total / e.invocations as u32
                } else {
                    Duration::ZERO
                },
                cost_q_error: if e.static_units > 0.0 && e.invocations > 0 {
                    q_error(e.static_units, learned_units(e, row_op_seconds))
                } else {
                    1.0
                },
            })
            .collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FeedbackStats {
        FeedbackStats {
            queries_recorded: self.queries_recorded.load(Ordering::Relaxed),
            udfs_tracked: self.udfs.read().expect("feedback store poisoned").len(),
            invalidations_flagged: self.invalidations_flagged.load(Ordering::Relaxed),
            generation: self.generation(),
        }
    }
}

/// Serializable learned state of one UDF — the persisted form of the store's
/// private per-UDF entry (all counters, trust flags included, so a restored store
/// neither re-bumps its generation for already-flagged UDFs nor forgets a flag).
#[derive(Debug, Clone, PartialEq)]
pub struct UdfFeedbackState {
    /// Normalized UDF name.
    pub name: String,
    /// Body evaluations measured so far.
    pub invocations: u64,
    /// Total measured wall-clock, in nanoseconds (`Duration` is not portably
    /// serializable; nanos round-trip exactly for any realistic total).
    pub total_nanos: u64,
    /// Static per-invocation estimate (row-op units) last reported to the store.
    pub static_units: f64,
    /// Whether the learned cost already contributed a generation bump.
    pub flagged: bool,
    /// Memo/dedup cache hits observed.
    pub cache_hits: u64,
    /// Whether the learned dedup fraction already contributed a generation bump.
    pub dedup_flagged: bool,
    /// Rows this UDF's predicate was evaluated for.
    pub predicate_evaluated: u64,
    /// How many of those evaluations passed.
    pub predicate_passed: u64,
}

/// The full serializable state of a [`FeedbackStore`] — what a snapshot persists so
/// learned UDF costs, dedup fractions and predicate selectivities (and the strategy
/// flips they cause) survive a restart without re-execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeedbackState {
    /// Store generation at export time (≥ 1 for any live store).
    pub generation: u64,
    /// Lifetime count of recorded query executions.
    pub queries_recorded: u64,
    /// Lifetime count of plan-cache invalidation flags.
    pub invalidations_flagged: u64,
    /// Per-fingerprint cardinality feedback, sorted by fingerprint for a
    /// deterministic encoding.
    pub queries: Vec<QueryFeedback>,
    /// Per-UDF learned state, sorted by name.
    pub udfs: Vec<UdfFeedbackState>,
}

impl FeedbackStore {
    /// Exports the store's complete learned state in deterministic order.
    pub fn export_state(&self) -> FeedbackState {
        let queries_map = self.queries.read().expect("feedback store poisoned");
        let mut queries: Vec<QueryFeedback> = queries_map.values().cloned().collect();
        queries.sort_by_key(|q| q.fingerprint);
        drop(queries_map);
        let udfs = self
            .udfs
            .read()
            .expect("feedback store poisoned")
            .iter()
            .map(|(name, e)| UdfFeedbackState {
                name: name.clone(),
                invocations: e.invocations,
                total_nanos: e.total.as_nanos().min(u64::MAX as u128) as u64,
                static_units: e.static_units,
                flagged: e.flagged,
                cache_hits: e.cache_hits,
                dedup_flagged: e.dedup_flagged,
                predicate_evaluated: e.predicate_evaluated,
                predicate_passed: e.predicate_passed,
            })
            .collect();
        FeedbackState {
            generation: self.generation(),
            queries_recorded: self.queries_recorded.load(Ordering::Relaxed),
            invalidations_flagged: self.invalidations_flagged.load(Ordering::Relaxed),
            queries,
            udfs,
        }
    }

    /// Replaces the store's learned state wholesale (the snapshot-restore path).
    /// The imported generation is clamped to ≥ 1, the floor every live store starts
    /// at, so plan-cache keys derived from it stay well-formed.
    pub fn import_state(&self, state: FeedbackState) {
        let mut queries = self.queries.write().expect("feedback store poisoned");
        queries.clear();
        for q in state.queries {
            queries.insert(q.fingerprint, q);
        }
        drop(queries);
        let mut udfs = self.udfs.write().expect("feedback store poisoned");
        udfs.clear();
        for u in state.udfs {
            udfs.insert(
                normalize_ident(&u.name),
                UdfEntry {
                    invocations: u.invocations,
                    total: Duration::from_nanos(u.total_nanos),
                    static_units: u.static_units,
                    flagged: u.flagged,
                    cache_hits: u.cache_hits,
                    dedup_flagged: u.dedup_flagged,
                    predicate_evaluated: u.predicate_evaluated,
                    predicate_passed: u.predicate_passed,
                },
            );
        }
        drop(udfs);
        self.generation
            .store(state.generation.max(1), Ordering::Relaxed);
        self.queries_recorded
            .store(state.queries_recorded, Ordering::Relaxed);
        self.invalidations_flagged
            .store(state.invalidations_flagged, Ordering::Relaxed);
    }
}

/// Measured mean wall-clock per invocation converted to abstract row-op units.
fn learned_units(entry: &UdfEntry, row_op_seconds: f64) -> f64 {
    let mean_seconds = entry.total.as_secs_f64() / entry.invocations.max(1) as f64;
    (mean_seconds / row_op_seconds.max(1e-12)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_feedback_accumulates_and_reports_q_errors() {
        let store = FeedbackStore::new();
        assert_eq!(store.generation(), 1);
        let q = store.record_query(42, 1000.0, 10);
        assert_eq!(q, 100.0);
        let state = store.query_feedback(42).unwrap();
        assert_eq!(state.actual_rows, 10);
        assert_eq!(state.executions, 1);
        assert!(!state.invalidated);
        // A later, accurate execution keeps the historical max.
        store.record_query(42, 12.0, 10);
        let state = store.query_feedback(42).unwrap();
        assert_eq!(state.max_q_error, 100.0);
        assert!(state.q_error < 2.0);
        assert_eq!(store.stats().queries_recorded, 2);
    }

    #[test]
    fn invalidation_flags_fire_exactly_once() {
        let store = FeedbackStore::new();
        store.record_query(7, 500.0, 5);
        assert!(!store.flag_for_invalidation(7, 2.0), "below threshold");
        assert!(store.flag_for_invalidation(7, 100.0));
        assert_eq!(
            store.generation(),
            1,
            "flags evict one shape; only learned-state changes move the generation"
        );
        assert!(
            !store.flag_for_invalidation(7, 100.0),
            "same state must not re-flag"
        );
        assert_eq!(store.stats().invalidations_flagged, 1);
    }

    #[test]
    fn udf_timings_learn_costs_once_past_the_trust_floors() {
        let store = FeedbackStore::new();
        let row_op = 1e-6;
        // Below both floors: not trusted, no override.
        store.record_udf_timing("cheap", 2, Duration::from_micros(10), Some(5.0), row_op);
        assert!(store.udf_cost_overrides(row_op).is_empty());
        // Past the floors: 10 ms over 10 invocations → 1 ms ≈ 1000 units vs 5 static.
        let q = store.record_udf_timing(
            "Expensive",
            10,
            Duration::from_millis(10),
            Some(5.0),
            row_op,
        );
        assert!(q > 100.0, "cost q-error {q}");
        let overrides = store.udf_cost_overrides(row_op);
        assert!(
            (overrides["expensive"] - 1000.0).abs() < 1.0,
            "learned {overrides:?} (names normalized)"
        );
        assert!(store.generation() > 1, "mispriced UDF bumps the generation");
        let generation = store.generation();
        // More of the same measurements do not keep bumping.
        store.record_udf_timing(
            "expensive",
            10,
            Duration::from_millis(10),
            Some(5.0),
            row_op,
        );
        assert_eq!(store.generation(), generation);
        let feedback = store.udf_feedback(row_op);
        let expensive = feedback.iter().find(|f| f.name == "expensive").unwrap();
        assert_eq!(expensive.invocations, 20);
        assert!(expensive.cost_q_error > 100.0);
    }

    #[test]
    fn dedup_feedback_learns_effective_fractions_and_bumps_once() {
        let store = FeedbackStore::new();
        let row_op = 1e-6;
        // 4 evaluated + 2 hits: below the trust floor, nothing reported.
        store.record_udf_timing("f", 4, Duration::from_millis(4), Some(1000.0), row_op);
        store.record_udf_dedup("f", 4, 2);
        assert!(store.udf_dedup_fractions().is_empty());
        let before = store.generation();
        // 4 more evaluated + 12 hits: 8 evaluated of 22 calls ≈ 0.36 < 0.5 → one bump.
        store.record_udf_timing("f", 4, Duration::from_millis(4), Some(1000.0), row_op);
        store.record_udf_dedup("F", 4, 12);
        let fractions = store.udf_dedup_fractions();
        assert!((fractions["f"] - 8.0 / 22.0).abs() < 1e-9, "{fractions:?}");
        assert_eq!(store.generation(), before + 1);
        // Further hits refine the fraction without re-bumping.
        store.record_udf_dedup("f", 0, 10);
        assert_eq!(store.generation(), before + 1);
        assert!(fractions["f"] > store.udf_dedup_fractions()["f"]);
    }

    #[test]
    fn predicate_feedback_reports_trusted_pass_rates() {
        let store = FeedbackStore::new();
        store.record_udf_predicate("p", 4, 1);
        assert!(
            store.udf_selectivities().is_empty(),
            "below the trust floor"
        );
        store.record_udf_predicate("P", 12, 3);
        let selectivities = store.udf_selectivities();
        assert!(
            (selectivities["p"] - 0.25).abs() < 1e-9,
            "{selectivities:?}"
        );
        // Zero evaluations are a no-op; passed is clamped to evaluated.
        store.record_udf_predicate("p", 0, 99);
        assert!((store.udf_selectivities()["p"] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mean_seconds_require_no_trust_floor() {
        let store = FeedbackStore::new();
        store.record_udf_timing("g", 2, Duration::from_millis(8), None, 1e-6);
        let means = store.udf_mean_seconds();
        assert!((means["g"] - 4e-3).abs() < 1e-9, "{means:?}");
    }

    #[test]
    fn exported_state_round_trips_into_a_fresh_store() {
        let store = FeedbackStore::new();
        let row_op = 1e-6;
        store.record_query(42, 1000.0, 10);
        store.record_query(7, 10.0, 9);
        assert!(store.flag_for_invalidation(42, 100.0));
        store.record_udf_timing(
            "expensive",
            10,
            Duration::from_millis(10),
            Some(5.0),
            row_op,
        );
        store.record_udf_dedup("expensive", 0, 90);
        store.record_udf_predicate("expensive", 100, 25);
        let state = store.export_state();
        assert!(state.generation > 1);
        assert_eq!(state.queries.len(), 2);
        assert_eq!(
            state.queries[0].fingerprint, 7,
            "queries export sorted by fingerprint"
        );

        let restored = FeedbackStore::new();
        restored.import_state(state.clone());
        assert_eq!(restored.generation(), store.generation());
        assert_eq!(restored.stats(), store.stats());
        assert_eq!(
            restored.udf_cost_overrides(row_op),
            store.udf_cost_overrides(row_op),
            "learned costs survive without re-execution"
        );
        assert_eq!(restored.udf_dedup_fractions(), store.udf_dedup_fractions());
        assert_eq!(restored.udf_selectivities(), store.udf_selectivities());
        assert_eq!(restored.query_feedback(42), store.query_feedback(42));
        // Export is deterministic: re-exporting unchanged state is identical.
        assert_eq!(restored.export_state(), state);
        // Trust flags survive: re-recording the same mispriced measurements must not
        // re-bump the restored generation.
        let generation = restored.generation();
        restored.record_udf_timing(
            "expensive",
            10,
            Duration::from_millis(10),
            Some(5.0),
            row_op,
        );
        assert_eq!(restored.generation(), generation);
        // An empty/default state clamps the generation to the live floor.
        let blank = FeedbackStore::new();
        blank.import_state(FeedbackState::default());
        assert_eq!(blank.generation(), 1);
    }

    #[test]
    fn accurate_udf_costs_never_bump_the_generation() {
        let store = FeedbackStore::new();
        let row_op = 1e-6;
        // Measured ≈ static: q ≈ 1, below the threshold (and past both trust floors).
        store.record_udf_timing(
            "fair",
            400,
            Duration::from_micros(400 * 5),
            Some(5.0),
            row_op,
        );
        assert_eq!(store.generation(), 1);
        assert_eq!(store.udf_cost_overrides(row_op).len(), 1);
    }
}
