//! Cardinality estimation and a simple cost model over logical plans.

use decorr_algebra::{BinaryOp, JoinKind, RelExpr, ScalarExpr};
use decorr_storage::Catalog;
use decorr_udf::{FunctionRegistry, Statement};

/// The estimated cardinality and abstract cost (row operations) of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    pub cardinality: f64,
    pub cost: f64,
}

impl CostEstimate {
    fn new(cardinality: f64, cost: f64) -> CostEstimate {
        CostEstimate {
            cardinality: cardinality.max(1.0),
            cost: cost.max(0.0),
        }
    }
}

/// Runtime parameters the cost model calibrates against — today just the executor's
/// worker-pool size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// The executor's `ExecConfig::parallelism`. Data-parallel operators (scans,
    /// filters, projections, hash joins, hash aggregation and the morsel-parallel
    /// Apply loops) divide their incremental cost by the effective speedup.
    pub parallelism: usize,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams { parallelism: 1 }
    }
}

/// Measured morsel-pool scaling is sub-linear (merge overheads and skew), so each
/// extra worker contributes this fraction of a perfectly parallel worker.
///
/// Recalibrated for the persistent worker pool: the original 0.7 was dominated by the
/// per-operator scoped-thread spawn cost, which the pool amortizes away (workers park
/// on a condvar between batches and per-query spawns are zero once warm). What remains
/// is the morsel-merge and skew overhead, so each extra worker is worth more.
const PARALLEL_EFFICIENCY: f64 = 0.85;

impl CostParams {
    pub fn new(parallelism: usize) -> CostParams {
        CostParams {
            parallelism: parallelism.max(1),
        }
    }

    /// The divisor applied to data-parallel operator costs: `1` when serial, and a
    /// sub-linear function of the worker count otherwise.
    pub fn effective_parallelism(&self) -> f64 {
        1.0 + PARALLEL_EFFICIENCY * (self.parallelism.max(1) - 1) as f64
    }
}

/// Estimated output cardinality of a plan.
pub fn estimate_cardinality(plan: &RelExpr, catalog: &Catalog, registry: &FunctionRegistry) -> f64 {
    estimate(plan, catalog, registry).cardinality
}

/// Estimated total cost of a plan (abstract row-operation units).
pub fn estimate_cost(plan: &RelExpr, catalog: &Catalog, registry: &FunctionRegistry) -> f64 {
    estimate(plan, catalog, registry).cost
}

/// Full estimate at serial (single-worker) execution.
pub fn estimate(plan: &RelExpr, catalog: &Catalog, registry: &FunctionRegistry) -> CostEstimate {
    estimate_with(plan, catalog, registry, &CostParams::default())
}

/// Full estimate (cardinality and cost) calibrated for the given runtime parameters.
pub fn estimate_with(
    plan: &RelExpr,
    catalog: &Catalog,
    registry: &FunctionRegistry,
    params: &CostParams,
) -> CostEstimate {
    let par = params.effective_parallelism();
    match plan {
        RelExpr::Single => CostEstimate::new(1.0, 0.0),
        RelExpr::Values { rows, .. } => CostEstimate::new(rows.len() as f64, rows.len() as f64),
        RelExpr::Scan { table, .. } => {
            let rows = catalog
                .table(table)
                .map(|t| t.row_count() as f64)
                .unwrap_or(1000.0);
            CostEstimate::new(rows, rows / par)
        }
        RelExpr::Select { input, predicate } => {
            let input_est = estimate_with(input, catalog, registry, params);
            let selectivity = predicate_selectivity(predicate, input, catalog);
            CostEstimate::new(
                input_est.cardinality * selectivity,
                input_est.cost + input_est.cardinality / par,
            )
        }
        RelExpr::Project { input, items, .. } => {
            let input_est = estimate_with(input, catalog, registry, params);
            // Each UDF invocation in the projection costs one execution of the queries in
            // its body per input row — this is the "iterative plan" cost the paper is
            // eliminating.
            let per_row_udf_cost: f64 = items
                .iter()
                .map(|i| udf_cost_of_expr(&i.expr, catalog, registry))
                .sum();
            CostEstimate::new(
                input_est.cardinality,
                input_est.cost + input_est.cardinality * (1.0 + per_row_udf_cost) / par,
            )
        }
        RelExpr::Aggregate {
            input, group_by, ..
        } => {
            let input_est = estimate_with(input, catalog, registry, params);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                // Rough: the number of groups is bounded by the input size and shrinks
                // with each additional grouping column's duplication factor.
                (input_est.cardinality / 2.0).max(1.0)
            };
            CostEstimate::new(groups, input_est.cost + input_est.cardinality / par)
        }
        RelExpr::Join {
            left,
            right,
            kind,
            condition,
        } => {
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            let has_equi = condition
                .as_ref()
                .map(|c| {
                    c.split_conjuncts().iter().any(|cj| {
                        matches!(
                            cj,
                            ScalarExpr::Binary {
                                op: BinaryOp::Eq,
                                ..
                            }
                        )
                    })
                })
                .unwrap_or(false);
            let output = match kind {
                JoinKind::Cross => l.cardinality * r.cardinality,
                JoinKind::LeftSemi | JoinKind::LeftAnti => l.cardinality / 2.0,
                _ if has_equi => (l.cardinality).max(r.cardinality),
                _ => l.cardinality * r.cardinality / 10.0,
            };
            // Hash join when an equality condition exists, nested loops otherwise.
            let join_cost = if has_equi {
                l.cardinality + r.cardinality
            } else {
                l.cardinality * r.cardinality
            };
            CostEstimate::new(output, l.cost + r.cost + join_cost / par)
        }
        RelExpr::Union { left, right, .. } => {
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            CostEstimate::new(l.cardinality + r.cardinality, l.cost + r.cost)
        }
        RelExpr::Sort { input, .. } => {
            let e = estimate_with(input, catalog, registry, params);
            let sort_cost = e.cardinality * (e.cardinality.max(2.0)).log2();
            CostEstimate::new(e.cardinality, e.cost + sort_cost)
        }
        RelExpr::Limit { input, limit } => {
            let e = estimate_with(input, catalog, registry, params);
            CostEstimate::new((*limit as f64).min(e.cardinality), e.cost)
        }
        RelExpr::Rename { input, .. } => estimate_with(input, catalog, registry, params),
        RelExpr::Apply { left, right, .. } => {
            // Correlated evaluation: the inner expression runs once per outer row. The
            // executor morsel-parallelizes the Apply loop over its outer rows, so the
            // per-row inner cost scales down with the pool like the set-oriented
            // operators do.
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            CostEstimate::new(
                l.cardinality * r.cardinality.max(1.0),
                l.cost + l.cardinality * (r.cost * CORRELATED_DISCOUNT).max(1.0) / par,
            )
        }
        RelExpr::ApplyMerge { left, right, .. }
        | RelExpr::ConditionalApplyMerge {
            left,
            then_branch: right,
            ..
        } => {
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            CostEstimate::new(
                l.cardinality,
                l.cost + l.cardinality * (r.cost * CORRELATED_DISCOUNT).max(1.0) / par,
            )
        }
    }
}

/// Correlated inner queries typically hit an index rather than rescanning the table, so
/// per-invocation cost is discounted relative to a full evaluation of the inner plan.
const CORRELATED_DISCOUNT: f64 = 0.01;

fn predicate_selectivity(predicate: &ScalarExpr, input: &RelExpr, catalog: &Catalog) -> f64 {
    let mut selectivity = 1.0;
    for conjunct in predicate.split_conjuncts() {
        selectivity *= match &conjunct {
            ScalarExpr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } => {
                // Equality on a column: 1 / distinct values when stats are available.
                let col = match (left.as_ref(), right.as_ref()) {
                    (ScalarExpr::Column(c), _) | (_, ScalarExpr::Column(c)) => Some(c),
                    _ => None,
                };
                match (col, base_table_of(input)) {
                    (Some(c), Some(table)) => catalog
                        .table(&table)
                        .map(|t| t.stats().equality_selectivity(&c.name))
                        .unwrap_or(0.1),
                    _ => 0.1,
                }
            }
            ScalarExpr::Binary { op, .. } if op.is_comparison() => 0.3,
            _ => 0.5,
        };
    }
    selectivity.clamp(0.000_001, 1.0)
}

fn base_table_of(plan: &RelExpr) -> Option<String> {
    match plan {
        RelExpr::Scan { table, .. } => Some(table.clone()),
        RelExpr::Select { input, .. }
        | RelExpr::Project { input, .. }
        | RelExpr::Limit { input, .. }
        | RelExpr::Rename { input, .. } => base_table_of(input),
        _ => None,
    }
}

/// Per-invocation cost of the UDF calls contained in an expression: the cost of the
/// queries inside each UDF body, discounted for index-assisted correlated execution.
fn udf_cost_of_expr(expr: &ScalarExpr, catalog: &Catalog, registry: &FunctionRegistry) -> f64 {
    let mut total = 0.0;
    if let ScalarExpr::UdfCall { name, .. } = expr {
        if let Ok(udf) = registry.udf(name) {
            total += udf_body_cost(&udf.body, catalog, registry);
        }
    }
    for child in expr.children() {
        total += udf_cost_of_expr(child, catalog, registry);
    }
    total
}

fn udf_body_cost(body: &[Statement], catalog: &Catalog, registry: &FunctionRegistry) -> f64 {
    let mut total = 1.0; // imperative statements are cheap but not free
    for stmt in body {
        match stmt {
            Statement::SelectInto { query, .. } => {
                total += estimate_cost(query, catalog, registry) * CORRELATED_DISCOUNT;
            }
            Statement::CursorLoop { query, body, .. } => {
                let inner = estimate(query, catalog, registry);
                total += inner.cost * CORRELATED_DISCOUNT
                    + inner.cardinality * udf_body_cost(body, catalog, registry);
            }
            Statement::While { body, .. } => {
                total += 10.0 * udf_body_cost(body, catalog, registry);
            }
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                total += udf_body_cost(then_branch, catalog, registry).max(udf_body_cost(
                    else_branch,
                    catalog,
                    registry,
                ));
            }
            Statement::Assign {
                expr: ScalarExpr::ScalarSubquery(q),
                ..
            }
            | Statement::Return {
                expr: Some(ScalarExpr::ScalarSubquery(q)),
            } => {
                total += estimate_cost(q, catalog, registry) * CORRELATED_DISCOUNT;
            }
            _ => {}
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType, Row, Schema, Value};
    use decorr_parser::{parse_and_plan, parse_function};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
        )
        .unwrap();
        let rows: Vec<Row> = (0..1000i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(i % 50),
                    Value::Float(i as f64),
                ])
            })
            .collect();
        c.insert_rows("orders", rows).unwrap();
        c.create_table(
            "customer",
            Schema::new(vec![Column::new("custkey", DataType::Int)]),
        )
        .unwrap();
        c.insert_rows(
            "customer",
            (0..50i64).map(|i| Row::new(vec![Value::Int(i)])).collect(),
        )
        .unwrap();
        c
    }

    #[test]
    fn scan_and_filter_cardinalities() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let scan = parse_and_plan("select * from orders").unwrap();
        assert_eq!(estimate_cardinality(&scan, &catalog, &registry), 1000.0);
        let filtered = parse_and_plan("select * from orders where custkey = 7").unwrap();
        let card = estimate_cardinality(&filtered, &catalog, &registry);
        assert!((card - 20.0).abs() < 1.0, "expected ~20 rows, got {card}");
    }

    #[test]
    fn iterative_udf_plan_costs_scale_with_outer_cardinality() {
        let catalog = catalog();
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function tb(int ckey) returns float as \
                 begin return select sum(totalprice) from orders where custkey = :ckey; end",
            )
            .unwrap(),
        );
        let small =
            parse_and_plan("select custkey, tb(custkey) from customer where custkey = 3").unwrap();
        let large = parse_and_plan("select custkey, tb(custkey) from customer").unwrap();
        let small_cost = estimate_cost(&small, &catalog, &registry);
        let large_cost = estimate_cost(&large, &catalog, &registry);
        assert!(
            large_cost > small_cost,
            "iterative cost must grow with the number of invocations ({small_cost} vs {large_cost})"
        );
    }

    #[test]
    fn hash_join_costs_less_than_cross_product() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let join = parse_and_plan(
            "select o.orderkey from customer c join orders o on c.custkey = o.custkey",
        )
        .unwrap();
        let cross = parse_and_plan("select o.orderkey from customer c, orders o").unwrap();
        assert!(
            estimate_cost(&join, &catalog, &registry) < estimate_cost(&cross, &catalog, &registry)
        );
    }

    #[test]
    fn apply_costs_reflect_correlated_execution() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let correlated = decorr_algebra::RelExpr::Apply {
            left: Box::new(decorr_algebra::RelExpr::scan("orders")),
            right: Box::new(
                parse_and_plan("select sum(totalprice) from orders where custkey = :ckey").unwrap(),
            ),
            kind: decorr_algebra::ApplyKind::Cross,
            bindings: vec![],
        };
        let flat =
            parse_and_plan("select custkey, sum(totalprice) from orders group by custkey").unwrap();
        assert!(
            estimate_cost(&correlated, &catalog, &registry)
                > estimate_cost(&flat, &catalog, &registry)
        );
    }
}
