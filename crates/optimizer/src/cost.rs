//! Cardinality estimation and a cost model over logical plans.
//!
//! The estimator consumes the statistics subsystem (`decorr-stats` through
//! `decorr-storage`'s cached [`TableStats`](decorr_storage::TableStats)): equality predicates use MCV lists and
//! distinct counts, range predicates (`<`, `>`, `BETWEEN`) use equi-depth histograms
//! when a sampled `ANALYZE` has run, and grouped aggregates use group-column distinct
//! counts. Every constant the seed model hard-coded is a [`CostParams`] field now, so
//! benches and tests can sweep them — and the runtime feedback loop
//! (`crate::feedback`) can replace the static per-UDF body estimate with *measured*
//! invocation costs via [`CostParams::udf_cost_overrides`].

use std::collections::BTreeMap;

use decorr_algebra::{BinaryOp, JoinKind, RelExpr, ScalarExpr};
use decorr_common::{normalize_ident, Value};
use decorr_storage::Catalog;
use decorr_udf::{FunctionRegistry, Statement};

/// The estimated cardinality and abstract cost (row operations) of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    pub cardinality: f64,
    pub cost: f64,
}

impl CostEstimate {
    fn new(cardinality: f64, cost: f64) -> CostEstimate {
        CostEstimate {
            cardinality: cardinality.max(1.0),
            cost: cost.max(0.0),
        }
    }
}

/// Runtime parameters the cost model calibrates against: the executor's worker-pool
/// size, the (previously hard-coded) selectivity and discount constants, and the
/// learned per-UDF invocation costs fed back by the engine after execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// The executor's `ExecConfig::parallelism`. Data-parallel operators (scans,
    /// filters, projections, hash joins, hash aggregation and the morsel-parallel
    /// Apply loops) divide their incremental cost by the effective speedup.
    pub parallelism: usize,
    /// Output fraction of a semi/anti join relative to its left input (seed model:
    /// the hard-coded `/ 2.0`).
    pub semi_join_selectivity: f64,
    /// Output fraction of a non-equi join relative to the cross product (seed model:
    /// the hard-coded `/ 10.0`).
    pub non_equi_join_selectivity: f64,
    /// Group count as a fraction of the input when the group columns' distinct counts
    /// are unknown (seed model: the hard-coded `input / 2`).
    pub group_count_fraction: f64,
    /// Per-invocation discount of a correlated inner plan relative to a full
    /// evaluation (index-assisted execution; seed model: `CORRELATED_DISCOUNT`).
    pub correlated_discount: f64,
    /// Selectivity of an equality predicate when no statistics resolve it.
    pub default_equality_selectivity: f64,
    /// Selectivity of one comparison bound when no histogram resolves it.
    pub default_range_selectivity: f64,
    /// Selectivity of an unclassifiable predicate conjunct.
    pub default_predicate_selectivity: f64,
    /// Wall-clock seconds one abstract row operation is worth in this interpreted
    /// engine — the bridge between measured UDF wall-clock and the model's row-op
    /// units. Calibrated against the executor's per-row overhead (tree-walking
    /// evaluation with per-row environment construction runs at roughly microseconds
    /// per row, not nanoseconds).
    pub row_op_seconds: f64,
    /// Learned per-invocation UDF costs (row-op units) keyed by normalized function
    /// name; populated by the feedback store and consulted *instead of* the static
    /// body estimate in [`estimate_with`].
    pub udf_cost_overrides: BTreeMap<String, f64>,
    /// Learned fraction of each UDF's calls that actually evaluate the body (the rest
    /// are answered by the executor's dedup/memo caches). Multiplies the per-call cost
    /// so strategy choice compares *effective* invocation counts, not raw ones;
    /// normalized UDF name → fraction in `(0, 1]`, absent = 1.0 (no dedup observed).
    pub udf_dedup_fractions: BTreeMap<String, f64>,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            parallelism: 1,
            semi_join_selectivity: 0.5,
            non_equi_join_selectivity: 0.1,
            group_count_fraction: 0.5,
            correlated_discount: 0.01,
            default_equality_selectivity: 0.1,
            default_range_selectivity: 0.3,
            default_predicate_selectivity: 0.5,
            row_op_seconds: 5e-7,
            udf_cost_overrides: BTreeMap::new(),
            udf_dedup_fractions: BTreeMap::new(),
        }
    }
}

/// Measured morsel-pool scaling is sub-linear (merge overheads and skew), so each
/// extra worker contributes this fraction of a perfectly parallel worker.
///
/// Recalibrated for the persistent worker pool: the original 0.7 was dominated by the
/// per-operator scoped-thread spawn cost, which the pool amortizes away (workers park
/// on a condvar between batches and per-query spawns are zero once warm). What remains
/// is the morsel-merge and skew overhead, so each extra worker is worth more.
const PARALLEL_EFFICIENCY: f64 = 0.85;

impl CostParams {
    pub fn new(parallelism: usize) -> CostParams {
        CostParams {
            parallelism: parallelism.max(1),
            ..CostParams::default()
        }
    }

    /// Attaches learned per-UDF invocation costs (builder style).
    pub fn with_udf_cost_overrides(mut self, overrides: BTreeMap<String, f64>) -> CostParams {
        self.udf_cost_overrides = overrides;
        self
    }

    /// The learned invocation cost of a UDF, if the feedback loop provided one.
    pub fn udf_cost_override(&self, name: &str) -> Option<f64> {
        self.udf_cost_overrides.get(&normalize_ident(name)).copied()
    }

    /// Attaches learned dedup fractions (builder style).
    pub fn with_udf_dedup_fractions(mut self, fractions: BTreeMap<String, f64>) -> CostParams {
        self.udf_dedup_fractions = fractions;
        self
    }

    /// The fraction of this UDF's calls expected to actually run the body: `1.0`
    /// unless the feedback loop has observed dedup/memo hits for it.
    pub fn udf_dedup_fraction(&self, name: &str) -> f64 {
        self.udf_dedup_fractions
            .get(&normalize_ident(name))
            .copied()
            .map(|f| f.clamp(0.0, 1.0))
            .unwrap_or(1.0)
    }

    /// The divisor applied to data-parallel operator costs: `1` when serial, and a
    /// sub-linear function of the worker count otherwise.
    pub fn effective_parallelism(&self) -> f64 {
        1.0 + PARALLEL_EFFICIENCY * (self.parallelism.max(1) - 1) as f64
    }
}

/// Estimated output cardinality of a plan.
pub fn estimate_cardinality(plan: &RelExpr, catalog: &Catalog, registry: &FunctionRegistry) -> f64 {
    estimate(plan, catalog, registry).cardinality
}

/// Estimated total cost of a plan (abstract row-operation units).
pub fn estimate_cost(plan: &RelExpr, catalog: &Catalog, registry: &FunctionRegistry) -> f64 {
    estimate(plan, catalog, registry).cost
}

/// Full estimate at serial (single-worker) execution with default parameters.
pub fn estimate(plan: &RelExpr, catalog: &Catalog, registry: &FunctionRegistry) -> CostEstimate {
    estimate_with(plan, catalog, registry, &CostParams::default())
}

/// The per-node estimate of one plan operator, keyed by the subtree's structural
/// fingerprint so it can be joined against the executor's per-node actuals (the
/// `collect_cardinalities` trace) to compute q-errors.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEstimate {
    /// [`RelExpr::fingerprint`] of the subtree rooted at this operator.
    pub fingerprint: u64,
    /// Operator name (`Scan`, `Select`, `Join`, …).
    pub operator: String,
    pub cardinality: f64,
    pub cost: f64,
}

/// Estimates every operator of `plan` (pre-order), for estimate-vs-actual accuracy
/// reporting. Subtree estimates are recomputed per node, which is quadratic in plan
/// depth — fine for the tree sizes this engine optimizes, and only diagnostic paths
/// (EXPLAIN ANALYZE, the stats bench) call it.
pub fn estimate_per_node(
    plan: &RelExpr,
    catalog: &Catalog,
    registry: &FunctionRegistry,
    params: &CostParams,
) -> Vec<NodeEstimate> {
    fn walk(
        plan: &RelExpr,
        catalog: &Catalog,
        registry: &FunctionRegistry,
        params: &CostParams,
        out: &mut Vec<NodeEstimate>,
    ) {
        let est = estimate_with(plan, catalog, registry, params);
        out.push(NodeEstimate {
            fingerprint: plan.fingerprint(),
            operator: plan.name().to_string(),
            cardinality: est.cardinality,
            cost: est.cost,
        });
        for child in plan.children() {
            walk(child, catalog, registry, params, out);
        }
    }
    let mut out = vec![];
    walk(plan, catalog, registry, params, &mut out);
    out
}

/// The static (model-derived) cost of one invocation of a named UDF: the cost of the
/// queries inside its body, discounted for index-assisted correlated execution. This
/// is the number the feedback loop compares measured invocation costs against.
pub fn estimated_udf_invocation_cost(
    name: &str,
    catalog: &Catalog,
    registry: &FunctionRegistry,
    params: &CostParams,
) -> Option<f64> {
    registry
        .udf(name)
        .ok()
        .map(|udf| udf_body_cost(&udf.body, catalog, registry, params))
}

/// Full estimate (cardinality and cost) calibrated for the given runtime parameters.
pub fn estimate_with(
    plan: &RelExpr,
    catalog: &Catalog,
    registry: &FunctionRegistry,
    params: &CostParams,
) -> CostEstimate {
    let par = params.effective_parallelism();
    match plan {
        RelExpr::Single => CostEstimate::new(1.0, 0.0),
        RelExpr::Values { rows, .. } => CostEstimate::new(rows.len() as f64, rows.len() as f64),
        RelExpr::Scan { table, .. } => {
            let rows = catalog
                .table(table)
                .map(|t| t.row_count() as f64)
                .unwrap_or(1000.0);
            CostEstimate::new(rows, rows / par)
        }
        RelExpr::Select { input, predicate } => {
            let input_est = estimate_with(input, catalog, registry, params);
            let selectivity = predicate_selectivity(predicate, input, catalog, params);
            // The executor skips whole shards whose cached min/max disproves the
            // predicate's numeric bounds; price that in for Select-over-Scan so
            // pruning-friendly plans win on estimated cost too.
            let unpruned = scan_unpruned_fraction(predicate, input, catalog);
            CostEstimate::new(
                input_est.cardinality * selectivity,
                input_est.cost * unpruned + input_est.cardinality * unpruned / par,
            )
        }
        RelExpr::Project { input, items, .. } => {
            let input_est = estimate_with(input, catalog, registry, params);
            // Each UDF invocation in the projection costs one execution of the queries in
            // its body per input row — this is the "iterative plan" cost the paper is
            // eliminating. Learned invocation costs (feedback) take precedence over the
            // static body estimate inside `udf_cost_of_expr`.
            let per_row_udf_cost: f64 = items
                .iter()
                .map(|i| udf_cost_of_expr(&i.expr, catalog, registry, params))
                .sum();
            CostEstimate::new(
                input_est.cardinality,
                input_est.cost + input_est.cardinality * (1.0 + per_row_udf_cost) / par,
            )
        }
        RelExpr::Aggregate {
            input, group_by, ..
        } => {
            let input_est = estimate_with(input, catalog, registry, params);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                estimate_group_count(group_by, input, catalog, params, input_est.cardinality)
            };
            CostEstimate::new(groups, input_est.cost + input_est.cardinality / par)
        }
        RelExpr::Join {
            left,
            right,
            kind,
            condition,
        } => {
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            let has_equi = condition
                .as_ref()
                .map(|c| {
                    c.split_conjuncts().iter().any(|cj| {
                        matches!(
                            cj,
                            ScalarExpr::Binary {
                                op: BinaryOp::Eq,
                                ..
                            }
                        )
                    })
                })
                .unwrap_or(false);
            let output = match kind {
                JoinKind::Cross => l.cardinality * r.cardinality,
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    l.cardinality * params.semi_join_selectivity
                }
                _ if has_equi => (l.cardinality).max(r.cardinality),
                _ => l.cardinality * r.cardinality * params.non_equi_join_selectivity,
            };
            // Hash join when an equality condition exists, nested loops otherwise.
            let join_cost = if has_equi {
                l.cardinality + r.cardinality
            } else {
                l.cardinality * r.cardinality
            };
            CostEstimate::new(output, l.cost + r.cost + join_cost / par)
        }
        RelExpr::Union { left, right, .. } => {
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            CostEstimate::new(l.cardinality + r.cardinality, l.cost + r.cost)
        }
        RelExpr::Sort { input, .. } => {
            let e = estimate_with(input, catalog, registry, params);
            let sort_cost = e.cardinality * (e.cardinality.max(2.0)).log2();
            CostEstimate::new(e.cardinality, e.cost + sort_cost)
        }
        RelExpr::Limit { input, limit } => {
            let e = estimate_with(input, catalog, registry, params);
            CostEstimate::new((*limit as f64).min(e.cardinality), e.cost)
        }
        RelExpr::Rename { input, .. } => estimate_with(input, catalog, registry, params),
        RelExpr::Apply { left, right, .. } => {
            // Correlated evaluation: the inner expression runs once per outer row. The
            // executor morsel-parallelizes the Apply loop over its outer rows, so the
            // per-row inner cost scales down with the pool like the set-oriented
            // operators do.
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            CostEstimate::new(
                l.cardinality * r.cardinality.max(1.0),
                l.cost + l.cardinality * (r.cost * params.correlated_discount).max(1.0) / par,
            )
        }
        RelExpr::ApplyMerge { left, right, .. }
        | RelExpr::ConditionalApplyMerge {
            left,
            then_branch: right,
            ..
        } => {
            let l = estimate_with(left, catalog, registry, params);
            let r = estimate_with(right, catalog, registry, params);
            CostEstimate::new(
                l.cardinality,
                l.cost + l.cardinality * (r.cost * params.correlated_discount).max(1.0) / par,
            )
        }
    }
}

/// Group-count estimate: when every grouping expression is a column whose base-table
/// distinct count is known, the group count is the product of the distinct counts
/// (capped by the input cardinality); otherwise the configurable input fraction.
fn estimate_group_count(
    group_by: &[ScalarExpr],
    input: &RelExpr,
    catalog: &Catalog,
    params: &CostParams,
    input_cardinality: f64,
) -> f64 {
    let stats = base_table_of(input)
        .and_then(|t| catalog.table(&t).ok())
        .map(|t| t.stats());
    if let Some(stats) = &stats {
        let mut ndv_product = 1.0f64;
        let mut all_resolved = true;
        for g in group_by {
            match g {
                ScalarExpr::Column(c) if stats.column(&c.name).is_some() => {
                    ndv_product *= stats.distinct_count(&c.name) as f64;
                }
                _ => {
                    all_resolved = false;
                    break;
                }
            }
        }
        if all_resolved {
            return ndv_product.clamp(1.0, input_cardinality.max(1.0));
        }
    }
    (input_cardinality * params.group_count_fraction).max(1.0)
}

/// One conjunct, classified for selectivity estimation.
enum ConjunctClass {
    /// `col = value` (value `None` when the comparison side is not a literal, column
    /// `None` when neither side is a plain column).
    Equality {
        column: Option<String>,
        value: Option<Value>,
    },
    /// A single numeric bound on a column: `col < v`, `v <= col`, … normalized to the
    /// column-on-the-left orientation.
    Bound {
        column: String,
        lo: Option<(f64, bool)>,
        hi: Option<(f64, bool)>,
    },
    /// A comparison the histogram cannot serve (non-literal side, string bound, `<>`).
    OpaqueComparison,
    /// Anything else.
    Other,
}

fn classify_conjunct(conjunct: &ScalarExpr) -> ConjunctClass {
    let ScalarExpr::Binary { op, left, right } = conjunct else {
        return ConjunctClass::Other;
    };
    // Identify (column, literal) in either orientation; `flipped` means the literal is
    // on the left, so the comparison direction reverses.
    let (column, literal, flipped) = match (left.as_ref(), right.as_ref()) {
        (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => (Some(c), Some(v), false),
        (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => (Some(c), Some(v), true),
        (ScalarExpr::Column(c), _) => (Some(c), None, false),
        (_, ScalarExpr::Column(c)) => (Some(c), None, true),
        _ => (None, None, false),
    };
    match op {
        BinaryOp::Eq => ConjunctClass::Equality {
            column: column.map(|c| c.name.clone()),
            value: literal.cloned(),
        },
        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
            let (Some(column), Some(literal)) = (column, literal) else {
                return ConjunctClass::OpaqueComparison;
            };
            let Ok(bound) = literal.as_float() else {
                return ConjunctClass::OpaqueComparison; // non-numeric bound
            };
            // Normalize to column-left orientation: `v < col` is `col > v`.
            let effective = if flipped {
                match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    _ => unreachable!(),
                }
            } else {
                *op
            };
            let (lo, hi) = match effective {
                BinaryOp::Lt => (None, Some((bound, false))),
                BinaryOp::LtEq => (None, Some((bound, true))),
                BinaryOp::Gt => (Some((bound, false)), None),
                BinaryOp::GtEq => (Some((bound, true)), None),
                _ => unreachable!(),
            };
            ConjunctClass::Bound {
                column: column.name.clone(),
                lo,
                hi,
            }
        }
        op if op.is_comparison() => ConjunctClass::OpaqueComparison,
        _ => ConjunctClass::Other,
    }
}

fn predicate_selectivity(
    predicate: &ScalarExpr,
    input: &RelExpr,
    catalog: &Catalog,
    params: &CostParams,
) -> f64 {
    let stats = base_table_of(input)
        .and_then(|t| catalog.table(&t).ok())
        .map(|t| t.stats());
    let mut selectivity = 1.0;
    // Range conjuncts on the same column fold into one interval before the histogram
    // is consulted: `col >= lo AND col <= hi` (BETWEEN) is a single range fraction,
    // not two independent guesses. `(lo, hi, bound_count)` per column.
    type Interval = (Option<(f64, bool)>, Option<(f64, bool)>, u32);
    let mut intervals: BTreeMap<String, Interval> = BTreeMap::new();
    for conjunct in predicate.split_conjuncts() {
        match classify_conjunct(&conjunct) {
            ConjunctClass::Equality { column, value } => {
                selectivity *= match (&stats, column) {
                    (Some(stats), Some(column)) => match value {
                        Some(value) => stats.equality_selectivity_value(&column, &value),
                        None => stats.equality_selectivity(&column),
                    },
                    _ => params.default_equality_selectivity,
                };
            }
            ConjunctClass::Bound { column, lo, hi } => {
                let entry = intervals.entry(column).or_insert((None, None, 0));
                // Keep the tightest bounds: largest lower / smallest upper, and on
                // equal values the exclusive variant (x > 5 is tighter than x >= 5).
                if let Some((v, inclusive)) = lo {
                    entry.0 = match entry.0 {
                        Some((cur, cur_inc)) if cur > v => Some((cur, cur_inc)),
                        Some((cur, cur_inc)) if cur == v => Some((cur, cur_inc && inclusive)),
                        _ => Some((v, inclusive)),
                    };
                }
                if let Some((v, inclusive)) = hi {
                    entry.1 = match entry.1 {
                        Some((cur, cur_inc)) if cur < v => Some((cur, cur_inc)),
                        Some((cur, cur_inc)) if cur == v => Some((cur, cur_inc && inclusive)),
                        _ => Some((v, inclusive)),
                    };
                }
                entry.2 += 1;
            }
            ConjunctClass::OpaqueComparison => selectivity *= params.default_range_selectivity,
            ConjunctClass::Other => selectivity *= params.default_predicate_selectivity,
        }
    }
    for (column, (lo, hi, bounds)) in intervals {
        let from_histogram = stats
            .as_ref()
            .and_then(|s| s.range_selectivity(&column, lo, hi));
        selectivity *= match from_histogram {
            Some(fraction) => fraction.max(0.0),
            // No histogram: the seed behaviour — one default factor per bound.
            None => params.default_range_selectivity.powi(bounds as i32),
        };
    }
    selectivity.clamp(0.000_001, 1.0)
}

/// Fraction of a base-table scan's rows that survive shard pruning under the
/// predicate's numeric bound conjuncts: `1.0` when the input is not a bare scan,
/// when no conjunct yields a bound, or when no shard summary is cached (dirty
/// shards are never pruned at runtime either). Mirrors
/// [`Table::pruned_shard_set`](decorr_storage::Table::pruned_shard_set) via
/// [`Table::unpruned_row_fraction`](decorr_storage::Table::unpruned_row_fraction).
fn scan_unpruned_fraction(predicate: &ScalarExpr, input: &RelExpr, catalog: &Catalog) -> f64 {
    let RelExpr::Scan { table, .. } = input else {
        return 1.0;
    };
    let Ok(t) = catalog.table(table) else {
        return 1.0;
    };
    let mut fraction = 1.0f64;
    for conjunct in predicate.split_conjuncts() {
        let (column, lo, hi) = match classify_conjunct(&conjunct) {
            ConjunctClass::Bound { column, lo, hi } => (column, lo, hi),
            ConjunctClass::Equality {
                column: Some(column),
                value: Some(v),
            } => {
                let Ok(x) = v.as_float() else { continue };
                (column, Some((x, true)), Some((x, true)))
            }
            _ => continue,
        };
        fraction = fraction.min(t.unpruned_row_fraction(&column, lo, hi));
    }
    fraction
}

fn base_table_of(plan: &RelExpr) -> Option<String> {
    match plan {
        RelExpr::Scan { table, .. } => Some(table.clone()),
        RelExpr::Select { input, .. }
        | RelExpr::Project { input, .. }
        | RelExpr::Limit { input, .. }
        | RelExpr::Rename { input, .. } => base_table_of(input),
        _ => None,
    }
}

/// Per-invocation cost of the UDF calls contained in an expression: the learned
/// (feedback-measured) invocation cost when one exists, otherwise the static cost of
/// the queries inside the UDF body discounted for index-assisted correlated execution.
fn udf_cost_of_expr(
    expr: &ScalarExpr,
    catalog: &Catalog,
    registry: &FunctionRegistry,
    params: &CostParams,
) -> f64 {
    let mut total = 0.0;
    if let ScalarExpr::UdfCall { name, .. } = expr {
        // Per-call cost (learned when available) scaled by the effective fraction of
        // calls the batching/memo runtime actually evaluates.
        let fraction = params.udf_dedup_fraction(name);
        if let Some(learned) = params.udf_cost_override(name) {
            total += learned * fraction;
        } else if let Ok(udf) = registry.udf(name) {
            total += udf_body_cost(&udf.body, catalog, registry, params) * fraction;
        }
    }
    for child in expr.children() {
        total += udf_cost_of_expr(child, catalog, registry, params);
    }
    total
}

fn udf_body_cost(
    body: &[Statement],
    catalog: &Catalog,
    registry: &FunctionRegistry,
    params: &CostParams,
) -> f64 {
    let mut total = 1.0; // imperative statements are cheap but not free
    for stmt in body {
        match stmt {
            Statement::SelectInto { query, .. } => {
                total += estimate_with(query, catalog, registry, params).cost
                    * params.correlated_discount;
            }
            Statement::CursorLoop { query, body, .. } => {
                let inner = estimate_with(query, catalog, registry, params);
                total += inner.cost * params.correlated_discount
                    + inner.cardinality * udf_body_cost(body, catalog, registry, params);
            }
            Statement::While { body, .. } => {
                total += 10.0 * udf_body_cost(body, catalog, registry, params);
            }
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                total += udf_body_cost(then_branch, catalog, registry, params).max(udf_body_cost(
                    else_branch,
                    catalog,
                    registry,
                    params,
                ));
            }
            Statement::Assign {
                expr: ScalarExpr::ScalarSubquery(q),
                ..
            }
            | Statement::Return {
                expr: Some(ScalarExpr::ScalarSubquery(q)),
            } => {
                total +=
                    estimate_with(q, catalog, registry, params).cost * params.correlated_discount;
            }
            _ => {}
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType, Row, Schema, Value};
    use decorr_parser::{parse_and_plan, parse_function};
    use decorr_storage::AnalyzeConfig;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
        )
        .unwrap();
        let rows: Vec<Row> = (0..1000i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(i % 50),
                    Value::Float(i as f64),
                ])
            })
            .collect();
        c.insert_rows("orders", rows).unwrap();
        c.create_table(
            "customer",
            Schema::new(vec![Column::new("custkey", DataType::Int)]),
        )
        .unwrap();
        c.insert_rows(
            "customer",
            (0..50i64).map(|i| Row::new(vec![Value::Int(i)])).collect(),
        )
        .unwrap();
        c
    }

    #[test]
    fn scan_and_filter_cardinalities() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let scan = parse_and_plan("select * from orders").unwrap();
        assert_eq!(estimate_cardinality(&scan, &catalog, &registry), 1000.0);
        let filtered = parse_and_plan("select * from orders where custkey = 7").unwrap();
        let card = estimate_cardinality(&filtered, &catalog, &registry);
        assert!((card - 20.0).abs() < 1.0, "expected ~20 rows, got {card}");
    }

    #[test]
    fn histograms_sharpen_range_estimates() {
        let mut catalog = catalog();
        let registry = FunctionRegistry::new();
        let narrow = parse_and_plan("select * from orders where orderkey <= 100").unwrap();
        // Unanalyzed: the default range constant wildly overestimates (0.3 × 1000).
        let before = estimate_cardinality(&narrow, &catalog, &registry);
        assert!((before - 300.0).abs() < 1.0, "default estimate {before}");
        catalog
            .analyze_table("orders", &AnalyzeConfig::default())
            .unwrap();
        let after = estimate_cardinality(&narrow, &catalog, &registry);
        assert!(
            (after - 101.0).abs() < 25.0,
            "histogram estimate {after} for ~101 actual rows"
        );
        // BETWEEN-style conjunct pairs fold into one interval, not two 30% guesses.
        let between =
            parse_and_plan("select * from orders where orderkey >= 200 and orderkey <= 399")
                .unwrap();
        let est = estimate_cardinality(&between, &catalog, &registry);
        assert!((est - 200.0).abs() < 50.0, "between estimate {est}");
    }

    #[test]
    fn shard_pruning_discounts_scan_cost() {
        let mut catalog = Catalog::new();
        catalog.set_default_shard_count(8);
        catalog
            .create_table(
                "orders",
                Schema::new(vec![Column::new("orderkey", DataType::Int)]),
            )
            .unwrap();
        catalog
            .insert_rows(
                "orders",
                (0..1000i64)
                    .map(|i| Row::new(vec![Value::Int(i)]))
                    .collect(),
            )
            .unwrap();
        let registry = FunctionRegistry::new();
        catalog
            .analyze_table("orders", &AnalyzeConfig::default())
            .unwrap();
        // Insertion order is contiguous per shard, so `orderkey <= 100` keeps one of
        // the eight shards while `orderkey >= 0` keeps all of them — same plan shape,
        // very different scan cost once pruning is priced in.
        let narrow = parse_and_plan("select * from orders where orderkey <= 100").unwrap();
        let wide = parse_and_plan("select * from orders where orderkey >= 0").unwrap();
        let narrow_cost = estimate_cost(&narrow, &catalog, &registry);
        let wide_cost = estimate_cost(&wide, &catalog, &registry);
        assert!(
            narrow_cost < wide_cost * 0.5,
            "pruning-aware cost {narrow_cost} should undercut unpruned {wide_cost}"
        );
    }

    #[test]
    fn group_counts_use_distinct_statistics() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let grouped =
            parse_and_plan("select custkey, sum(totalprice) from orders group by custkey").unwrap();
        let groups = estimate_cardinality(&grouped, &catalog, &registry);
        // Seed model said input/2 = 500; the statistics know there are 50 custkeys.
        assert!((groups - 50.0).abs() < 1.0, "group estimate {groups}");
    }

    #[test]
    fn iterative_udf_plan_costs_scale_with_outer_cardinality() {
        let catalog = catalog();
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function tb(int ckey) returns float as \
                 begin return select sum(totalprice) from orders where custkey = :ckey; end",
            )
            .unwrap(),
        );
        let small =
            parse_and_plan("select custkey, tb(custkey) from customer where custkey = 3").unwrap();
        let large = parse_and_plan("select custkey, tb(custkey) from customer").unwrap();
        let small_cost = estimate_cost(&small, &catalog, &registry);
        let large_cost = estimate_cost(&large, &catalog, &registry);
        assert!(
            large_cost > small_cost,
            "iterative cost must grow with the number of invocations ({small_cost} vs {large_cost})"
        );
    }

    #[test]
    fn learned_udf_costs_override_the_static_estimate() {
        let catalog = catalog();
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function tb(int ckey) returns float as \
                 begin return select sum(totalprice) from orders where custkey = :ckey; end",
            )
            .unwrap(),
        );
        let plan = parse_and_plan("select custkey, tb(custkey) from customer").unwrap();
        let static_params = CostParams::default();
        let static_cost = estimate_with(&plan, &catalog, &registry, &static_params).cost;
        let static_per_invocation =
            estimated_udf_invocation_cost("tb", &catalog, &registry, &static_params)
                .expect("tb is registered");
        assert!(static_per_invocation > 1.0);
        // Feedback learned the UDF is 100x more expensive than modelled.
        let learned = static_params.clone().with_udf_cost_overrides(
            [("tb".to_string(), static_per_invocation * 100.0)]
                .into_iter()
                .collect(),
        );
        assert_eq!(
            learned.udf_cost_override("TB"),
            Some(static_per_invocation * 100.0),
            "override lookup is case-normalized"
        );
        let learned_cost = estimate_with(&plan, &catalog, &registry, &learned).cost;
        assert!(
            learned_cost > static_cost * 10.0,
            "learned {learned_cost} must dominate static {static_cost}"
        );
    }

    #[test]
    fn promoted_constants_are_sweepable() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let semi = decorr_algebra::RelExpr::Join {
            left: Box::new(decorr_algebra::RelExpr::scan("orders")),
            right: Box::new(decorr_algebra::RelExpr::scan("customer")),
            kind: JoinKind::LeftSemi,
            condition: None,
        };
        let default = estimate_with(&semi, &catalog, &registry, &CostParams::default());
        let tight = estimate_with(
            &semi,
            &catalog,
            &registry,
            &CostParams {
                semi_join_selectivity: 0.01,
                ..CostParams::default()
            },
        );
        assert!((default.cardinality - 500.0).abs() < 1.0);
        assert!((tight.cardinality - 10.0).abs() < 1.0);
    }

    #[test]
    fn per_node_estimates_cover_the_whole_tree() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let plan = parse_and_plan("select custkey from orders where custkey = 7").unwrap();
        let nodes = estimate_per_node(&plan, &catalog, &registry, &CostParams::default());
        assert_eq!(nodes.len(), plan.node_count());
        assert_eq!(nodes[0].fingerprint, plan.fingerprint());
        assert!(nodes.iter().any(|n| n.operator == "Scan"));
        // The root's estimate matches the plain estimator.
        let root = estimate_cardinality(&plan, &catalog, &registry);
        assert_eq!(nodes[0].cardinality, root);
    }

    #[test]
    fn hash_join_costs_less_than_cross_product() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let join = parse_and_plan(
            "select o.orderkey from customer c join orders o on c.custkey = o.custkey",
        )
        .unwrap();
        let cross = parse_and_plan("select o.orderkey from customer c, orders o").unwrap();
        assert!(
            estimate_cost(&join, &catalog, &registry) < estimate_cost(&cross, &catalog, &registry)
        );
    }

    #[test]
    fn apply_costs_reflect_correlated_execution() {
        let catalog = catalog();
        let registry = FunctionRegistry::new();
        let correlated = decorr_algebra::RelExpr::Apply {
            left: Box::new(decorr_algebra::RelExpr::scan("orders")),
            right: Box::new(
                parse_and_plan("select sum(totalprice) from orders where custkey = :ckey").unwrap(),
            ),
            kind: decorr_algebra::ApplyKind::Cross,
            bindings: vec![],
        };
        let flat =
            parse_and_plan("select custkey, sum(totalprice) from orders group by custkey").unwrap();
        assert!(
            estimate_cost(&correlated, &catalog, &registry)
                > estimate_cost(&flat, &catalog, &registry)
        );
    }
}
