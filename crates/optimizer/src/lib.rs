//! The optimizer: an instrumented pass pipeline, cost model and strategy selection.
//!
//! The paper argues that its transformation rules should live inside a cost-based
//! optimizer so that *iterative invocation remains an alternative* — Experiment 3 shows a
//! regime (few invocations, scan-dominated rewritten form) where the original plan is the
//! better choice. This crate provides that layer for the engine:
//!
//! * [`pass`] — the [`PassManager`]: the single, observable pipeline every query goes
//!   through (normalize → algebraize & merge → Apply removal → cleanup → strategy
//!   choice), with per-pass timings, per-rule fire counts, fixpoint iteration counts,
//!   before/after plan snapshots and a rule-firing budget guard;
//! * [`cache`] — the [`PlanCache`]: a concurrency-safe LRU memo from a structural plan
//!   fingerprint (plus registry/DDL generations and pipeline options) to a full
//!   [`OptimizeOutcome`], so repeated queries skip the pipeline entirely;
//! * [`cost`] — cardinality estimation and a cost model over logical plans, fed by the
//!   statistics subsystem (histograms/MCVs after a sampled `ANALYZE`) and including
//!   the cost of iterative UDF invocation (outer cardinality × cost of the queries
//!   inside the UDF body);
//! * [`feedback`] — the runtime [`FeedbackStore`]: measured cardinalities and per-UDF
//!   invocation costs folded back into the model after each execution, driving both
//!   the strategy choice (learned UDF costs) and plan-cache invalidation (q-error
//!   threshold);
//! * [`strategy`] — the cost-based choice between the original (iterative) plan and the
//!   decorrelated plan produced by `decorr-rewrite`.
//!
//! Behind [`PassManagerOptions::validate_plans`] (default on in debug builds, opt-in
//! via `DECORR_VALIDATE_PLANS=1` in release) the pipeline re-validates the plan with
//! `decorr_analysis` after every pass, so a buggy rewrite rule fails loudly with a
//! named-pass, named-violation error instead of producing a malformed plan.

pub mod cache;
pub mod cost;
pub mod feedback;
pub mod pass;
pub mod strategy;

pub use cache::{
    plan_fingerprint, CacheActivity, CacheContext, PlanCache, PlanCacheStats,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use cost::{
    estimate_cardinality, estimate_cost, estimate_per_node, estimate_with,
    estimated_udf_invocation_cost, CostEstimate, CostParams, NodeEstimate,
};
pub use feedback::{
    FeedbackConfig, FeedbackState, FeedbackStats, FeedbackStore, QueryFeedback, UdfCostFeedback,
    UdfFeedbackState,
};
pub use pass::{
    OptimizeMode, OptimizeOutcome, OptimizerPass, PassContext, PassEffect, PassManager,
    PassManagerOptions, PassTrace, PipelineReport,
};
pub use strategy::{choose_strategy, choose_strategy_with, StrategyChoice, StrategyDecision};

pub use decorr_analysis::{validate_plan, ValidationReport, Violation};
