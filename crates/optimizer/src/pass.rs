//! The instrumented optimization pipeline: a [`PassManager`] owning an ordered list of
//! named passes behind the common [`OptimizerPass`] trait.
//!
//! This is the single entry point through which every query is optimized. The pipeline
//! mirrors Figure 9 of the paper — normalize, algebraize & merge UDF invocations
//! (Sections IV, V, VII), remove Apply operators with the transformation rules
//! (Section VI), clean up, and make the cost-based choice between the iterative and the
//! decorrelated alternative (Section IX) — but unlike the paper's prose, every step here
//! is observable: per-pass wall-clock timings, per-rule fire counts, fixpoint iteration
//! counts, before/after plan snapshots, and a shared rule-firing budget that turns a
//! cyclic rule set into an error instead of an unbounded loop.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use decorr_algebra::display::explain;
use decorr_algebra::{RelExpr, SchemaProvider};
use decorr_common::{Error, Result};
use decorr_rewrite::merge::merge_udf_calls;
use decorr_rewrite::rules::{FixpointEngine, RuleSet};
use decorr_storage::Catalog;
use decorr_udf::{AggregateDefinition, FunctionRegistry};

use crate::cache::{plan_fingerprint, CacheActivity, CacheContext, PlanCache};
use crate::cost::CostParams;
use crate::feedback::FeedbackStore;
use crate::strategy::{choose_strategy_with, StrategyChoice, StrategyDecision};
use decorr_common::FnvHasher;

// ---------------------------------------------------------------------------- options

/// How the strategy-choice pass resolves the iterative/decorrelated alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizeMode {
    /// Compare estimated costs and pick the cheaper plan (the paper's deployment).
    #[default]
    CostBased,
    /// Always pick the decorrelated plan when the rewrite succeeded (the experiments'
    /// "rewritten" arm). The caller is expected to treat a failed rewrite as an error.
    ForceDecorrelated,
}

/// Knobs shared by every pass in a pipeline.
#[derive(Debug, Clone)]
pub struct PassManagerOptions {
    /// Maximum number of full bottom-up passes per rule-fixpoint pass.
    pub max_fixpoint_iterations: usize,
    /// Total rule-firing budget shared by all passes of one `optimize` call. Exhausting
    /// it aborts optimization with an error — the guard against cyclic rule sets.
    pub rule_fire_budget: u64,
    /// If true (the default, matching the paper's tool), the query is reverted to its
    /// normalized original form when some Apply operator cannot be removed; if false,
    /// the partially rewritten plan is kept and remaining Apply operators are executed
    /// as correlated evaluation.
    pub require_full_decorrelation: bool,
    /// Strategy resolution mode.
    pub mode: OptimizeMode,
    /// Capture EXPLAIN-style before/after snapshots per pass. Off by default: snapshot
    /// rendering costs string work per pass on every optimize call, so only diagnostic
    /// entry points (`EXPLAIN`, debugging sessions) should enable it.
    pub capture_snapshots: bool,
    /// The executor's worker-pool size, fed into the cost model so the strategy choice
    /// accounts for morsel-parallel scans/joins/aggregates. Part of the pipeline
    /// fingerprint: a cached decision made for one pool size must not serve another.
    pub parallelism: usize,
    /// Re-validate the plan with `decorr_analysis::validate_plan` after **every**
    /// pass: any structural violation (dangling column reference, unconsumed Apply
    /// binding, unknown function, …) fails the pipeline with a named-pass,
    /// named-violation error instead of letting a buggy rule produce a silently
    /// wrong plan. Defaults to on in debug builds (so every test run self-checks)
    /// and off in release; the `DECORR_VALIDATE_PLANS` environment variable
    /// (`1`/`true`/`on` vs `0`/`false`/`off`) overrides the default either way.
    pub validate_plans: bool,
}

/// Compile-profile default for [`PassManagerOptions::validate_plans`], overridable
/// through the `DECORR_VALIDATE_PLANS` environment variable.
fn default_validate_plans() -> bool {
    match std::env::var("DECORR_VALIDATE_PLANS") {
        Ok(v) => matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "on" | "yes"
        ),
        Err(_) => cfg!(debug_assertions),
    }
}

impl Default for PassManagerOptions {
    fn default() -> Self {
        PassManagerOptions {
            max_fixpoint_iterations: 50,
            rule_fire_budget: 100_000,
            require_full_decorrelation: true,
            mode: OptimizeMode::CostBased,
            capture_snapshots: false,
            parallelism: 1,
            validate_plans: default_validate_plans(),
        }
    }
}

// ---------------------------------------------------------------------------- context

/// Mutable state threaded through the passes of one `optimize` call.
pub struct PassContext<'a> {
    pub registry: &'a FunctionRegistry,
    pub provider: &'a dyn SchemaProvider,
    /// Storage statistics for the cost model; `None` outside an engine (e.g. when the
    /// pipeline runs as a standalone rewrite tool over a schema-only provider).
    pub catalog: Option<&'a Catalog>,
    /// Runtime feedback (learned UDF invocation costs); consulted by the
    /// strategy-choice pass when attached. `None` outside an engine.
    pub feedback: Option<&'a FeedbackStore>,
    pub options: PassManagerOptions,
    /// The normalized original plan — the iterative alternative the strategy pass can
    /// fall back to. Set by [`AlgebraizeMergePass`] before it merges UDF bodies.
    pub baseline_plan: Option<RelExpr>,
    /// The fully decorrelated plan, when the rewrite succeeded (kept even when the
    /// cost-based choice later reverts to the iterative plan).
    pub rewritten_plan: Option<RelExpr>,
    /// Number of UDF invocations replaced by algebraic forms.
    pub merged_calls: usize,
    /// Auxiliary aggregates synthesised while algebraizing cursor loops; they must be
    /// registered before executing the rewritten plan.
    pub aux_aggregates: Vec<AggregateDefinition>,
    /// True if every merged UDF invocation was decorrelated (no Apply remains).
    pub decorrelated: bool,
    /// True if the plan the pipeline returns is the decorrelated one.
    pub used_decorrelated_plan: bool,
    /// The cost-based decision, when one was made.
    pub decision: Option<StrategyDecision>,
    /// Remaining shared rule-firing budget.
    rule_budget_left: u64,
}

impl<'a> PassContext<'a> {
    fn new(
        registry: &'a FunctionRegistry,
        provider: &'a dyn SchemaProvider,
        catalog: Option<&'a Catalog>,
        feedback: Option<&'a FeedbackStore>,
        options: PassManagerOptions,
    ) -> PassContext<'a> {
        let budget = options.rule_fire_budget;
        PassContext {
            registry,
            provider,
            catalog,
            feedback,
            options,
            baseline_plan: None,
            rewritten_plan: None,
            merged_calls: 0,
            aux_aggregates: vec![],
            decorrelated: false,
            used_decorrelated_plan: false,
            decision: None,
            rule_budget_left: budget,
        }
    }

    /// A [`FixpointEngine`] configured with this pipeline's iteration limit and the
    /// *remaining* shared firing budget.
    pub fn fixpoint_engine(&self) -> FixpointEngine {
        FixpointEngine::with_max_iterations(self.options.max_fixpoint_iterations)
            .with_rule_budget(self.rule_budget_left)
    }

    /// Deducts rule firings from the shared budget.
    pub fn charge_rule_firings(&mut self, fires: u64) {
        self.rule_budget_left = self.rule_budget_left.saturating_sub(fires);
    }
}

// ---------------------------------------------------------------------------- effects

/// What one pass did to the plan, as reported back to the [`PassManager`].
#[derive(Debug, Clone)]
pub struct PassEffect {
    pub plan: RelExpr,
    /// Rules that fired inside this pass, in order.
    pub fired: Vec<String>,
    /// Fire counts per rule.
    pub rule_fires: BTreeMap<String, u64>,
    /// Full fixpoint passes performed, for rule-fixpoint passes.
    pub fixpoint_iterations: Option<usize>,
    /// Whether the fixpoint genuinely converged (vs. hitting the iteration limit).
    pub reached_fixpoint: Option<bool>,
    /// Human-readable remarks (skipped UDFs, reverts, decisions).
    pub notes: Vec<String>,
}

impl PassEffect {
    /// A pass that left the plan untouched.
    pub fn unchanged(plan: RelExpr) -> PassEffect {
        PassEffect {
            plan,
            fired: vec![],
            rule_fires: BTreeMap::new(),
            fixpoint_iterations: None,
            reached_fixpoint: None,
            notes: vec![],
        }
    }

    fn with_note(mut self, note: impl Into<String>) -> PassEffect {
        self.notes.push(note.into());
        self
    }
}

/// A named, instrumented optimization pass.
pub trait OptimizerPass {
    /// Stable pass name, shown in traces and EXPLAIN output.
    fn name(&self) -> &'static str;
    /// Transforms the plan, reporting instrumentation through the returned effect.
    fn run(&self, plan: &RelExpr, ctx: &mut PassContext) -> Result<PassEffect>;
}

// ----------------------------------------------------------------------------- traces

/// Everything the manager recorded about one executed pass.
#[derive(Debug, Clone)]
pub struct PassTrace {
    pub name: String,
    pub duration: Duration,
    /// True if the pass changed the plan.
    pub changed: bool,
    pub rule_fires: BTreeMap<String, u64>,
    pub fired: Vec<String>,
    pub fixpoint_iterations: Option<usize>,
    pub reached_fixpoint: Option<bool>,
    /// EXPLAIN snapshot before/after the pass (when snapshot capture is enabled).
    pub plan_before: Option<String>,
    pub plan_after: Option<String>,
    pub notes: Vec<String>,
    /// Number of structural-invariant checks the per-pass plan validator performed
    /// on this pass's output plan (`None` when validation was off). A recorded pass
    /// always validated clean — violations abort the pipeline instead.
    pub validation_checks: Option<u64>,
}

impl PassTrace {
    pub fn total_rule_fires(&self) -> u64 {
        self.rule_fires.values().sum()
    }
}

/// The per-pass trace of one `optimize` call — the engine exposes this as
/// `QueryResult::rewrite_report` and inside `EXPLAIN` output.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    pub passes: Vec<PassTrace>,
    /// What the plan cache did for this call, when the pipeline ran with one attached:
    /// whether it hit, the key fingerprint, and a counter snapshot
    /// (hits/misses/evictions/invalidations). `None` when no cache was attached.
    pub cache: Option<CacheActivity>,
}

impl PipelineReport {
    /// The trace of a named pass, if it ran.
    pub fn pass(&self, name: &str) -> Option<&PassTrace> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// Total wall-clock time spent inside passes.
    pub fn total_duration(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }

    /// Aggregated rule fire counts across all passes.
    pub fn rule_fire_counts(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for pass in &self.passes {
            for (rule, n) in &pass.rule_fires {
                *out.entry(rule.clone()).or_insert(0) += n;
            }
        }
        out
    }

    /// Total rule firings across all passes.
    pub fn total_rule_fires(&self) -> u64 {
        self.passes.iter().map(|p| p.total_rule_fires()).sum()
    }

    /// Renders the per-pass table shown by `EXPLAIN`: timings, fire counts, fixpoint
    /// iterations and notes, followed by the aggregated per-rule fire counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>7} {:>7}  notes\n",
            "pass", "time", "fires", "iters"
        ));
        for pass in &self.passes {
            out.push_str(&format!(
                "{:<20} {:>9.3} ms {:>7} {:>7}  {}\n",
                pass.name,
                pass.duration.as_secs_f64() * 1e3,
                pass.total_rule_fires(),
                pass.fixpoint_iterations
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "-".into()),
                pass.notes.join("; ")
            ));
        }
        let validated: Vec<&PassTrace> = self
            .passes
            .iter()
            .filter(|p| p.validation_checks.is_some())
            .collect();
        if !validated.is_empty() {
            let rendered: Vec<String> = validated
                .iter()
                .map(|p| format!("{} ×{}", p.name, p.validation_checks.unwrap_or(0)))
                .collect();
            out.push_str(&format!(
                "plan validation: {} — all passes clean\n",
                rendered.join(", ")
            ));
        }
        let counts = self.rule_fire_counts();
        if !counts.is_empty() {
            out.push_str("rule fire counts: ");
            let rendered: Vec<String> = counts
                .iter()
                .map(|(rule, n)| format!("{rule} ×{n}"))
                .collect();
            out.push_str(&rendered.join(", "));
            out.push('\n');
        }
        if let Some(cache) = &self.cache {
            out.push_str(&format!(
                "plan cache: {} (key {:016x}) · hits={} misses={} evictions={} \
                 invalidations={} entries={}/{} hit-rate={:.0}%\n",
                if cache.hit { "hit" } else { "miss" },
                cache.key_hash,
                cache.stats.hits,
                cache.stats.misses,
                cache.stats.evictions,
                cache.stats.invalidations,
                cache.stats.entries,
                cache.stats.capacity,
                cache.stats.hit_rate() * 100.0,
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------- outcome

/// The result of running a [`PassManager`] pipeline over a query plan.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The plan to execute (the strategy pass's choice; the rewritten plan when the
    /// rewrite succeeded and was selected, otherwise the normalized original).
    pub plan: RelExpr,
    /// The normalized original plan — the iterative alternative.
    pub iterative_plan: RelExpr,
    /// The fully decorrelated plan, when the rewrite succeeded (independent of whether
    /// the cost model then selected it).
    pub rewritten_plan: Option<RelExpr>,
    /// True if every merged UDF invocation was decorrelated.
    pub decorrelated: bool,
    /// True if `plan` is the decorrelated plan.
    pub used_decorrelated_plan: bool,
    /// Number of UDF invocations replaced by algebraic forms.
    pub merged_calls: usize,
    /// Auxiliary aggregates to register before executing `plan`.
    pub aux_aggregates: Vec<AggregateDefinition>,
    /// Names of the transformation rules that fired, in order, across all passes.
    pub applied_rules: Vec<String>,
    /// Human-readable notes from every pass.
    pub notes: Vec<String>,
    /// The cost-based decision, when one was made.
    pub decision: Option<StrategyDecision>,
    /// Per-pass instrumentation.
    pub report: PipelineReport,
}

// ----------------------------------------------------------------------------- passes

/// Plan normalisation: predicate pushdown, selection/projection merging. Runs first so
/// that even the iterative baseline executes reasonable plans (comma-syntax joins become
/// hash-joinable inner joins), exactly like the commercial systems the paper measures.
pub struct NormalizePass;

impl OptimizerPass for NormalizePass {
    fn name(&self) -> &'static str {
        "normalize"
    }

    fn run(&self, plan: &RelExpr, ctx: &mut PassContext) -> Result<PassEffect> {
        let outcome = ctx
            .fixpoint_engine()
            .run(plan, &RuleSet::cleanup_only(), ctx.provider)?;
        ctx.charge_rule_firings(outcome.total_fires());
        Ok(PassEffect {
            plan: outcome.plan,
            fired: outcome.fired,
            rule_fires: outcome.fire_counts,
            fixpoint_iterations: Some(outcome.iterations),
            reached_fixpoint: Some(outcome.reached_fixpoint),
            notes: vec![],
        })
    }
}

/// Algebraization and merging (Sections IV, V, VII): builds the parameterized algebraic
/// expression of every UDF invoked by the query and merges it into the calling block
/// with the Apply (bind) operator. Also snapshots the incoming plan as the iterative
/// baseline the later passes can revert to.
pub struct AlgebraizeMergePass;

impl OptimizerPass for AlgebraizeMergePass {
    fn name(&self) -> &'static str {
        "algebraize-merge"
    }

    fn run(&self, plan: &RelExpr, ctx: &mut PassContext) -> Result<PassEffect> {
        ctx.baseline_plan = Some(plan.clone());
        if !plan.contains_udf_call() {
            return Ok(PassEffect::unchanged(plan.clone())
                .with_note("query invokes no user-defined functions"));
        }
        let merged = merge_udf_calls(plan, ctx.registry, ctx.provider)?;
        let mut effect = PassEffect::unchanged(merged.plan);
        for (name, reason) in &merged.skipped {
            effect.notes.push(format!(
                "UDF '{name}' kept as an iterative invocation: {reason}"
            ));
        }
        if merged.merged_calls > 0 {
            effect.notes.push(format!(
                "merged {} UDF invocation(s), {} auxiliary aggregate(s)",
                merged.merged_calls,
                merged.aux_aggregates.len()
            ));
        }
        ctx.merged_calls = merged.merged_calls;
        ctx.aux_aggregates = merged.aux_aggregates;
        Ok(effect)
    }
}

/// Apply removal (Section VI): drives the K1–K6/R1–R9 rule set to fixpoint. If some
/// Apply operator survives and full decorrelation is required, reverts to the baseline
/// plan — iterative invocation remains the execution strategy, like the paper's tool.
pub struct ApplyRemovalPass;

impl OptimizerPass for ApplyRemovalPass {
    fn name(&self) -> &'static str {
        "apply-removal"
    }

    fn run(&self, plan: &RelExpr, ctx: &mut PassContext) -> Result<PassEffect> {
        if ctx.merged_calls == 0 {
            return Ok(PassEffect::unchanged(plan.clone()).with_note("no merged UDF invocations"));
        }
        // The rules must also see the auxiliary aggregates synthesised during merging
        // (their return types and empty-input values), even though they are only
        // registered with the engine when the rewritten plan is executed.
        let provider = AuxAggregateProvider {
            inner: ctx.provider,
            aggregates: &ctx.aux_aggregates,
        };
        let outcome = ctx
            .fixpoint_engine()
            .run(plan, &RuleSet::default_pipeline(), &provider)?;
        ctx.charge_rule_firings(outcome.total_fires());
        let mut effect = PassEffect {
            plan: outcome.plan,
            fired: outcome.fired,
            rule_fires: outcome.fire_counts,
            fixpoint_iterations: Some(outcome.iterations),
            reached_fixpoint: Some(outcome.reached_fixpoint),
            notes: vec![],
        };
        ctx.decorrelated = !effect.plan.contains_apply();
        if !ctx.decorrelated && ctx.options.require_full_decorrelation {
            effect.plan = ctx
                .baseline_plan
                .clone()
                .expect("algebraize-merge runs before apply-removal");
            ctx.aux_aggregates.clear();
            effect.notes.push(
                "some Apply operators could not be removed; the query was left untransformed \
                 (iterative invocation remains the execution strategy)"
                    .into(),
            );
        }
        Ok(effect)
    }
}

/// Final cleanup after Apply removal: re-runs the normalisation rules so the flattened
/// plan exposes pushdown-ready predicates and merged projections to the executor.
pub struct CleanupPass;

impl OptimizerPass for CleanupPass {
    fn name(&self) -> &'static str {
        "cleanup"
    }

    fn run(&self, plan: &RelExpr, ctx: &mut PassContext) -> Result<PassEffect> {
        let provider = AuxAggregateProvider {
            inner: ctx.provider,
            aggregates: &ctx.aux_aggregates,
        };
        let outcome = ctx
            .fixpoint_engine()
            .run(plan, &RuleSet::cleanup_only(), &provider)?;
        ctx.charge_rule_firings(outcome.total_fires());
        if ctx.decorrelated {
            ctx.rewritten_plan = Some(outcome.plan.clone());
        }
        Ok(PassEffect {
            plan: outcome.plan,
            fired: outcome.fired,
            rule_fires: outcome.fire_counts,
            fixpoint_iterations: Some(outcome.iterations),
            reached_fixpoint: Some(outcome.reached_fixpoint),
            notes: vec![],
        })
    }
}

/// The cost-based choice between the iterative and the decorrelated plan (Section IX):
/// the paper's point about registering the transformation rules inside a cost-based
/// optimizer, so that iterative invocation remains an alternative (Experiment 3 shows a
/// regime where it wins).
pub struct StrategyChoicePass;

impl OptimizerPass for StrategyChoicePass {
    fn name(&self) -> &'static str {
        "strategy-choice"
    }

    fn run(&self, plan: &RelExpr, ctx: &mut PassContext) -> Result<PassEffect> {
        if !ctx.decorrelated {
            ctx.used_decorrelated_plan = false;
            return Ok(PassEffect::unchanged(plan.clone())
                .with_note("no decorrelated alternative; executing the iterative plan"));
        }
        let baseline = ctx
            .baseline_plan
            .clone()
            .expect("algebraize-merge runs before strategy-choice");
        match (ctx.options.mode, ctx.catalog) {
            (OptimizeMode::ForceDecorrelated, _) => {
                ctx.used_decorrelated_plan = true;
                Ok(PassEffect::unchanged(plan.clone())
                    .with_note("decorrelated plan forced by options"))
            }
            (OptimizeMode::CostBased, Some(catalog)) => {
                let mut params = CostParams::new(ctx.options.parallelism);
                // Learned UDF invocation costs (runtime feedback) replace the static
                // body estimates — this is where a mispriced iterative plan gets
                // re-decided with measured numbers.
                let mut learned_note = None;
                if let Some(feedback) = ctx.feedback {
                    let overrides = feedback.udf_cost_overrides(params.row_op_seconds);
                    if !overrides.is_empty() {
                        learned_note = Some(format!(
                            "{} learned UDF cost(s) applied: {}",
                            overrides.len(),
                            overrides
                                .iter()
                                .map(|(name, units)| format!("{name}≈{units:.0}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                        params = params.with_udf_cost_overrides(overrides);
                    }
                    // Effective invocation counts: calls the batching/memo runtime
                    // answers from cache cost nothing, so an iterative plan over
                    // repetitive arguments is cheaper than its raw call count says.
                    let fractions = feedback.udf_dedup_fractions();
                    if !fractions.is_empty() {
                        params = params.with_udf_dedup_fractions(fractions);
                    }
                }
                let decision =
                    choose_strategy_with(&baseline, plan, catalog, ctx.registry, &params);
                let summary = decision.summary();
                let chosen = match decision.choice {
                    StrategyChoice::Decorrelated => {
                        ctx.used_decorrelated_plan = true;
                        plan.clone()
                    }
                    StrategyChoice::Iterative => {
                        ctx.used_decorrelated_plan = false;
                        baseline
                    }
                };
                ctx.decision = Some(decision);
                let mut effect = PassEffect::unchanged(chosen).with_note(summary);
                if let Some(note) = learned_note {
                    effect = effect.with_note(note);
                }
                Ok(effect)
            }
            (OptimizeMode::CostBased, None) => {
                ctx.used_decorrelated_plan = true;
                Ok(PassEffect::unchanged(plan.clone()).with_note(
                    "no catalog statistics available; defaulting to the decorrelated plan",
                ))
            }
        }
    }
}

// ----------------------------------------------------------------------- pass manager

/// Owns an ordered list of named passes and drives a plan through them, recording a
/// [`PassTrace`] per pass. With a [`PlanCache`] attached (see
/// [`with_plan_cache`](PassManager::with_plan_cache)), `optimize` first probes the
/// cache and skips the pipeline entirely on a hit.
pub struct PassManager {
    passes: Vec<Box<dyn OptimizerPass>>,
    options: PassManagerOptions,
    cache: Option<Arc<PlanCache>>,
    feedback: Option<Arc<FeedbackStore>>,
}

impl PassManager {
    /// An empty pipeline with default options; push passes with [`PassManager::push`].
    pub fn new() -> PassManager {
        PassManager {
            passes: vec![],
            options: PassManagerOptions::default(),
            cache: None,
            feedback: None,
        }
    }

    /// Normalisation only — what every query (and every query inside a UDF body) goes
    /// through before iterative execution.
    pub fn cleanup_pipeline() -> PassManager {
        PassManager::new().with_pass(NormalizePass)
    }

    /// The full Figure-9 rewrite pipeline *without* the strategy choice: normalize,
    /// algebraize & merge, Apply removal, cleanup. This is the paper's standalone
    /// rewrite tool; the outcome's plan is the rewritten form whenever decorrelation
    /// succeeded.
    pub fn rewrite_pipeline() -> PassManager {
        PassManager::new()
            .with_pass(NormalizePass)
            .with_pass(AlgebraizeMergePass)
            .with_pass(ApplyRemovalPass)
            .with_pass(CleanupPass)
    }

    /// The deployed pipeline: the rewrite pipeline followed by the cost-based strategy
    /// choice.
    pub fn decorrelation_pipeline() -> PassManager {
        PassManager::rewrite_pipeline().with_pass(StrategyChoicePass)
    }

    /// Replaces the pipeline options.
    pub fn with_options(mut self, options: PassManagerOptions) -> PassManager {
        self.options = options;
        self
    }

    /// Sets the strategy-resolution mode.
    pub fn with_mode(mut self, mode: OptimizeMode) -> PassManager {
        self.options.mode = mode;
        self
    }

    /// Enables or disables per-pass before/after plan snapshots. Snapshot rendering is
    /// pure string work but it is paid on every `optimize` call, so the engine keeps it
    /// off on the query hot path and turns it on for diagnostics (`EXPLAIN`).
    pub fn with_snapshots(mut self, capture_snapshots: bool) -> PassManager {
        self.options.capture_snapshots = capture_snapshots;
        self
    }

    /// Calibrates the cost model for the executor's worker-pool size (see
    /// [`PassManagerOptions::parallelism`]).
    pub fn with_parallelism(mut self, parallelism: usize) -> PassManager {
        self.options.parallelism = parallelism.max(1);
        self
    }

    /// Forces per-pass plan validation on or off, overriding the build-profile
    /// default and the `DECORR_VALIDATE_PLANS` environment variable (see
    /// [`PassManagerOptions::validate_plans`]).
    pub fn with_validation(mut self, validate_plans: bool) -> PassManager {
        self.options.validate_plans = validate_plans;
        self
    }

    /// Attaches a shared [`PlanCache`]: `optimize` probes it before running any pass
    /// and stores the outcome on a miss. The cache key folds in the registry and
    /// catalog-DDL generations plus this pipeline's
    /// [fingerprint](PassManager::pipeline_fingerprint), so distinct pipelines sharing
    /// one cache never cross-serve.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> PassManager {
        self.cache = Some(cache);
        self
    }

    /// Attaches a runtime [`FeedbackStore`]: the strategy-choice pass consults its
    /// learned UDF invocation costs, and (for cost-based pipelines) the store's
    /// generation becomes part of the plan-cache key, so newly learned costs make
    /// stale cost-based decisions unreachable.
    pub fn with_feedback(mut self, feedback: Arc<FeedbackStore>) -> PassManager {
        self.feedback = Some(feedback);
        self
    }

    /// True when this pipeline's outcome can depend on the feedback store: a
    /// cost-based strategy choice with a store attached. Feedback-blind pipelines
    /// (normalisation only, forced decorrelation) keep `None` in their cache context,
    /// so feedback-generation moves never invalidate their entries.
    fn consults_feedback(&self) -> bool {
        self.feedback.is_some()
            && self.options.mode == OptimizeMode::CostBased
            && self.passes.iter().any(|p| p.name() == "strategy-choice")
    }

    /// Appends a pass (builder style).
    pub fn with_pass(mut self, pass: impl OptimizerPass + 'static) -> PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl OptimizerPass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// The ordered pass names.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    pub fn options(&self) -> &PassManagerOptions {
        &self.options
    }

    /// Fingerprint of the pipeline shape and its options: pass names in order plus
    /// every [`PassManagerOptions`] knob. Part of the plan-cache key, so two pipelines
    /// that could produce different outcomes for the same plan never share an entry.
    pub fn pipeline_fingerprint(&self) -> u64 {
        let mut hasher = FnvHasher::new();
        for pass in &self.passes {
            let _ = std::fmt::Write::write_str(&mut hasher, pass.name());
            let _ = std::fmt::Write::write_str(&mut hasher, ";");
        }
        hasher.write_u64(self.options.max_fixpoint_iterations as u64);
        hasher.write_u64(self.options.rule_fire_budget);
        hasher.write_u64(u64::from(self.options.require_full_decorrelation));
        hasher.write_u64(match self.options.mode {
            OptimizeMode::CostBased => 0,
            OptimizeMode::ForceDecorrelated => 1,
        });
        hasher.write_u64(u64::from(self.options.capture_snapshots));
        hasher.write_u64(self.options.parallelism as u64);
        hasher.write_u64(u64::from(self.options.validate_plans));
        hasher.finish()
    }

    /// Drives `plan` through the pipeline, consulting the attached [`PlanCache`]
    /// first (when one is attached). On a hit the pipeline is skipped entirely and the
    /// outcome's report carries a single synthetic `plan-cache` trace whose duration is
    /// the lookup cost; on a miss the freshly computed outcome is stored before being
    /// returned. `catalog` supplies statistics for the cost model; pass `None` when
    /// running as a pure rewrite tool.
    pub fn optimize(
        &self,
        plan: &RelExpr,
        registry: &FunctionRegistry,
        provider: &dyn SchemaProvider,
        catalog: Option<&Catalog>,
    ) -> Result<OptimizeOutcome> {
        let Some(cache) = &self.cache else {
            return self.run_pipeline(plan, registry, provider, catalog);
        };
        let context = CacheContext {
            registry_generation: registry.generation(),
            ddl_generation: catalog.map(Catalog::ddl_generation),
            feedback_generation: if self.consults_feedback() {
                self.feedback.as_ref().map(|f| f.generation())
            } else {
                None
            },
            pipeline_fingerprint: self.pipeline_fingerprint(),
        };
        // Hash once: the fingerprint walks the whole plan tree, so the lookup, the
        // insert and the reported key all reuse this value, and the lookup timing
        // below includes it (it *is* part of the warm-path cost).
        let start = Instant::now();
        let key_hash = plan_fingerprint(plan);
        if let Some(mut outcome) = cache.lookup_hashed(key_hash, plan, &context) {
            let lookup = start.elapsed();
            outcome.notes.push(format!(
                "served from plan cache (registry generation {})",
                context.registry_generation
            ));
            outcome.report = PipelineReport {
                passes: vec![PassTrace {
                    name: "plan-cache".into(),
                    duration: lookup,
                    changed: false,
                    rule_fires: BTreeMap::new(),
                    fired: vec![],
                    fixpoint_iterations: None,
                    reached_fixpoint: None,
                    plan_before: None,
                    plan_after: None,
                    notes: vec!["cache hit — optimizer pipeline skipped".into()],
                    validation_checks: None,
                }],
                cache: Some(CacheActivity {
                    hit: true,
                    key_hash,
                    registry_generation: context.registry_generation,
                    stats: cache.stats(),
                }),
            };
            return Ok(outcome);
        }
        let mut outcome = self.run_pipeline(plan, registry, provider, catalog)?;
        // The hit path replaces the report with a synthetic plan-cache trace, so do not
        // store the cold run's report (for EXPLAIN pipelines it holds per-pass plan
        // snapshots — dead weight every hit would pay to clone).
        let mut cached = outcome.clone();
        cached.report = PipelineReport::default();
        cache.insert_hashed(key_hash, plan, &context, cached);
        outcome.report.cache = Some(CacheActivity {
            hit: false,
            key_hash,
            registry_generation: context.registry_generation,
            stats: cache.stats(),
        });
        Ok(outcome)
    }

    /// The uncached pipeline: drives `plan` through every pass in order.
    fn run_pipeline(
        &self,
        plan: &RelExpr,
        registry: &FunctionRegistry,
        provider: &dyn SchemaProvider,
        catalog: Option<&Catalog>,
    ) -> Result<OptimizeOutcome> {
        let mut ctx = PassContext::new(
            registry,
            provider,
            catalog,
            self.feedback.as_deref(),
            self.options.clone(),
        );
        let mut current = plan.clone();
        let mut report = PipelineReport::default();
        let mut applied_rules: Vec<String> = vec![];
        let mut notes: Vec<String> = vec![];
        // The validator guards against *rule* bugs: plans that were well-formed
        // becoming malformed mid-pipeline. A plan that arrives already dirty (an
        // unknown table, an unresolvable column) is a user error — whether the input
        // was dirty is only decided lazily, on the error path, so the happy path
        // never pays for validating the input twice.
        let mut validate_plans = self.options.validate_plans;
        // Check count of the last validated plan; `None` until the first validation.
        let mut last_checks: Option<u64> = None;
        for pass in &self.passes {
            let plan_before = self.options.capture_snapshots.then(|| explain(&current));
            let start = Instant::now();
            let effect = pass.run(&current, &mut ctx).map_err(|e| {
                Error::Rewrite(format!("optimizer pass '{}' failed: {e}", pass.name()))
            })?;
            let duration = start.elapsed();
            let changed = effect.plan != current;
            // An unchanged pass cannot have introduced a violation: the plan is
            // byte-identical to the last validated one, so its check count is
            // carried over instead of re-walking the tree.
            let validation_checks = match (validate_plans, last_checks) {
                (true, Some(checks)) if !changed => Some(checks),
                (true, _) => {
                    // Validate against the same layered view the rewrite passes infer
                    // schemas with, so auxiliary aggregates synthesised mid-pipeline
                    // resolve like any registered function.
                    let layered = AuxAggregateProvider {
                        inner: provider,
                        aggregates: &ctx.aux_aggregates,
                    };
                    let validation =
                        decorr_analysis::validate_plan(&effect.plan, &layered, registry);
                    match validation.violations.first() {
                        Some(violation)
                            if decorr_analysis::validate_plan(plan, provider, registry)
                                .is_clean() =>
                        {
                            let rule = effect
                                .fired
                                .last()
                                .map(|r| format!(" (last rule fired: '{r}')"))
                                .unwrap_or_default();
                            return Err(Error::Rewrite(format!(
                                "plan validation failed after pass '{}'{rule}: [{}] {violation}",
                                pass.name(),
                                violation.name(),
                            )));
                        }
                        Some(_) => {
                            // The violation was already present in the input plan: a
                            // user error, not a rule bug. Disarm validation so the
                            // binder/executor surfaces its properly-kinded error.
                            validate_plans = false;
                            None
                        }
                        None => {
                            last_checks = Some(validation.checks);
                            Some(validation.checks)
                        }
                    }
                }
                (false, _) => None,
            };
            let plan_after =
                (self.options.capture_snapshots && changed).then(|| explain(&effect.plan));
            applied_rules.extend(effect.fired.iter().cloned());
            notes.extend(effect.notes.iter().cloned());
            report.passes.push(PassTrace {
                name: pass.name().to_string(),
                duration,
                changed,
                rule_fires: effect.rule_fires,
                fired: effect.fired,
                fixpoint_iterations: effect.fixpoint_iterations,
                reached_fixpoint: effect.reached_fixpoint,
                plan_before,
                plan_after,
                notes: effect.notes,
                validation_checks,
            });
            current = effect.plan;
        }
        if validate_plans && ctx.decorrelated {
            // The pipeline claims full decorrelation: the rewritten plan (and the
            // final plan when it *is* the rewritten one) must carry no residual
            // Apply-family operator — guards a later pass reintroducing one.
            let candidate = ctx.rewritten_plan.as_ref().unwrap_or(&current);
            if let Some(violation) = decorr_analysis::check_decorrelated(candidate).first() {
                return Err(Error::Rewrite(format!(
                    "plan validation failed after pipeline: [{}] {violation}",
                    violation.name(),
                )));
            }
        }
        let iterative_plan = ctx.baseline_plan.clone().unwrap_or_else(|| current.clone());
        let rewritten_plan = ctx.rewritten_plan.clone().or_else(|| {
            // Pipelines without a strategy pass end on the rewritten form itself.
            ctx.decorrelated.then(|| current.clone())
        });
        // In a strategy-less pipeline the returned plan is the rewritten one whenever
        // the rewrite succeeded.
        let used_decorrelated_plan = ctx.used_decorrelated_plan
            || (ctx.decorrelated
                && rewritten_plan
                    .as_ref()
                    .map(|r| r == &current)
                    .unwrap_or(false));
        Ok(OptimizeOutcome {
            plan: current,
            iterative_plan,
            rewritten_plan,
            decorrelated: ctx.decorrelated,
            used_decorrelated_plan,
            merged_calls: ctx.merged_calls,
            aux_aggregates: ctx.aux_aggregates,
            applied_rules,
            notes,
            decision: ctx.decision,
            report,
        })
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::decorrelation_pipeline()
    }
}

// --------------------------------------------------------------------------- provider

/// A [`SchemaProvider`] that layers the auxiliary aggregates synthesised by the current
/// rewrite on top of the engine-provided catalog view.
struct AuxAggregateProvider<'a> {
    inner: &'a dyn SchemaProvider,
    aggregates: &'a [AggregateDefinition],
}

impl SchemaProvider for AuxAggregateProvider<'_> {
    fn table_schema(&self, table: &str) -> Result<decorr_common::Schema> {
        self.inner.table_schema(table)
    }

    fn udf_return_type(&self, name: &str) -> Option<decorr_common::DataType> {
        self.aggregates
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
            .map(|a| a.return_type)
            .or_else(|| self.inner.udf_return_type(name))
    }

    fn aggregate_empty_value(&self, name: &str) -> Option<decorr_common::Value> {
        if let Some(agg) = self
            .aggregates
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
        {
            return match &agg.terminate {
                decorr_algebra::ScalarExpr::Param(p) => agg
                    .state
                    .iter()
                    .find(|(var, _, _)| var == p)
                    .map(|(_, _, init)| init.clone()),
                decorr_algebra::ScalarExpr::Literal(v) => Some(v.clone()),
                _ => None,
            };
        }
        self.inner.aggregate_empty_value(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_algebra::display::explain;
    use decorr_algebra::schema::MapProvider;
    use decorr_common::{Column, DataType, Schema};
    use decorr_parser::{parse_and_plan, parse_function};

    fn provider() -> MapProvider {
        MapProvider::new()
            .with_table(
                "customer",
                Schema::new(vec![
                    Column::new("custkey", DataType::Int),
                    Column::new("name", DataType::Str),
                ]),
            )
            .with_table(
                "orders",
                Schema::new(vec![
                    Column::new("orderkey", DataType::Int),
                    Column::new("custkey", DataType::Int),
                    Column::new("totalprice", DataType::Float),
                ]),
            )
    }

    fn rewrite(plan: &decorr_algebra::RelExpr, registry: &FunctionRegistry) -> OptimizeOutcome {
        PassManager::rewrite_pipeline()
            .optimize(plan, registry, &provider(), None)
            .unwrap()
    }

    #[test]
    fn decorrelates_example3_discount() {
        // Example 3: after rewriting, no Apply and no UDF call remain and the arithmetic
        // is inlined into the projection (Π_{orderkey, totalprice*0.15}(orders)).
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function discount(float amount) returns float as \
                 begin return amount * 0.15; end",
            )
            .unwrap(),
        );
        let plan =
            parse_and_plan("select orderkey, discount(totalprice) as d from orders").unwrap();
        let outcome = rewrite(&plan, &registry);
        assert!(outcome.decorrelated);
        assert!(outcome.used_decorrelated_plan);
        assert!(!outcome.plan.contains_apply());
        assert!(!outcome.plan.contains_udf_call());
        let text = explain(&outcome.plan);
        assert!(text.contains("totalprice * 0.15) as d"), "plan:\n{text}");
        assert!(text.contains("Scan orders"));
        // The whole plan collapses to a single projection over the scan.
        assert!(outcome.plan.node_count() <= 3, "plan:\n{text}");
    }

    #[test]
    fn decorrelates_example1_service_level_into_outer_join() {
        // Example 1 → Example 2: the rewritten form is a left outer join between
        // customer and a grouped aggregation over orders, with a CASE projection.
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function service_level(int ckey) returns char(10) as \
                 begin \
                   float totalbusiness; string level; \
                   select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
                   if (totalbusiness > 1000000) level = 'Platinum'; \
                   else if (totalbusiness > 500000) level = 'Gold'; \
                   else level = 'Regular'; \
                   return level; \
                 end",
            )
            .unwrap(),
        );
        let plan = parse_and_plan("select custkey, service_level(custkey) as level from customer")
            .unwrap();
        let outcome = rewrite(&plan, &registry);
        let text = explain(&outcome.plan);
        assert!(
            outcome.decorrelated,
            "rules: {:?}\nnotes: {:?}\nplan:\n{text}",
            outcome.applied_rules, outcome.notes
        );
        assert!(text.contains("Join(left outer)"), "plan:\n{text}");
        // The inlined body scans `orders` under a fresh invocation-unique alias so its
        // columns can never collide with same-named outer columns.
        assert!(
            text.contains("Aggregate group_by=[__udf0_orders.custkey]"),
            "plan:\n{text}"
        );
        assert!(
            text.contains("Scan orders as __udf0_orders"),
            "plan:\n{text}"
        );
        assert!(text.contains("'Platinum'"), "plan:\n{text}");
        assert!(!outcome.plan.contains_udf_call());
        // R9, R2, R8, R4 and the scalar-aggregate decorrelation must all have fired.
        for expected in [
            "R9-apply-bind-removal",
            "R8-conditional-merge-to-case",
            "decorrelate-scalar-aggregate",
        ] {
            assert!(
                outcome.applied_rules.iter().any(|r| r == expected),
                "expected rule {expected} to fire; fired: {:?}",
                outcome.applied_rules
            );
        }
        // The instrumentation attributes the rule firings to the apply-removal pass.
        let removal = outcome.report.pass("apply-removal").unwrap();
        assert!(removal.total_rule_fires() >= 3, "{:?}", removal.rule_fires);
        assert_eq!(removal.reached_fixpoint, Some(true));
    }

    #[test]
    fn query_without_udfs_is_untouched() {
        let registry = FunctionRegistry::new();
        let plan = parse_and_plan("select custkey from customer").unwrap();
        let outcome = rewrite(&plan, &registry);
        assert!(!outcome.decorrelated);
        assert_eq!(outcome.plan, plan);
        assert!(outcome
            .notes
            .iter()
            .any(|n| n.contains("no user-defined functions")));
    }

    #[test]
    fn non_decorrelatable_udf_keeps_original_plan() {
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function spin(int n) returns int as \
                 begin int i = 0; while (i < n) begin i = i + 1; end return i; end",
            )
            .unwrap(),
        );
        let plan = parse_and_plan("select spin(custkey) from customer").unwrap();
        let outcome = rewrite(&plan, &registry);
        assert!(!outcome.decorrelated);
        assert_eq!(outcome.plan, plan);
        assert!(outcome.notes.iter().any(|n| n.contains("WHILE")));
    }

    #[test]
    fn every_pass_is_traced_in_order() {
        let registry = FunctionRegistry::new();
        let plan = parse_and_plan("select custkey from customer").unwrap();
        let manager = PassManager::decorrelation_pipeline();
        assert_eq!(
            manager.pass_names(),
            vec![
                "normalize",
                "algebraize-merge",
                "apply-removal",
                "cleanup",
                "strategy-choice"
            ]
        );
        let outcome = manager
            .optimize(&plan, &registry, &provider(), None)
            .unwrap();
        let traced: Vec<&str> = outcome
            .report
            .passes
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(
            traced,
            vec![
                "normalize",
                "algebraize-merge",
                "apply-removal",
                "cleanup",
                "strategy-choice"
            ]
        );
    }
}
